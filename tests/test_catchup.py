"""Equivalence and safety tests for seq-checkpointed catch-up (E14).

The property under test: a consumer topped up from the update journal is
entry-for-entry identical to one rebuilt from scratch, after randomized
batches of creates, updates, hard deletes, soft deletes, and restores —
and the ``journal=False`` ablation reaches the same state through the
rebuild path. Plus the fallbacks (changed journal identity, purge log
that no longer reaches back) and the seq-acknowledged stub purge.
"""

import random

import pytest

from repro.core import NotesDatabase
from repro.fulltext import FullTextIndex
from repro.replication import SimulatedNetwork
from repro.cluster import ClusterReplicator
from repro.sim import VirtualClock
from repro.storage import StorageEngine
from repro.views import SortOrder, View, ViewColumn

WORDS = ("budget", "meeting", "release", "replica", "schedule",
         "review", "forecast", "inventory", "proposal", "summary")


def make_view(db, journal=True, persist=True, mode="auto"):
    return View(
        db, "Equiv",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
        mode=mode, persist=persist, journal=journal,
    )


def seed_docs(db, rng, n):
    for index in range(n):
        db.clock.advance(0.1)
        db.create({
            "Form": rng.choice(["Memo", "Memo", "Memo", "Task"]),
            "Subject": f"{rng.choice(WORDS)} {index}",
            "Body": " ".join(rng.choice(WORDS) for _ in range(6)),
            "Amount": rng.randrange(100),
        })


def random_ops(db, rng, n_ops):
    """A randomized batch over every mutation kind a consumer must track."""
    for _ in range(n_ops):
        db.clock.advance(0.1)
        roll = rng.random()
        unids = db.unids()
        if roll < 0.35 or not unids:
            db.create({
                "Form": rng.choice(["Memo", "Memo", "Task"]),
                "Subject": f"{rng.choice(WORDS)} new",
                "Body": " ".join(rng.choice(WORDS) for _ in range(6)),
                "Amount": rng.randrange(100),
            })
        elif roll < 0.65:
            db.update(rng.choice(unids), {
                "Subject": f"{rng.choice(WORDS)} edited",
                "Amount": rng.randrange(100),
            })
        elif roll < 0.80:
            db.delete(rng.choice(unids))
        elif roll < 0.90:
            db.soft_delete(rng.choice(unids))
        elif db.trash:
            db.restore(rng.choice(db.trash))


def view_state(view):
    return [(entry.unid, entry.values) for entry in view.entries()]


class TestViewEquivalence:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    @pytest.mark.parametrize("journal", [True, False])
    def test_warm_open_equals_rebuild_after_random_batch(
        self, tmp_path, seed, journal
    ):
        path = str(tmp_path / f"eq{seed}{journal}")
        rng = random.Random(seed)
        engine = StorageEngine(path)
        db = NotesDatabase("eq.nsf", clock=VirtualClock(),
                           rng=random.Random(seed * 7), engine=engine)
        seed_docs(db, rng, 40)
        make_view(db).close()  # saves the sidecar at the current seq
        engine.close()

        engine = StorageEngine(path)
        db = NotesDatabase("eq.nsf", clock=VirtualClock(),
                           rng=random.Random(seed * 13), engine=engine)
        random_ops(db, rng, 60)
        warm = make_view(db, journal=journal)
        if journal:
            assert warm.loaded_from_disk
            assert warm.rebuilds == 0
            assert warm.catch_up.last_path == "topup"
        else:
            assert not warm.loaded_from_disk
            assert warm.catch_up.last_path == "rebuild"
        cold = make_view(db, journal=False, persist=False)
        assert view_state(warm) == view_state(cold)
        engine.close()

    def test_trash_saved_in_sidecar_reconciles(self, tmp_path):
        path = str(tmp_path / "trash")
        engine = StorageEngine(path)
        db = NotesDatabase("t.nsf", clock=VirtualClock(),
                           rng=random.Random(1), engine=engine)
        kept = db.create({"Form": "Memo", "Subject": "kept", "Amount": 1})
        gone = db.create({"Form": "Memo", "Subject": "gone", "Amount": 2})
        db.soft_delete(gone.unid)
        make_view(db).close()
        engine.close()

        engine = StorageEngine(path)
        db = NotesDatabase("t.nsf", clock=VirtualClock(),
                           rng=random.Random(2), engine=engine)
        warm = make_view(db)
        cold = make_view(db, journal=False, persist=False)
        assert view_state(warm) == view_state(cold)
        assert kept.unid in warm.all_unids()
        engine.close()


class TestFullTextEquivalence:
    @pytest.mark.parametrize("seed", [5, 23])
    @pytest.mark.parametrize("journal", [True, False])
    def test_warm_open_equals_rebuild_after_random_batch(
        self, tmp_path, seed, journal
    ):
        path = str(tmp_path / f"ft{seed}{journal}")
        rng = random.Random(seed)
        engine = StorageEngine(path)
        db = NotesDatabase("ft.nsf", clock=VirtualClock(),
                           rng=random.Random(seed * 7), engine=engine)
        seed_docs(db, rng, 40)
        FullTextIndex(db, persist=True).close()
        engine.close()

        engine = StorageEngine(path)
        db = NotesDatabase("ft.nsf", clock=VirtualClock(),
                           rng=random.Random(seed * 13), engine=engine)
        random_ops(db, rng, 60)
        warm = FullTextIndex(db, persist=True, journal=journal)
        if journal:
            assert warm.loaded_from_disk
            assert warm.catch_up.last_path == "topup"
        else:
            assert not warm.loaded_from_disk
            assert warm.catch_up.last_path == "rebuild"
        cold = FullTextIndex(db)
        assert warm.document_count == cold.document_count
        assert warm.postings_snapshot() == cold.postings_snapshot()
        for word in WORDS:
            assert [hit.unid for hit in warm.search(word)] == [
                hit.unid for hit in cold.search(word)
            ]
        warm.close()
        cold.close()
        engine.close()


class TestFallbacks:
    def test_view_rebuilds_when_journal_identity_changes(self, tmp_path):
        path = str(tmp_path / "reseed")
        engine = StorageEngine(path)
        db = NotesDatabase("r.nsf", clock=VirtualClock(),
                           rng=random.Random(1), engine=engine)
        db.create({"Form": "Memo", "Subject": "a", "Amount": 1})
        make_view(db).close()
        engine.close()

        engine = StorageEngine(path)
        db = NotesDatabase("r.nsf", clock=VirtualClock(),
                           rng=random.Random(2), engine=engine)
        db.create({"Form": "Memo", "Subject": "b", "Amount": 2})
        # A sidecar stamped by a different journal (pre-journal file or a
        # reseeded one) must not be topped up — seqs are not comparable.
        db.journal_id = "0123456789abcdef"
        warm = make_view(db)
        assert not warm.loaded_from_disk
        assert warm.catch_up.last_path == "rebuild"
        assert sorted(values for _, values in view_state(warm)) == [
            ("a", 1), ("b", 2)
        ]
        engine.close()

    def test_refresh_rebuilds_when_purge_log_cannot_reach_back(self):
        db = NotesDatabase("p.nsf", clock=VirtualClock(),
                           rng=random.Random(9))
        rng = random.Random(9)
        seed_docs(db, rng, 10)
        view = make_view(db, persist=False, mode="manual")
        assert view.refresh() == "noop"
        # Push more purges through the log than it retains.
        doomed = [
            db.create({"Form": "Task", "Subject": "churn"}).unid
            for _ in range(1100)
        ]
        for unid in doomed:
            db.delete(unid)
        db.clock.advance(10)
        assert db.purge_stubs(db.clock.now) == 1100
        assert db.purges_since(0) is None  # log no longer reaches back
        db.update(db.unids()[0], {"Amount": 999})  # a real change on top
        assert view.refresh() == "rebuild"
        cold = make_view(db, journal=False, persist=False)
        assert view_state(view) == view_state(cold)

    def test_refresh_tops_up_over_a_purge(self):
        db = NotesDatabase("p2.nsf", clock=VirtualClock(),
                           rng=random.Random(4))
        rng = random.Random(4)
        seed_docs(db, rng, 8)
        view = make_view(db, persist=False, mode="manual")
        victim = next(
            unid for unid in db.unids()
            if db.get(unid).get("Form") == "Memo"
        )
        db.delete(victim)
        db.clock.advance(10)
        db.purge_stubs(db.clock.now)
        assert view.refresh() == "topup"
        assert victim not in view.all_unids()
        cold = make_view(db, journal=False, persist=False)
        assert view_state(view) == view_state(cold)


class TestSegmentedLayoutFallbacks:
    """The rebuild fallbacks again, but with a *multi-segment* sidecar on
    disk: falling back must also clear every old segment key, not just
    one snapshot record (the pre-segment tests above never had more than
    one record to lose)."""

    def _multi_segment_world(self, path, seed=31):
        """Two save cycles → at least two segments in every sidecar."""
        rng = random.Random(seed)
        engine = StorageEngine(path)
        db = NotesDatabase("seg.nsf", clock=VirtualClock(),
                           rng=random.Random(seed * 7), engine=engine)
        seed_docs(db, rng, 30)
        view = make_view(db)
        index = FullTextIndex(db, persist=True)
        view.save_index()
        index.save_checkpoint()
        random_ops(db, rng, 20)
        view.save_index()
        index.save_checkpoint()
        assert view.catch_up.segment_stats["entries"].segments >= 2
        assert index.catch_up.segment_stats["docs"].segments >= 2
        view.close()
        index.close()
        engine.close()

    @staticmethod
    def _assert_no_orphan_segment_keys(engine, view_name="Equiv"):
        """Every sidecar key must be named by a committed manifest."""
        import json

        expected = set()
        for meta_key, manifests in (
            (b"viewidx:" + view_name.encode(),
             {"index": b"viewidx:" + view_name.encode()}),
            (b"ftidx:meta", {"terms": b"ftidx:terms", "docs": b"ftidx:docs"}),
        ):
            raw = engine.get(meta_key)
            if raw is None:
                continue
            expected.add(meta_key)
            meta = json.loads(raw.decode())
            for field, namespace in manifests.items():
                for seg_id in meta.get(field, {}).get("segments", ()):
                    expected.add(namespace + b":dir:" + str(seg_id).encode())
                    expected.add(namespace + b":blob:" + str(seg_id).encode())
        actual = {
            key for key in engine.keys()
            if key.startswith(b"viewidx:") or key.startswith(b"ftidx:")
        }
        assert actual == expected

    def test_foreign_journal_id_rebuilds_and_resets_segments(self, tmp_path):
        path = str(tmp_path / "foreign")
        self._multi_segment_world(path)

        engine = StorageEngine(path)
        db = NotesDatabase("seg.nsf", clock=VirtualClock(),
                           rng=random.Random(2), engine=engine)
        db.create({"Form": "Memo", "Subject": "post-reseed", "Amount": 7})
        # A multi-segment sidecar stamped by another journal: seqs are
        # not comparable, so neither consumer may top up from it.
        db.journal_id = "fedcba9876543210"
        warm_view = make_view(db)
        warm_index = FullTextIndex(db, persist=True)
        assert not warm_view.loaded_from_disk
        assert warm_view.catch_up.last_path == "rebuild"
        assert not warm_index.loaded_from_disk
        assert warm_index.catch_up.last_path == "rebuild"
        cold_view = make_view(db, journal=False, persist=False)
        cold_index = FullTextIndex(db)
        assert view_state(warm_view) == view_state(cold_view)
        assert warm_index.postings_snapshot() == cold_index.postings_snapshot()
        # Saving the rebuilt state sweeps every segment the foreign
        # checkpoint left behind — nothing orphaned, fresh single segment.
        warm_view.save_index()
        warm_index.save_checkpoint()
        self._assert_no_orphan_segment_keys(engine)
        assert warm_view.catch_up.segment_stats["entries"].segments == 1
        assert warm_index.catch_up.segment_stats["docs"].segments == 1
        warm_index.close()
        cold_index.close()
        engine.close()

    def test_purge_log_overflow_rebuilds_and_resets_segments(self, tmp_path):
        path = str(tmp_path / "overflow")
        self._multi_segment_world(path)

        engine = StorageEngine(path)
        db = NotesDatabase("seg.nsf", clock=VirtualClock(),
                           rng=random.Random(3), engine=engine)
        # Push more purges through the log than it retains, so the saved
        # checkpoints' purge seq falls off the back of the log.
        doomed = [
            db.create({"Form": "Task", "Subject": "churn"}).unid
            for _ in range(1100)
        ]
        for unid in doomed:
            db.delete(unid)
        db.clock.advance(10)
        assert db.purge_stubs(db.clock.now) >= 1100  # plus leftover stubs
        db.update(db.unids()[0], {"Amount": 999})
        warm_view = make_view(db)
        warm_index = FullTextIndex(db, persist=True)
        assert not warm_view.loaded_from_disk
        assert warm_view.catch_up.last_path == "rebuild"
        assert not warm_index.loaded_from_disk
        assert warm_index.catch_up.last_path == "rebuild"
        cold_view = make_view(db, journal=False, persist=False)
        cold_index = FullTextIndex(db)
        assert view_state(warm_view) == view_state(cold_view)
        assert warm_index.postings_snapshot() == cold_index.postings_snapshot()
        warm_view.save_index()
        warm_index.save_checkpoint()
        self._assert_no_orphan_segment_keys(engine)
        warm_index.close()
        cold_index.close()
        engine.close()

    def test_warm_open_tops_up_over_multiple_segments(self, tmp_path):
        """The happy path on a fragmented sidecar: a third session tops
        up from a two-segment stack and appends a third segment."""
        path = str(tmp_path / "fragmented")
        self._multi_segment_world(path)

        engine = StorageEngine(path)
        db = NotesDatabase("seg.nsf", clock=VirtualClock(),
                           rng=random.Random(4), engine=engine)
        rng = random.Random(77)
        random_ops(db, rng, 15)
        warm = make_view(db)
        assert warm.loaded_from_disk
        assert warm.catch_up.last_path == "topup"
        cold = make_view(db, journal=False, persist=False)
        assert view_state(warm) == view_state(cold)
        warm.save_index()
        assert warm.catch_up.segment_stats["entries"].segments >= 3 or (
            warm.catch_up.merges > 0
        )
        engine.close()


class TestSeqAcknowledgedPurge:
    def _db_with_stub(self):
        db = NotesDatabase("a.nsf", clock=VirtualClock(),
                           rng=random.Random(2), server="hub")
        doc = db.create({"Form": "Memo", "Subject": "x"})
        db.clock.advance(1)
        db.delete(doc.unid)
        return db, doc.unid

    def test_no_partners_purges_nothing(self):
        db, unid = self._db_with_stub()
        assert db.acknowledged_seq() is None
        assert db.purge_acknowledged_stubs() == 0
        assert unid in db.stubs

    def test_waits_for_the_slowest_partner(self):
        db, unid = self._db_with_stub()
        stub_seq = db.update_seq
        db.replication_seq[("fast", "send")] = stub_seq
        db.replication_seq[("slow", "send")] = stub_seq - 1
        assert db.acknowledged_seq() == stub_seq - 1
        assert db.purge_acknowledged_stubs() == 0
        assert unid in db.stubs

        db.replication_seq[("slow", "send")] = stub_seq
        assert db.purge_acknowledged_stubs() == 1
        assert unid not in db.stubs
        # The purge is journaled so stale consumers replay it.
        assert (db.purge_seq, unid) in db.purges_since(0)

    def test_receive_entries_are_not_acks(self):
        db, unid = self._db_with_stub()
        db.replication_seq[("peer", "receive")] = db.update_seq
        assert db.acknowledged_seq() is None
        assert db.purge_acknowledged_stubs() == 0


class TestClusterJournalReplay:
    def _world(self):
        clock = VirtualClock()
        network = SimulatedNetwork(clock)
        for name in ("c1", "c2"):
            network.add_server(name)
        a = NotesDatabase("app.nsf", clock=clock, rng=random.Random(3),
                          server="c1")
        network.server("c1").add_database(a)
        b = a.new_replica("c2")
        network.server("c2").add_database(b)
        cluster = ClusterReplicator(network)
        cluster.attach(a)
        cluster.attach(b)
        return clock, network, cluster, a, b

    def test_repeated_edits_drain_as_one_push(self):
        clock, network, cluster, a, b = self._world()
        doc = a.create({"S": "v0"})
        network.partition("c1", "c2")
        for version in range(50):
            clock.advance(0.1)
            a.update(doc.unid, {"S": f"v{version + 1}"})
        assert cluster.backlog_size == 1
        pushes_before = cluster.stats.pushes
        network.partition("c1", "c2", partitioned=False)
        cluster.catch_up()
        assert b.get(doc.unid).get("S") == "v50"
        # 50 journal entries collapsed to the one live revision.
        assert cluster.stats.pushes - pushes_before == 1

    def test_drain_acknowledges_for_stub_purge(self):
        clock, network, cluster, a, b = self._world()
        doc = a.create({"S": "x"})
        clock.advance(1)
        a.delete(doc.unid)
        # The delete was pushed live, so the partner has acked the seq
        # and the stub is immediately purgeable — no wall-clock wait.
        assert a.acknowledged_seq() == a.update_seq
        assert a.purge_acknowledged_stubs() == 1
        assert doc.unid not in a.stubs
        assert doc.unid not in b

    def test_stalled_link_blocks_purge_until_drained(self):
        clock, network, cluster, a, b = self._world()
        doc = a.create({"S": "x"})
        network.partition("c1", "c2")
        clock.advance(1)
        a.delete(doc.unid)
        assert a.purge_acknowledged_stubs() == 0  # c2 has not seen it
        network.partition("c1", "c2", partitioned=False)
        cluster.catch_up()
        assert doc.unid not in b
        assert a.purge_acknowledged_stubs() == 1

    def test_soft_delete_during_outage_rides_pending(self):
        clock, network, cluster, a, b = self._world()
        doc = a.create({"S": "x"})
        network.partition("c1", "c2")
        clock.advance(1)
        a.soft_delete(doc.unid)  # not journaled: pending-table path
        assert cluster.backlog_size >= 1
        network.partition("c1", "c2", partitioned=False)
        cluster.catch_up()
        assert cluster.backlog_size == 0
        assert doc.unid not in b
