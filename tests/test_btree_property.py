"""Property-based tests: the B+tree behaves exactly like a sorted dict."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage import BPlusTree

keys = st.integers(min_value=-10_000, max_value=10_000)
values = st.integers()


@given(st.dictionaries(keys, values, max_size=300))
def test_items_match_sorted_dict(mapping):
    tree = BPlusTree(order=6)
    for key, value in mapping.items():
        tree.insert(key, value)
    assert list(tree.items()) == sorted(mapping.items())
    tree.validate()


@given(st.lists(st.tuples(keys, values), max_size=300))
def test_last_insert_wins(pairs):
    tree = BPlusTree(order=5)
    shadow = {}
    for key, value in pairs:
        tree.insert(key, value)
        shadow[key] = value
    assert dict(tree.items()) == shadow
    assert len(tree) == len(shadow)


@given(
    st.dictionaries(keys, values, max_size=200),
    st.integers(min_value=-10_000, max_value=10_000),
    st.integers(min_value=-10_000, max_value=10_000),
)
def test_range_matches_filter(mapping, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BPlusTree(order=8)
    for key, value in mapping.items():
        tree.insert(key, value)
    expected = sorted((k, v) for k, v in mapping.items() if lo <= k <= hi)
    assert list(tree.range(lo, hi)) == expected


@given(st.dictionaries(keys, values, min_size=1, max_size=200), st.data())
def test_delete_subset_keeps_rest(mapping, data):
    tree = BPlusTree(order=5)
    for key, value in mapping.items():
        tree.insert(key, value)
    victims = data.draw(
        st.lists(st.sampled_from(sorted(mapping)), unique=True, max_size=len(mapping))
    )
    for key in victims:
        tree.delete(key)
    survivors = {k: v for k, v in mapping.items() if k not in set(victims)}
    assert dict(tree.items()) == survivors
    tree.validate()


@given(st.dictionaries(keys, values, max_size=400))
def test_bulk_load_equals_sorted_dict(mapping):
    tree = BPlusTree(order=5)
    tree.bulk_load(sorted(mapping.items()))
    assert list(tree.items()) == sorted(mapping.items())
    tree.validate()


@given(
    st.dictionaries(keys, values, min_size=1, max_size=200),
    st.dictionaries(keys, values, max_size=50),
)
def test_bulk_loaded_tree_accepts_mutations(base, extra):
    tree = BPlusTree(order=4)
    tree.bulk_load(sorted(base.items()))
    shadow = dict(base)
    for key, value in extra.items():
        tree.insert(key, value)
        shadow[key] = value
    for key in list(shadow)[: len(shadow) // 2]:
        tree.delete(key)
        del shadow[key]
    assert dict(tree.items()) == shadow
    tree.validate()


class BTreeMachine(RuleBasedStateMachine):
    """Stateful fuzz: arbitrary interleavings keep tree == dict."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)  # small order stresses rebalancing
        self.shadow = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.shadow[key] = value

    @rule(key=keys)
    def delete_if_present(self, key):
        if key in self.shadow:
            assert self.tree.delete(key) == self.shadow.pop(key)
        else:
            assert key not in self.tree

    @rule(key=keys)
    def lookup(self, key):
        assert self.tree.get(key) == self.shadow.get(key)

    @invariant()
    def sizes_agree(self):
        assert len(self.tree) == len(self.shadow)

    @invariant()
    def structure_valid(self):
        self.tree.validate()


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(max_examples=25, stateful_step_count=60)
