"""Tests for selective replication (formula filters, truncation)."""

import pytest

from repro.core import ItemType
from repro.replication import Replicator, SelectiveReplication


@pytest.fixture
def stocked(pair, clock):
    a, b = pair
    for index in range(10):
        a.create({"Form": "Order" if index % 2 else "Memo",
                  "Region": "west" if index < 5 else "east",
                  "N": index})
    clock.advance(1)
    return a, b


class TestSelective:
    def test_formula_filters_incoming(self, stocked, clock):
        a, b = stocked
        selective = SelectiveReplication('SELECT Form = "Order"')
        stats = Replicator().pull(b, a, selective=selective)
        assert stats.docs_transferred == 5
        assert stats.docs_skipped == 5
        assert all(doc.form == "Order" for doc in b.all_documents())

    def test_compound_selection(self, stocked, clock):
        a, b = stocked
        selective = SelectiveReplication(
            'SELECT Form = "Order" & Region = "west"'
        )
        Replicator().pull(b, a, selective=selective)
        assert len(b) == 2  # orders 1 and 3

    def test_filter_applies_per_direction(self, stocked, clock):
        a, b = stocked
        b.create({"Form": "Order", "Region": "east", "N": 99})
        selective = SelectiveReplication('SELECT Form = "Order"')
        stats = Replicator().replicate(a, b, selective_b=selective)
        # a receives everything from b; b received only Orders
        assert len(a) == 11
        assert len(b) == 6

    def test_updates_to_selected_docs_flow(self, stocked, clock):
        a, b = stocked
        selective = SelectiveReplication('SELECT Form = "Order"')
        rep = Replicator()
        rep.pull(b, a, selective=selective)
        order_unid = next(d.unid for d in a.all_documents() if d.form == "Order")
        clock.advance(1)
        a.update(order_unid, {"Status": "shipped"})
        clock.advance(1)
        stats = rep.pull(b, a, selective=selective)
        assert stats.docs_transferred == 1
        assert b.get(order_unid).get("Status") == "shipped"

    def test_truncation_replaces_large_rich_text(self, pair, clock):
        a, b = pair
        doc = a.create({"Form": "Memo", "Subject": "big"})
        a.update(doc.unid, {"Body": a.get(doc.unid).item("Subject") and "x" * 50_000})
        a.get(doc.unid).set("Body", "x" * 50_000, ItemType.RICH_TEXT)
        clock.advance(1)
        selective = SelectiveReplication("SELECT @All", truncate_over=10_000)
        stats = Replicator().pull(b, a, selective=selective)
        copy = b.get(doc.unid)
        assert copy.get("$Truncated") == 1
        assert len(copy.get("Body")) < 1_000
        assert stats.bytes_transferred < 5_000
        # the source keeps its full body
        assert len(a.get(doc.unid).get("Body")) == 50_000

    def test_small_docs_not_truncated(self, pair, clock):
        a, b = pair
        doc = a.create({"Form": "Memo", "Body": "short"})
        clock.advance(1)
        selective = SelectiveReplication("SELECT @All", truncate_over=10_000)
        Replicator().pull(b, a, selective=selective)
        assert b.get(doc.unid).get("$Truncated") is None


class TestConnectionLevelFormulas:
    def test_connection_formula_scopes_a_branch_server(self):
        """A branch replica pulls only its region through the connection
        document's replication formula, while the hub receives everything."""
        from repro.bench.runners import build_deployment
        from repro.replication import ReplicationScheduler, ReplicationTopology

        deployment = build_deployment(2, seed=3)
        hub, branch = deployment.databases
        for index in range(10):
            deployment.clock.advance(1)
            hub.create({"Form": "Order",
                        "Region": "west" if index % 2 else "east"})
        branch.create({"Form": "Order", "Region": "west", "Local": 1})
        deployment.clock.advance(1)
        topology = ReplicationTopology("scoped")
        topology.connect(
            "srv0", "srv1", interval=60,
            selective_b='SELECT Region = "west"',  # srv1 receives west only
        )
        scheduler = ReplicationScheduler(deployment.network, topology)
        scheduler.run_round()
        assert len(hub) == 11  # hub received the branch's local doc
        assert all(doc.get("Region") == "west" for doc in branch.all_documents())
        assert len(branch) == 6  # 5 west from hub + its own

    def test_connection_formula_on_event_loop(self):
        from repro.bench.runners import build_deployment
        from repro.replication import ReplicationScheduler, ReplicationTopology
        from repro.sim import EventScheduler

        deployment = build_deployment(2, seed=4)
        hub, branch = deployment.databases
        hub.create({"Form": "Order", "Region": "east"})
        hub.create({"Form": "Order", "Region": "west"})
        topology = ReplicationTopology("scoped")
        topology.connect("srv0", "srv1", interval=60,
                         selective_b='SELECT Region = "west"')
        scheduler = ReplicationScheduler(deployment.network, topology)
        events = EventScheduler(deployment.clock)
        scheduler.attach(events)
        events.run_until(61)
        assert len(branch) == 1
