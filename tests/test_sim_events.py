"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventScheduler, VirtualClock


class TestScheduling:
    def test_event_fires_at_its_time(self, clock, events):
        fired = []
        events.at(5.0, lambda: fired.append(clock.now))
        events.run_until(10.0)
        assert fired == [5.0]

    def test_clock_ends_at_run_until_bound(self, clock, events):
        events.at(2.0, lambda: None)
        events.run_until(10.0)
        assert clock.now == 10.0

    def test_events_fire_in_time_order(self, clock, events):
        order = []
        events.at(3.0, lambda: order.append("c"))
        events.at(1.0, lambda: order.append("a"))
        events.at(2.0, lambda: order.append("b"))
        events.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self, events):
        order = []
        events.at(1.0, lambda: order.append(1))
        events.at(1.0, lambda: order.append(2))
        events.at(1.0, lambda: order.append(3))
        events.run()
        assert order == [1, 2, 3]

    def test_after_is_relative_to_now(self, clock, events):
        clock.advance(10)
        fired = []
        events.after(5, lambda: fired.append(clock.now))
        events.run()
        assert fired == [15.0]

    def test_past_scheduling_rejected(self, clock, events):
        clock.advance(5)
        with pytest.raises(SimulationError):
            events.at(4.0, lambda: None)

    def test_negative_delay_rejected(self, events):
        with pytest.raises(SimulationError):
            events.after(-1, lambda: None)

    def test_run_until_partial(self, events):
        fired = []
        events.at(1.0, lambda: fired.append(1))
        events.at(5.0, lambda: fired.append(5))
        executed = events.run_until(2.0)
        assert executed == 1 and fired == [1]
        events.run()
        assert fired == [1, 5]

    def test_cancelled_event_skipped(self, events):
        fired = []
        handle = events.at(1.0, lambda: fired.append(1))
        handle.cancel()
        events.run()
        assert fired == []

    def test_event_can_schedule_more_events(self, clock, events):
        fired = []

        def chain():
            fired.append(clock.now)
            if len(fired) < 3:
                events.after(1.0, chain)

        events.after(1.0, chain)
        events.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_guards_against_runaway(self, events):
        def forever():
            events.after(1.0, forever)

        events.after(1.0, forever)
        with pytest.raises(SimulationError):
            events.run(max_events=50)


class TestRepeating:
    def test_every_fires_at_interval(self, clock, events):
        fired = []
        events.every(10.0, lambda: fired.append(clock.now))
        events.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_every_with_start_delay(self, clock, events):
        fired = []
        events.every(10.0, lambda: fired.append(clock.now), start_delay=1.0)
        events.run_until(25.0)
        assert fired == [1.0, 11.0, 21.0]

    def test_cancel_stops_series(self, clock, events):
        fired = []
        handle = events.every(10.0, lambda: fired.append(clock.now))
        events.run_until(25.0)
        handle.cancel()
        events.run_until(100.0)
        assert fired == [10.0, 20.0]

    def test_non_positive_interval_rejected(self, events):
        with pytest.raises(SimulationError):
            events.every(0, lambda: None)

    def test_len_counts_pending(self, events):
        events.at(1.0, lambda: None)
        handle = events.at(2.0, lambda: None)
        handle.cancel()
        assert len(events) == 1
