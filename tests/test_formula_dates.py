"""Tests for the calendar and name @functions."""

import pytest

from repro.errors import FormulaEvalError, FormulaSyntaxError
from repro.formula import compile_formula


def ev(source):
    return compile_formula(source).evaluate()


class TestDateFunctions:
    def test_date_builds_epoch_seconds(self):
        assert ev("@Date(1970; 1; 1)") == [0.0]
        assert ev("@Date(1970; 1; 2)") == [86400.0]

    def test_date_with_time_of_day(self):
        assert ev("@Date(1970; 1; 1; 1; 30; 15)") == [5415.0]

    def test_component_extraction(self):
        stamp = "@Date(1999; 9; 7; 14; 45; 30)"
        assert ev(f"@Year({stamp})") == [1999]
        assert ev(f"@Month({stamp})") == [9]
        assert ev(f"@Day({stamp})") == [7]
        assert ev(f"@Hour({stamp})") == [14]
        assert ev(f"@Minute({stamp})") == [45]

    def test_weekday_notes_convention(self):
        # 1999-09-05 was a Sunday -> 1; Saturday -> 7
        assert ev("@Weekday(@Date(1999; 9; 5))") == [1]
        assert ev("@Weekday(@Date(1999; 9; 11))") == [7]

    def test_adjust_days_and_hours(self):
        assert ev("@Adjust(@Date(1999; 12; 31); 0; 0; 1; 0; 0; 0)") == ev(
            "@Date(2000; 1; 1)"
        )
        assert ev("@Adjust(0; 0; 0; 0; 2; 30; 0)") == [9000.0]

    def test_adjust_months_clamps_to_month_end(self):
        # Jan 31 + 1 month -> Feb 29 in a leap year, Feb 28 otherwise
        assert ev("@Day(@Adjust(@Date(2000; 1; 31); 0; 1; 0; 0; 0; 0))") == [29]
        assert ev("@Day(@Adjust(@Date(1999; 1; 31); 0; 1; 0; 0; 0; 0))") == [28]

    def test_adjust_years_across_month_overflow(self):
        assert ev("@Month(@Adjust(@Date(1999; 11; 15); 0; 3; 0; 0; 0; 0))") == [2]
        assert ev("@Year(@Adjust(@Date(1999; 11; 15); 0; 3; 0; 0; 0; 0))") == [2000]

    def test_date_functions_are_list_mapped(self):
        assert ev("@Year(@Date(1999;1;1):@Date(2001;1;1))") == [1999, 2001]

    def test_text_input_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev('@Year("not a date")')


class TestNameFunction:
    def test_abbreviate(self):
        assert ev('@Name([Abbreviate]; "CN=A B/OU=S/O=Acme")') == ["A B/S/Acme"]

    def test_canonicalize(self):
        assert ev('@Name([Canonicalize]; "a/s/Acme")') == ["CN=a/OU=s/O=Acme"]

    def test_common_name(self):
        assert ev('@Name([CN]; "alice/sales/acme")') == ["alice"]

    def test_org(self):
        assert ev('@Name([O]; "alice/sales/acme")') == ["acme"]
        assert ev('@Name([O]; "flat-name")') == [""]

    def test_maps_over_lists(self):
        assert ev('@Name([CN]; "a/x":"b/y")') == ["a", "b"]

    def test_unknown_action_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev('@Name([Reverse]; "a/b")')

    def test_keyword_literal_lexing(self):
        assert ev("@Sort(2:1:3; [DESCENDING])") == [3, 2, 1]
        with pytest.raises(FormulaSyntaxError):
            ev("@Name([Oops; 1)")
