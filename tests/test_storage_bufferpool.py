"""Tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage import BufferPool, PagedFile


@pytest.fixture
def file(tmp_path):
    with PagedFile(str(tmp_path / "pool.pages")) as f:
        yield f


@pytest.fixture
def pool(file):
    return BufferPool(file, capacity=4)


def _fill_page(pool, page_id, marker: bytes):
    page = pool.fetch(page_id)
    page.insert(marker)
    pool.unpin(page_id, dirty=True)


class TestBufferPool:
    def test_capacity_must_be_positive(self, file):
        with pytest.raises(BufferPoolError):
            BufferPool(file, capacity=0)

    def test_new_page_is_pinned_and_dirty(self, pool):
        page_id, page = pool.new_page()
        page.insert(b"data")
        pool.unpin(page_id, dirty=True)
        assert len(pool) == 1

    def test_fetch_hit_vs_miss_counters(self, pool):
        page_id, _ = pool.new_page()
        pool.unpin(page_id)
        pool.flush_all()
        pool.drop_all()
        pool.fetch(page_id)
        pool.unpin(page_id)
        pool.fetch(page_id)
        pool.unpin(page_id)
        assert pool.misses == 1 and pool.hits == 1
        assert pool.hit_ratio == 0.5

    def test_unpin_without_pin_rejected(self, pool):
        page_id, _ = pool.new_page()
        pool.unpin(page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)

    def test_eviction_past_capacity(self, pool):
        ids = []
        for _ in range(6):
            page_id, _ = pool.new_page()
            pool.unpin(page_id, dirty=True)
            ids.append(page_id)
        assert len(pool) <= 4
        assert pool.evictions >= 2

    def test_evicted_dirty_page_written_back(self, pool, file):
        page_id, page = pool.new_page()
        page.insert(b"survive eviction")
        pool.unpin(page_id, dirty=True)
        for _ in range(5):
            other, _ = pool.new_page()
            pool.unpin(other, dirty=True)
        fresh = pool.fetch(page_id)
        assert fresh.get(0) == b"survive eviction"
        pool.unpin(page_id)

    def test_pinned_pages_never_evicted(self, pool):
        page_id, _ = pool.new_page()  # stays pinned
        for _ in range(3):
            other, _ = pool.new_page()
            pool.unpin(other)
        with pytest.raises(BufferPoolError):
            # all pinned? No - only one is pinned; filling with pins:
            pins = [pool.new_page()[0] for _ in range(4)]
            __ = pins

    def test_before_write_hook_called_on_flush(self, file):
        calls = []
        pool = BufferPool(file, capacity=4, before_write=lambda: calls.append(1))
        page_id, _ = pool.new_page()
        pool.unpin(page_id, dirty=True)
        pool.flush(page_id)
        assert calls == [1]

    def test_flush_clean_page_skips_hook(self, file):
        calls = []
        pool = BufferPool(file, capacity=4, before_write=lambda: calls.append(1))
        page_id, _ = pool.new_page()
        pool.unpin(page_id, dirty=True)
        pool.flush(page_id)
        pool.flush(page_id)  # now clean
        assert calls == [1]

    def test_drop_all_discards_dirty_state(self, pool, file):
        page_id, page = pool.new_page()
        pool.unpin(page_id, dirty=True)
        pool.flush_all()
        fetched = pool.fetch(page_id)
        fetched.insert(b"lost on crash")
        pool.unpin(page_id, dirty=True)
        pool.drop_all()
        reread = pool.fetch(page_id)
        assert reread.slots() == []
        pool.unpin(page_id)
