"""Tests for the formula tokenizer."""

import pytest

from repro.errors import FormulaSyntaxError
from repro.formula import tokenize
from repro.formula.lexer import TokenType


def kinds(source):
    return [(t.type, t.text) for t in tokenize(source)[:-1]]  # drop EOF


class TestLexer:
    def test_numbers(self):
        assert kinds("42 3.14") == [
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "3.14"),
        ]

    def test_strings(self):
        assert kinds('"hello world"') == [(TokenType.STRING, "hello world")]

    def test_string_escapes(self):
        assert kinds(r'"say \"hi\""') == [(TokenType.STRING, 'say "hi"')]

    def test_brace_strings(self):
        assert kinds("{curly text}") == [(TokenType.STRING, "curly text")]

    def test_unterminated_string_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize('"oops')
        with pytest.raises(FormulaSyntaxError):
            tokenize("{oops")

    def test_at_functions(self):
        assert kinds("@If @Sum") == [
            (TokenType.ATFUNC, "@If"),
            (TokenType.ATFUNC, "@Sum"),
        ]

    def test_bare_at_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("@ +")

    def test_identifiers_with_dollar(self):
        assert kinds("$Conflict Subject_1") == [
            (TokenType.IDENT, "$Conflict"),
            (TokenType.IDENT, "Subject_1"),
        ]

    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select Select")[0] == (TokenType.KEYWORD, "select")
        assert all(k == (TokenType.KEYWORD, "select") for k in kinds("SELECT select"))

    def test_assign_vs_list_operator(self):
        assert kinds("x := 1:2") == [
            (TokenType.IDENT, "x"),
            (TokenType.OP, ":="),
            (TokenType.NUMBER, "1"),
            (TokenType.OP, ":"),
            (TokenType.NUMBER, "2"),
        ]

    def test_comparison_operators(self):
        texts = [t for _, t in kinds("a <= b >= c <> d != e")]
        assert texts == ["a", "<=", "b", ">=", "c", "<>", "d", "!=", "e"]

    def test_unknown_char_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("a # b")

    def test_positions_recorded(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3
        assert tokens[2].pos == 5
