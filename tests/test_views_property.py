"""Property-based view tests: the incremental index always equals a fresh
rebuild, and view order always equals the collation-sorted document list."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NotesDatabase
from repro.sim import VirtualClock
from repro.views import SortOrder, View, ViewColumn

subjects = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                           max_codepoint=127),
    min_size=1,
    max_size=8,
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["create", "update", "delete", "retype"]),
        st.integers(min_value=0, max_value=100),
        subjects,
    ),
    max_size=40,
)


def fresh_db():
    return NotesDatabase("prop.nsf", clock=VirtualClock(),
                         rng=random.Random(42))


def make_view(db, mode):
    return View(
        db, "P",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="N", item="N"),
        ],
        mode=mode,
    )


def apply(db, ops):
    counter = 0
    for op, pick, subject in ops:
        db.clock.advance(1)
        unids = db.unids()
        if op == "create" or not unids:
            counter += 1
            db.create({"Form": "Memo", "Subject": subject, "N": counter})
        elif op == "update":
            db.update(unids[pick % len(unids)], {"Subject": subject})
        elif op == "retype":
            db.update(unids[pick % len(unids)],
                      {"Form": "Other" if pick % 2 else "Memo"})
        else:
            db.delete(unids[pick % len(unids)])


@given(ops=operations)
@settings(max_examples=50, deadline=None)
def test_incremental_view_equals_rebuild(ops):
    db = fresh_db()
    incremental = make_view(db, "auto")
    apply(db, ops)
    rebuilt = make_view(db, "manual")
    assert incremental.all_unids() == rebuilt.all_unids()
    assert [e.values for e in incremental.entries()] == [
        e.values for e in rebuilt.entries()
    ]


@given(ops=operations)
@settings(max_examples=50, deadline=None)
def test_view_order_matches_sorted_documents(ops):
    db = fresh_db()
    view = make_view(db, "auto")
    apply(db, ops)
    from repro.views import collate

    expected = sorted(
        (doc for doc in db.all_documents() if doc.form == "Memo"),
        key=lambda doc: (collate(doc.get("Subject", "")),
                         (1, doc.created, doc.unid)),
    )
    assert view.all_unids() == [doc.unid for doc in expected]


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_view_membership_matches_selection(ops):
    db = fresh_db()
    view = make_view(db, "auto")
    apply(db, ops)
    memos = {doc.unid for doc in db.all_documents() if doc.form == "Memo"}
    assert set(view.all_unids()) == memos
    assert len(view) == len(memos)
