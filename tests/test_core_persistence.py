"""Tests for NotesDatabase persistence over the storage engine."""

import random

import pytest

from repro.core import NotesDatabase
from repro.sim import VirtualClock
from repro.storage import StorageEngine


@pytest.fixture
def store(tmp_path):
    def open_db(seed=1):
        engine = StorageEngine(str(tmp_path / "nsf"))
        clock = VirtualClock()
        db = NotesDatabase(
            "persist.nsf", clock=clock, rng=random.Random(seed), engine=engine
        )
        return engine, db

    return open_db


class TestPersistence:
    def test_documents_survive_clean_close(self, store):
        engine, db = store()
        doc = db.create({"Subject": "kept", "Amount": 5})
        engine.close()
        _, reloaded = store(seed=2)
        assert len(reloaded) == 1
        fresh = reloaded.get(doc.unid)
        assert fresh.get("Subject") == "kept"
        assert fresh.get("Amount") == 5
        assert fresh.seq == doc.seq

    def test_updates_persisted(self, store):
        engine, db = store()
        doc = db.create({"S": "v1"})
        db.update(doc.unid, {"S": "v2"})
        engine.close()
        _, reloaded = store(seed=2)
        assert reloaded.get(doc.unid).get("S") == "v2"
        assert reloaded.get(doc.unid).seq == 2

    def test_stubs_persisted(self, store):
        engine, db = store()
        doc = db.create({"S": "x"})
        db.delete(doc.unid)
        engine.close()
        _, reloaded = store(seed=2)
        assert len(reloaded) == 0
        assert doc.unid in reloaded.stubs

    def test_crash_recovery_keeps_documents(self, store):
        engine, db = store()
        doc = db.create({"Subject": "pre-crash"})
        engine.simulate_crash()
        _, recovered = store(seed=2)
        assert recovered.get(doc.unid).get("Subject") == "pre-crash"

    def test_deleted_doc_gone_after_crash(self, store):
        engine, db = store()
        doc = db.create({"S": "x"})
        db.delete(doc.unid)
        engine.simulate_crash()
        _, recovered = store(seed=2)
        assert doc.unid not in recovered
        assert doc.unid in recovered.stubs

    def test_revision_history_survives(self, store):
        engine, db = store()
        doc = db.create({"S": "1"})
        for index in range(5):
            db.clock.advance(1)
            db.update(doc.unid, {"S": str(index)})
        revisions = list(db.get(doc.unid).revisions)
        engine.close()
        _, reloaded = store(seed=2)
        assert reloaded.get(doc.unid).revisions == revisions

    def test_many_documents_roundtrip(self, store):
        engine, db = store()
        expected = {}
        for index in range(100):
            doc = db.create({"Subject": f"doc {index}", "N": index})
            expected[doc.unid] = index
        engine.close()
        _, reloaded = store(seed=2)
        assert len(reloaded) == 100
        for unid, number in expected.items():
            assert reloaded.get(unid).get("N") == number
