"""Tests for the write-ahead log."""

import pytest

from repro.errors import WalError
from repro.storage import LogRecord, RecordType, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "test.wal"))
    yield log
    log.close()


class TestRecords:
    def test_encode_decode_roundtrip(self):
        record = LogRecord(RecordType.PUT, 7, b"key", b"before", b"after")
        assert LogRecord.decode(record.encode()) == record

    def test_control_records_roundtrip(self):
        for rtype in (RecordType.BEGIN, RecordType.COMMIT, RecordType.ABORT):
            record = LogRecord(rtype, 42)
            assert LogRecord.decode(record.encode()) == record

    def test_binary_safe_payloads(self):
        record = LogRecord(RecordType.PUT, 1, bytes(range(256)), b"\x00" * 10, b"\xff" * 10)
        assert LogRecord.decode(record.encode()) == record


class TestAppendReplay:
    def test_lsn_is_monotonic(self, wal):
        lsns = [
            wal.append(LogRecord(RecordType.PUT, 1, b"k", b"", b"v"))
            for _ in range(5)
        ]
        assert lsns == sorted(lsns) and len(set(lsns)) == 5

    def test_records_replay_in_order(self, wal):
        originals = [
            LogRecord(RecordType.BEGIN, 1),
            LogRecord(RecordType.PUT, 1, b"a", b"", b"1"),
            LogRecord(RecordType.PUT, 1, b"b", b"", b"2"),
            LogRecord(RecordType.COMMIT, 1),
        ]
        for record in originals:
            wal.append(record)
        wal.flush()
        replayed = [record for _, record in wal.records()]
        assert replayed == originals

    def test_replay_from_lsn(self, wal):
        wal.append(LogRecord(RecordType.BEGIN, 1))
        middle = wal.append(LogRecord(RecordType.PUT, 1, b"k", b"", b"v"))
        wal.append(LogRecord(RecordType.COMMIT, 1))
        wal.flush()
        replayed = list(wal.records(from_lsn=middle))
        assert len(replayed) == 2
        assert replayed[0][1].type == RecordType.PUT

    def test_flush_is_idempotent(self, wal):
        wal.append(LogRecord(RecordType.BEGIN, 1))
        wal.flush()
        flushes = wal.flushes
        wal.flush()
        assert wal.flushes == flushes

    def test_truncate_resets(self, wal):
        wal.append(LogRecord(RecordType.BEGIN, 1))
        wal.flush()
        wal.truncate()
        assert wal.end_lsn == 0
        assert list(wal.records()) == []

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "re.wal")
        log = WriteAheadLog(path)
        log.append(LogRecord(RecordType.PUT, 3, b"x", b"", b"y"))
        log.close()
        reopened = WriteAheadLog(path)
        records = [record for _, record in reopened.records()]
        assert records == [LogRecord(RecordType.PUT, 3, b"x", b"", b"y")]
        reopened.close()


class TestCrashTail:
    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        log = WriteAheadLog(path)
        log.append(LogRecord(RecordType.PUT, 1, b"good", b"", b"1"))
        log.flush()
        log.append(LogRecord(RecordType.PUT, 1, b"half", b"", b"2"))
        log._file.flush()
        log._file.close()
        # chop the last record in half
        with open(path, "r+b") as raw:
            raw.seek(0, 2)
            size = raw.tell()
            raw.truncate(size - 5)
        survivor = WriteAheadLog(path)
        keys = [record.key for _, record in survivor.records()]
        assert keys == [b"good"]
        survivor.close()

    def test_corrupt_tail_treated_as_torn(self, tmp_path):
        path = str(tmp_path / "corrupt.wal")
        log = WriteAheadLog(path)
        log.append(LogRecord(RecordType.PUT, 1, b"good", b"", b"1"))
        last = log.append(LogRecord(RecordType.PUT, 1, b"bad", b"", b"2"))
        log.close()
        with open(path, "r+b") as raw:
            raw.seek(last + 12)
            raw.write(b"\xde\xad")
        survivor = WriteAheadLog(path)
        keys = [record.key for _, record in survivor.records()]
        assert keys == [b"good"]
        survivor.close()

    def test_corruption_before_tail_raises(self, tmp_path):
        path = str(tmp_path / "midcorrupt.wal")
        log = WriteAheadLog(path)
        first = log.append(LogRecord(RecordType.PUT, 1, b"one", b"", b"1"))
        log.append(LogRecord(RecordType.PUT, 1, b"two", b"", b"2"))
        log.close()
        with open(path, "r+b") as raw:
            raw.seek(first + 12)
            raw.write(b"\xde\xad")
        survivor = WriteAheadLog(path)
        with pytest.raises(WalError):
            list(survivor.records())
        survivor.close()

    def test_abandon_discards_unflushed(self, tmp_path):
        path = str(tmp_path / "abandon.wal")
        log = WriteAheadLog(path)
        log.append(LogRecord(RecordType.PUT, 1, b"durable", b"", b"1"))
        log.flush()
        log.append(LogRecord(RecordType.PUT, 1, b"volatile", b"", b"2"))
        log.abandon()
        survivor = WriteAheadLog(path)
        keys = [record.key for _, record in survivor.records()]
        assert keys == [b"durable"]
        survivor.close()
