"""Tests for UNIDs and originator ids."""

import random

import pytest

from repro.core import OriginatorId, new_replica_id, new_unid


class TestIds:
    def test_unid_format(self):
        unid = new_unid(random.Random(1))
        assert len(unid) == 32
        int(unid, 16)  # hex

    def test_replica_id_format(self):
        rid = new_replica_id(random.Random(1))
        assert len(rid) == 16
        int(rid, 16)

    def test_determinism_from_seed(self):
        assert new_unid(random.Random(5)) == new_unid(random.Random(5))

    def test_distinct_draws(self):
        rng = random.Random(2)
        assert len({new_unid(rng) for _ in range(1000)}) == 1000


class TestOriginatorId:
    def test_higher_seq_is_newer(self):
        a = OriginatorId("U", 2, (5.0, 1))
        b = OriginatorId("U", 1, (9.0, 9))
        assert a.newer_than(b) and not b.newer_than(a)

    def test_equal_seq_tie_breaks_on_time(self):
        a = OriginatorId("U", 2, (5.0, 2))
        b = OriginatorId("U", 2, (5.0, 1))
        assert a.newer_than(b)

    def test_identical_not_newer(self):
        a = OriginatorId("U", 1, (1.0, 1))
        assert not a.newer_than(a)

    def test_cross_note_comparison_rejected(self):
        a = OriginatorId("U1", 1, (1.0, 1))
        b = OriginatorId("U2", 1, (1.0, 1))
        with pytest.raises(ValueError):
            a.newer_than(b)
