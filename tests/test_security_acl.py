"""Tests for the ACL: levels, precedence, document-level composition."""

import random

import pytest

from repro.core import ItemType, NotesDatabase
from repro.errors import AccessDenied, SecurityError
from repro.security import AccessControlList, AclLevel


@pytest.fixture
def acl():
    acl = AccessControlList(
        default_level=AclLevel.NO_ACCESS,
        groups={"Mods": ["carol/Acme"], "Staff": ["dave/Acme", "Mods"]},
    )
    acl.add("alice/Acme", AclLevel.MANAGER, roles=["Admin"])
    acl.add("Mods", AclLevel.EDITOR, roles=["Moderate"])
    acl.add("*/Acme", AclLevel.AUTHOR)
    acl.add("reader/Acme", AclLevel.READER)
    acl.add("depositor/Acme", AclLevel.DEPOSITOR)
    return acl


@pytest.fixture
def sdb(acl, clock):
    return NotesDatabase("secure.nsf", clock=clock, rng=random.Random(5), acl=acl)


class TestResolution:
    def test_exact_beats_group_and_wildcard(self, acl):
        assert acl.level_of("alice/Acme") == AclLevel.MANAGER

    def test_group_beats_wildcard(self, acl):
        assert acl.level_of("carol/Acme") == AclLevel.EDITOR

    def test_nested_group_membership(self, acl):
        acl.add("Staff", AclLevel.DESIGNER)
        assert acl.level_of("dave/Acme") == AclLevel.DESIGNER
        # carol is in Staff via Mods nesting: takes the highest match
        assert acl.level_of("carol/Acme") == AclLevel.DESIGNER

    def test_wildcard_applies(self, acl):
        assert acl.level_of("random/Acme") == AclLevel.AUTHOR

    def test_default_for_strangers(self, acl):
        assert acl.level_of("nobody/Elsewhere") == AclLevel.NO_ACCESS

    def test_roles_resolved(self, acl):
        assert acl.roles_of("alice/Acme") == {"Admin"}
        assert acl.roles_of("carol/Acme") == {"Moderate"}
        assert acl.roles_of("random/Acme") == set()

    def test_default_entry_cannot_be_removed(self, acl):
        with pytest.raises(SecurityError):
            acl.remove("-Default-")

    def test_remove_unknown_rejected(self, acl):
        with pytest.raises(SecurityError):
            acl.remove("ghost/Acme")

    def test_exact_entry_replaced_on_re_add(self, acl):
        acl.add("alice/Acme", AclLevel.READER)
        assert acl.level_of("alice/Acme") == AclLevel.READER


class TestDatabaseEnforcement:
    def test_no_access_cannot_create(self, sdb):
        with pytest.raises(AccessDenied):
            sdb.create({"S": "x"}, author="nobody/Elsewhere")

    def test_depositor_cannot_create_documents_here(self, sdb):
        # Depositor < AUTHOR: create denied in this model
        with pytest.raises(AccessDenied):
            sdb.create({"S": "x"}, author="depositor/Acme")

    def test_reader_cannot_create(self, sdb):
        with pytest.raises(AccessDenied):
            sdb.create({"S": "x"}, author="reader/Acme")

    def test_author_creates_and_edits_own(self, sdb):
        doc = sdb.create({"S": "mine"}, author="frank/Acme")
        sdb.update(doc.unid, {"S": "still mine"}, author="frank/Acme")
        assert sdb.get(doc.unid).get("S") == "still mine"

    def test_author_cannot_edit_others(self, sdb):
        doc = sdb.create({"S": "franks"}, author="frank/Acme")
        with pytest.raises(AccessDenied):
            sdb.update(doc.unid, {"S": "grab"}, author="grace/Acme")

    def test_authors_item_grants_coauthorship(self, sdb):
        doc = sdb.create({"S": "shared"}, author="frank/Acme")
        sdb.get(doc.unid).set("DocAuthors", ["grace/Acme"], ItemType.AUTHORS)
        sdb.update(doc.unid, {"S": "by grace"}, author="grace/Acme")
        assert sdb.get(doc.unid).get("S") == "by grace"

    def test_editor_edits_anything(self, sdb):
        doc = sdb.create({"S": "franks"}, author="frank/Acme")
        sdb.update(doc.unid, {"S": "moderated"}, author="carol/Acme")

    def test_author_deletes_own_only(self, sdb):
        doc = sdb.create({"S": "temp"}, author="frank/Acme")
        with pytest.raises(AccessDenied):
            sdb.delete(doc.unid, author="grace/Acme")
        sdb.delete(doc.unid, author="frank/Acme")

    def test_manager_deletes_anything(self, sdb):
        doc = sdb.create({"S": "x"}, author="frank/Acme")
        sdb.delete(doc.unid, author="alice/Acme")

    def test_delete_flag_denies_even_editor(self, sdb, acl):
        acl.add("carol/Acme", AclLevel.EDITOR, can_delete_documents=False)
        doc = sdb.create({"S": "x"}, author="frank/Acme")
        with pytest.raises(AccessDenied):
            sdb.delete(doc.unid, author="carol/Acme")


class TestReaderFields:
    def test_readers_item_restricts(self, sdb):
        doc = sdb.create({"S": "secret"}, author="alice/Acme")
        sdb.get(doc.unid).set("R", ["alice/Acme"], ItemType.READERS)
        assert sdb.get(doc.unid, as_user="alice/Acme")
        with pytest.raises(AccessDenied):
            sdb.get(doc.unid, as_user="frank/Acme")

    def test_readers_via_role(self, sdb):
        doc = sdb.create({"S": "mod only"}, author="alice/Acme")
        sdb.get(doc.unid).set("R", ["[Moderate]"], ItemType.READERS)
        assert sdb.get(doc.unid, as_user="carol/Acme")
        with pytest.raises(AccessDenied):
            sdb.get(doc.unid, as_user="frank/Acme")

    def test_readers_via_group(self, sdb):
        doc = sdb.create({"S": "staff"}, author="alice/Acme")
        sdb.get(doc.unid).set("R", ["Staff"], ItemType.READERS)
        assert sdb.get(doc.unid, as_user="dave/Acme")
        assert sdb.get(doc.unid, as_user="carol/Acme")  # nested via Mods

    def test_authors_implicitly_read(self, sdb):
        doc = sdb.create({"S": "x"}, author="alice/Acme")
        fresh = sdb.get(doc.unid)
        fresh.set("R", ["nobodyelse/Acme"], ItemType.READERS)
        fresh.set("A", ["frank/Acme"], ItemType.AUTHORS)
        assert sdb.get(doc.unid, as_user="frank/Acme")

    def test_readers_restrict_even_manager(self, sdb):
        doc = sdb.create({"S": "hidden from mgmt"}, author="frank/Acme")
        sdb.get(doc.unid).set("R", ["frank/Acme"], ItemType.READERS)
        with pytest.raises(AccessDenied):
            sdb.get(doc.unid, as_user="alice/Acme")

    def test_all_documents_filters(self, sdb):
        open_doc = sdb.create({"S": "open"}, author="alice/Acme")
        hidden = sdb.create({"S": "hidden"}, author="alice/Acme")
        sdb.get(hidden.unid).set("R", ["alice/Acme"], ItemType.READERS)
        visible = {d.unid for d in sdb.all_documents(as_user="frank/Acme")}
        assert visible == {open_doc.unid}

    def test_view_respects_readers(self, sdb):
        from repro.views import View, ViewColumn

        sdb.create({"Form": "Memo", "S": "public"}, author="alice/Acme")
        hidden = sdb.create({"Form": "Memo", "S": "private"}, author="alice/Acme")
        sdb.get(hidden.unid).set("R", ["alice/Acme"], ItemType.READERS)
        view = View(sdb, "All", columns=[ViewColumn(title="S", item="S")])
        assert len(list(view.documents(as_user="frank/Acme"))) == 1
        assert len(list(view.documents(as_user="alice/Acme"))) == 2
