"""Tests for the @function library."""

import pytest

from repro.core import Document, NotesDatabase
from repro.errors import FormulaEvalError
from repro.formula import compile_formula, register_function
from repro.sim import VirtualClock


def ev(source, doc=None, **kw):
    return compile_formula(source).evaluate(doc, **kw)


@pytest.fixture
def doc():
    document = Document("B" * 32, seq=3, seq_time=(20.0, 5), created=2.0,
                        modified=20.0, updated_by=["alice/Acme", "bob/Acme"],
                        note_id=7)
    document.set_all({"Subject": "Quarterly Report", "Nums": [4, 8, 15]})
    return document


class TestControlFlow:
    def test_if_two_way(self):
        assert ev('@If(1; "yes"; "no")') == ["yes"]
        assert ev('@If(0; "yes"; "no")') == ["no"]

    def test_if_multiway(self):
        f = '@If(x = 1; "one"; x = 2; "two"; "many")'
        assert compile_formula(f"x := 2; {f}").evaluate() == ["two"]
        assert compile_formula(f"x := 9; {f}").evaluate() == ["many"]

    def test_if_lazy(self):
        assert ev('@If(1; "safe"; 1/0)') == ["safe"]

    def test_if_without_else_gives_empty(self):
        assert ev('@If(0; "x")') == [""]

    def test_select_picks_by_index(self):
        assert ev('@Select(2; "a"; "b"; "c")') == ["b"]
        assert ev('@Select(9; "a"; "b")') == ["b"]  # clamps to last

    def test_select_zero_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev('@Select(0; "a")')

    def test_do_returns_last(self):
        assert ev("@Do(1; 2; 3)") == [3]

    def test_success_failure(self):
        assert ev("@Success") == [1]
        with pytest.raises(FormulaEvalError):
            ev('@Failure("bad input")')

    def test_unknown_function_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev("@TotallyMadeUp(1)")

    def test_arity_checked(self):
        with pytest.raises(FormulaEvalError):
            ev("@Left(1)")
        with pytest.raises(FormulaEvalError):
            ev('@Abs(1; 2)')


class TestDocumentFunctions:
    def test_unid_and_noteid(self, doc):
        assert ev("@DocumentUniqueID", doc) == ["B" * 32]
        assert ev("@NoteID", doc) == [7]

    def test_created_modified(self, doc):
        assert ev("@Created", doc) == [2.0]
        assert ev("@Modified", doc) == [20.0]

    def test_author_and_updatedby(self, doc):
        assert ev("@Author", doc) == ["alice/Acme"]
        assert ev("@UpdatedBy", doc) == ["alice/Acme", "bob/Acme"]

    def test_isnewdoc(self, doc):
        assert ev("@IsNewDoc", doc) == [0]
        fresh = Document("C" * 32)
        assert ev("@IsNewDoc", fresh) == [1]

    def test_doc_functions_need_doc(self):
        with pytest.raises(FormulaEvalError):
            ev("@Created")

    def test_now_uses_clock(self, doc):
        clock = VirtualClock(start=77.0)
        assert ev("@Now", doc, clock=clock) == [77.0]

    def test_today_floors_to_day(self, doc):
        clock = VirtualClock(start=86400 * 3 + 5000)
        assert ev("@Today", doc, clock=clock) == [86400.0 * 3]

    def test_username(self):
        assert ev("@UserName", user="carol/Acme") == ["carol/Acme"]

    def test_isavailable(self, doc):
        assert ev("@IsAvailable(Subject)", doc) == [1]
        assert ev("@IsAvailable(Ghost)", doc) == [0]
        assert ev("@IsUnavailable(Ghost)", doc) == [1]

    def test_getfield_setfield(self, doc):
        assert ev('@GetField("Subject")', doc) == ["Quarterly Report"]
        assert ev('@SetField("Tmp"; 5); @GetField("Tmp")', doc) == [5]

    def test_getprofilefield(self):
        db = NotesDatabase("p.nsf")
        profile = db.profile("settings")
        db.update(profile.unid, {"Theme": "dark"})
        assert ev('@GetProfileField("settings"; "Theme")', db=db) == ["dark"]


class TestTextFunctions:
    def test_text_conversion(self):
        assert ev("@Text(5)") == ["5"]
        assert ev("@Text(2.5)") == ["2.5"]
        assert ev('@TextToNumber("42")') == [42]
        with pytest.raises(FormulaEvalError):
            ev('@TextToNumber("nope")')

    def test_length(self):
        assert ev('@Length("hello")') == [5]
        assert ev('@Length("a":"abc")') == [1, 3]

    def test_left_right_middle(self):
        assert ev('@Left("notes"; 2)') == ["no"]
        assert ev('@Left("a-b"; "-")') == ["a"]
        assert ev('@Right("notes"; 2)') == ["es"]
        assert ev('@Right("a-b"; "-")') == ["b"]
        assert ev('@Middle("abcdef"; 1; 3)') == ["bcd"]

    def test_contains_begins_ends(self):
        assert ev('@Contains("Lotus Notes"; "note")') == [1]
        assert ev('@Begins("Lotus"; "Lo")') == [1]
        assert ev('@Ends("Lotus"; "us")') == [1]
        assert ev('@Contains("abc"; "z")') == [0]

    def test_case_functions(self):
        assert ev('@UpperCase("mix")') == ["MIX"]
        assert ev('@LowerCase("MIX")') == ["mix"]
        assert ev('@ProperCase("big deal")') == ["Big Deal"]

    def test_trim(self):
        assert ev('@Trim("  a   b  ")') == ["a b"]
        assert ev('@Trim(""no"" : "x")'.replace('""no""', '""')) == ["x"]

    def test_word(self):
        assert ev('@Word("a,b,c"; ","; 3)') == ["c"]
        assert ev('@Word("a,b"; ","; 9)') == [""]

    def test_replacesubstring(self):
        assert ev('@ReplaceSubstring("a-b-c"; "-"; "_")') == ["a_b_c"]

    def test_repeat(self):
        assert ev('@Repeat("ab"; 3)') == ["ababab"]

    def test_matches_wildcards(self):
        assert ev('@Matches("report-7"; "report-?")') == [1]
        assert ev('@Matches("summary"; "report*")') == [0]


class TestListFunctions:
    def test_elements(self):
        assert ev("@Elements(1:2:3)") == [3]
        assert ev('@Elements("")') == [0]

    def test_subset(self):
        assert ev("@Subset(1:2:3:4; 2)") == [1, 2]
        assert ev("@Subset(1:2:3:4; -1)") == [4]
        with pytest.raises(FormulaEvalError):
            ev("@Subset(1:2; 0)")

    def test_explode_implode(self):
        assert ev('@Explode("a,b,c"; ",")') == ["a", "b", "c"]
        assert ev('@Implode("a":"b"; "+")') == ["a+b"]
        assert ev('@Implode(1:2)') == ["1 2"]

    def test_unique(self):
        assert ev('@Unique("a":"b":"a":"c")') == ["a", "b", "c"]

    def test_sort(self):
        assert ev('@Sort("b":"a":"c")') == ["a", "b", "c"]
        assert ev('@Sort(3:1:2; "[DESCENDING]")') == [3, 2, 1]

    def test_member_ismember(self):
        assert ev('@Member("b"; "a":"b")') == [2]
        assert ev('@Member("z"; "a":"b")') == [0]
        assert ev('@IsMember("a"; "a":"b")') == [1]

    def test_replace(self):
        assert ev('@Replace("a":"b":"c"; "b"; "B")') == ["a", "B", "c"]

    def test_keywords(self):
        assert ev('@Keywords("the budget review"; "budget":"staff")') == ["budget"]


class TestNumberFunctions:
    def test_sum_min_max(self, doc):
        assert ev("@Sum(Nums)", doc) == [27]
        assert ev("@Min(Nums)", doc) == [4]
        assert ev("@Max(Nums; 99)", doc) == [99]

    def test_abs_round_integer(self):
        assert ev("@Abs(-4:4)") == [4, 4]
        assert ev("@Round(2.6)") == [3]
        assert ev("@Round(2.345; 2)") == [2.35] or ev("@Round(2.345; 2)") == [2.34]
        assert ev("@Integer(2.9)") == [2]

    def test_modulo(self):
        assert ev("@Modulo(10; 3)") == [1]
        with pytest.raises(FormulaEvalError):
            ev("@Modulo(10; 0)")

    def test_sqrt_power(self):
        assert ev("@Sqrt(16)") == [4.0]
        assert ev("@Power(2; 10)") == [1024]
        with pytest.raises(FormulaEvalError):
            ev("@Sqrt(-1)")

    def test_sum_rejects_text(self):
        with pytest.raises(FormulaEvalError):
            ev('@Sum("a")')


class TestExtensibility:
    def test_register_custom_function(self):
        @register_function("@double", min_args=1, max_args=1)
        def _double(ctx, value):
            return [element * 2 for element in value]

        assert ev("@Double(21)") == [42]

    def test_custom_name_must_start_with_at(self):
        with pytest.raises(FormulaEvalError):
            register_function("nope")(lambda ctx: [1])
