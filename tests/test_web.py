"""Tests for the Domino web engine: URLs, rendering, request handling."""

import pytest

from repro.design import Application
from repro.security import AccessControlList, AclLevel
from repro.views import SortOrder, ViewColumn
from repro.web import DominoWebServer, parse_url
from repro.web.urls import WebError
from repro.core import ItemType


class TestUrlParsing:
    def test_database_only(self):
        parsed = parse_url("/sales.nsf")
        assert parsed.database == "sales.nsf"
        assert parsed.command == "opendatabase"

    def test_view_defaults_to_openview(self):
        parsed = parse_url("/sales.nsf/ByCustomer")
        assert parsed.command == "openview"
        assert parsed.view == "ByCustomer"

    def test_document_defaults_to_opendocument(self):
        parsed = parse_url("/db.nsf/v/ABC123")
        assert parsed.command == "opendocument"
        assert parsed.unid == "ABC123"

    def test_explicit_command_and_params(self):
        parsed = parse_url("/db.nsf/v?OpenView&Start=5&Count=10")
        assert parsed.command == "openview"
        assert parsed.param("start") == "5"
        assert parsed.param("COUNT") == "10"  # case-insensitive lookup

    def test_params_keep_case_for_item_names(self):
        parsed = parse_url("/db.nsf/v/U1?EditDocument&Status=done")
        assert parsed.params["Status"] == "done"

    def test_command_case_insensitive(self):
        assert parse_url("/db.nsf/v?openview").command == "openview"
        assert parse_url("/db.nsf/v?OPENVIEW").command == "openview"

    def test_url_decoding(self):
        parsed = parse_url("/db.nsf/By%20Customer?OpenView")
        assert parsed.view == "By Customer"

    def test_search_query(self):
        parsed = parse_url("/db.nsf/v?SearchView&Query=budget+cuts")
        assert parsed.command == "searchview"
        assert parsed.param("query") == "budget cuts"

    def test_bad_urls_rejected(self):
        for bad in ("nope", "/", "/db/v/u/extra", "/db.nsf?MakeCoffee",
                    "/db.nsf?OpenDocument"):
            with pytest.raises(WebError):
                parse_url(bad)


@pytest.fixture
def site(db):
    app = Application(db)
    app.save_view(
        "ByCustomer", 'SELECT Form = "Order"',
        [
            ViewColumn(title="Customer", item="Customer", categorized=True),
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
        ],
    )
    docs = [
        db.create({"Form": "Order", "Customer": f"cust{i % 2}",
                   "Subject": f"order {i}", "Body": f"needs widget {i}"})
        for i in range(6)
    ]
    server = DominoWebServer()
    server.register("sales.nsf", app)
    return db, server, docs


class TestRequests:
    def test_open_database_lists_views(self, site):
        db, server, _ = site
        response = server.handle("/sales.nsf")
        assert response.ok
        assert "ByCustomer" in response.body
        assert "test.nsf" in response.body  # the db title

    def test_open_view_renders_rows_and_categories(self, site):
        db, server, _ = site
        response = server.handle("/sales.nsf/ByCustomer?OpenView")
        assert response.ok
        assert response.body.count('class="doc"') == 6
        assert response.body.count('class="category"') == 2
        assert "OpenDocument" in response.body

    def test_view_paging(self, site):
        db, server, _ = site
        first = server.handle("/sales.nsf/ByCustomer?OpenView&Count=3")
        assert first.body.count('class="doc"') <= 3
        assert 'class="next"' in first.body
        # following the Next link terminates
        second = server.handle(
            "/sales.nsf/ByCustomer?OpenView&Start=4&Count=30"
        )
        assert 'class="next"' not in second.body

    def test_open_document(self, site):
        db, server, docs = site
        response = server.handle(
            f"/sales.nsf/ByCustomer/{docs[0].unid}?OpenDocument"
        )
        assert response.ok
        assert "order 0" in response.body
        assert "$" not in response.body.split("<dl>")[1]  # hidden items hidden

    def test_search_view(self, site):
        db, server, docs = site
        response = server.handle(
            "/sales.nsf/ByCustomer?SearchView&Query=widget+3"
        )
        assert response.ok
        assert docs[3].unid in response.body

    def test_edit_document_writes_items(self, site):
        db, server, docs = site
        response = server.handle(
            f"/sales.nsf/ByCustomer/{docs[0].unid}?EditDocument&Status=shipped",
            user="web/Acme",
        )
        assert response.ok
        doc = db.get(docs[0].unid)
        assert doc.get("Status") == "shipped"
        assert doc.updated_by[-1] == "web/Acme"
        assert doc.seq == 2

    def test_delete_document(self, site):
        db, server, docs = site
        response = server.handle(
            f"/sales.nsf/ByCustomer/{docs[5].unid}?DeleteDocument"
        )
        assert response.ok
        assert docs[5].unid not in db
        # and the view no longer shows it
        view_response = server.handle("/sales.nsf/ByCustomer?OpenView")
        assert view_response.body.count('class="doc"') == 5

    def test_default_view(self, site):
        db, server, _ = site
        response = server.handle("/sales.nsf/$defaultview?OpenView")
        assert response.ok and "ByCustomer" in response.body

    def test_unknown_database_404(self, site):
        _, server, _ = site
        assert server.handle("/ghost.nsf").status == 404

    def test_unknown_view_404(self, site):
        _, server, _ = site
        assert server.handle("/sales.nsf/Nope?OpenView").status == 404

    def test_unknown_document_404(self, site):
        _, server, _ = site
        response = server.handle("/sales.nsf/ByCustomer/" + "0" * 32)
        assert response.status == 404

    def test_malformed_url_400(self, site):
        _, server, _ = site
        assert server.handle("/sales.nsf?BrewCoffee").status == 400

    def test_html_is_escaped(self, site):
        db, server, _ = site
        doc = db.create({"Form": "Order", "Customer": "cust0",
                         "Subject": "<script>alert(1)</script>"})
        response = server.handle(
            f"/sales.nsf/ByCustomer/{doc.unid}?OpenDocument"
        )
        assert "<script>" not in response.body
        assert "&lt;script&gt;" in response.body


class TestReadViewEntries:
    def test_xml_shape(self, site):
        db, server, docs = site
        response = server.handle("/sales.nsf/ByCustomer?ReadViewEntries")
        assert response.ok
        body = response.body
        assert body.startswith('<?xml version="1.0"')
        assert 'toplevelentries="6"' in body
        assert body.count('category="true"') == 2
        assert body.count('unid="') == 6
        import xml.etree.ElementTree as ET

        root = ET.fromstring(body)
        entries = root.findall("viewentry")
        assert len(entries) == 8  # 2 categories + 6 documents
        doc_entry = next(e for e in entries if e.get("unid"))
        names = [e.get("name") for e in doc_entry.findall("entrydata")]
        assert names == ["Customer", "Subject"]

    def test_paging(self, site):
        db, server, _ = site
        response = server.handle(
            "/sales.nsf/ByCustomer?ReadViewEntries&Start=2&Count=3"
        )
        import xml.etree.ElementTree as ET

        root = ET.fromstring(response.body)
        assert root.get("start") == "2"
        assert len(root.findall("viewentry")) == 3

    def test_respects_reader_fields(self, site):
        db, server, docs = site
        from repro.security import AccessControlList, AclLevel

        db.acl = AccessControlList(default_level=AclLevel.EDITOR)
        db.get(docs[0].unid).set("Hidden", ["boss/Acme"], ItemType.READERS)
        response = server.handle(
            "/sales.nsf/ByCustomer?ReadViewEntries", user="peon/Acme"
        )
        assert response.body.count('unid="') == 5
        assert docs[0].unid not in response.body

    def test_xml_escaping(self, site):
        db, server, _ = site
        db.create({"Form": "Order", "Customer": "cust0",
                   "Subject": "<&> weird"})
        response = server.handle("/sales.nsf/ByCustomer?ReadViewEntries")
        import xml.etree.ElementTree as ET

        ET.fromstring(response.body)  # must stay well-formed


class TestWebSecurity:
    def test_acl_gates_database(self, site):
        db, server, _ = site
        acl = AccessControlList(default_level=AclLevel.NO_ACCESS)
        acl.add("web/Acme", AclLevel.EDITOR)
        db.acl = acl
        assert server.handle("/sales.nsf", user="stranger").status == 401
        assert server.handle("/sales.nsf", user="web/Acme").ok

    def test_reader_fields_hide_documents_from_views(self, site):
        db, server, docs = site
        acl = AccessControlList(default_level=AclLevel.EDITOR)
        db.acl = acl
        db.get(docs[0].unid).set("Hidden", ["boss/Acme"], ItemType.READERS)
        response = server.handle("/sales.nsf/ByCustomer?OpenView",
                                 user="peon/Acme")
        assert response.body.count('class="doc"') == 5
        direct = server.handle(
            f"/sales.nsf/ByCustomer/{docs[0].unid}?OpenDocument",
            user="peon/Acme",
        )
        assert direct.status == 401

    def test_search_respects_reader_fields(self, site):
        db, server, docs = site
        acl = AccessControlList(default_level=AclLevel.EDITOR)
        db.acl = acl
        db.get(docs[2].unid).set("Hidden", ["boss/Acme"], ItemType.READERS)
        response = server.handle(
            "/sales.nsf/ByCustomer?SearchView&Query=widget+2",
            user="peon/Acme",
        )
        assert docs[2].unid not in response.body

    def test_edit_denied_for_reader(self, site):
        db, server, docs = site
        acl = AccessControlList(default_level=AclLevel.READER)
        db.acl = acl
        response = server.handle(
            f"/sales.nsf/ByCustomer/{docs[0].unid}?EditDocument&Status=nope",
            user="reader/Acme",
        )
        assert response.status == 401
        assert db.get(docs[0].unid).get("Status") is None
