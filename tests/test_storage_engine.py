"""Tests for the transactional storage engine."""

import pytest

from repro.errors import StorageError, WalError
from repro.storage import StorageEngine


@pytest.fixture
def engine(tmp_path):
    eng = StorageEngine(str(tmp_path / "db"))
    yield eng
    if eng._open:
        eng.close()


class TestBasics:
    def test_set_get(self, engine):
        engine.set(b"k", b"v")
        assert engine.get(b"k") == b"v"

    def test_missing_key_gives_none(self, engine):
        assert engine.get(b"nope") is None

    def test_overwrite(self, engine):
        engine.set(b"k", b"v1")
        engine.set(b"k", b"v2")
        assert engine.get(b"k") == b"v2"

    def test_remove(self, engine):
        engine.set(b"k", b"v")
        engine.remove(b"k")
        assert engine.get(b"k") is None
        assert b"k" not in engine

    def test_empty_value(self, engine):
        engine.set(b"empty", b"")
        assert engine.get(b"empty") == b""
        assert b"empty" in engine

    def test_large_value_chunked_across_pages(self, engine):
        blob = bytes(range(256)) * 200  # ~51 KB, spans many pages
        engine.set(b"blob", blob)
        assert engine.get(b"blob") == blob

    def test_len_and_keys(self, engine):
        engine.set(b"a", b"1")
        engine.set(b"b", b"2")
        assert len(engine) == 2
        assert set(engine.keys()) == {b"a", b"b"}

    def test_bad_durability_mode_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            StorageEngine(str(tmp_path / "x"), durability="fsync-maybe")

    def test_closed_engine_rejects_io(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "c"))
        engine.close()
        with pytest.raises(StorageError):
            engine.get(b"k")


class TestTransactions:
    def test_uncommitted_writes_invisible(self, engine):
        txn = engine.begin()
        engine.put(txn, b"k", b"v")
        assert engine.get(b"k") is None
        assert engine.get(b"k", txn) == b"v"

    def test_commit_publishes(self, engine):
        txn = engine.begin()
        engine.put(txn, b"k", b"v")
        engine.commit(txn)
        assert engine.get(b"k") == b"v"

    def test_abort_discards(self, engine):
        txn = engine.begin()
        engine.put(txn, b"k", b"v")
        engine.abort(txn)
        assert engine.get(b"k") is None

    def test_transactional_delete(self, engine):
        engine.set(b"k", b"v")
        txn = engine.begin()
        engine.delete(txn, b"k")
        assert engine.get(b"k") == b"v"  # still visible to others
        assert engine.get(b"k", txn) is None
        engine.commit(txn)
        assert engine.get(b"k") is None

    def test_multi_key_atomicity(self, engine):
        txn = engine.begin()
        engine.put(txn, b"a", b"1")
        engine.put(txn, b"b", b"2")
        engine.delete(txn, b"c")  # delete of missing key: tolerated at commit
        engine.commit(txn)
        assert engine.get(b"a") == b"1" and engine.get(b"b") == b"2"

    def test_use_after_commit_rejected(self, engine):
        txn = engine.begin()
        engine.put(txn, b"k", b"v")
        engine.commit(txn)
        with pytest.raises(WalError):
            engine.put(txn, b"k2", b"v2")

    def test_use_after_abort_rejected(self, engine):
        txn = engine.begin()
        engine.abort(txn)
        with pytest.raises(WalError):
            engine.commit(txn)

    def test_last_write_wins_within_txn(self, engine):
        txn = engine.begin()
        engine.put(txn, b"k", b"first")
        engine.put(txn, b"k", b"second")
        engine.commit(txn)
        assert engine.get(b"k") == b"second"


class TestSpaceReuse:
    def test_deleted_space_reused(self, engine):
        for round_number in range(5):
            for index in range(50):
                engine.set(f"k{index}".encode(), b"x" * 500)
            for index in range(50):
                engine.remove(f"k{index}".encode())
        # 5 rounds of 50 x 500B fit comfortably if space is reused.
        assert engine._pages.page_count < 40

    def test_many_keys(self, engine):
        for index in range(500):
            engine.set(f"key-{index:04d}".encode(), f"value {index}".encode())
        assert len(engine) == 500
        assert engine.get(b"key-0250") == b"value 250"


class TestDurabilityModes:
    def test_force_mode_survives_reopen(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "f"), durability="force")
        engine.set(b"k", b"v")
        engine.close()
        reopened = StorageEngine(str(tmp_path / "f"), durability="force")
        assert reopened.get(b"k") == b"v"
        reopened.close()

    def test_none_mode_works_in_memory(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "n"), durability="none")
        engine.set(b"k", b"v")
        assert engine.get(b"k") == b"v"
        engine.close()
