"""Tests for View: selection, ordering, categories, incremental updates."""

import pytest

from repro.core import NotesDatabase
from repro.errors import ViewError
from repro.views import CategoryRow, DocumentRow, SortOrder, View, ViewColumn


@pytest.fixture
def orders(db, clock):
    for index in range(12):
        clock.advance(1)
        db.create(
            {
                "Form": "Order",
                "Customer": f"cust{index % 3}",
                "Region": ["west", "east"][index % 2],
                "Amount": (index * 13) % 40,
            }
        )
    db.create({"Form": "Noise", "Customer": "zzz", "Amount": 1_000_000})
    return db


def make_view(db, **kw):
    defaults = dict(
        selection='SELECT Form = "Order"',
        columns=[
            ViewColumn(title="Customer", item="Customer", sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
    )
    defaults.update(kw)
    return View(db, "test", **defaults)


class TestSelectionAndOrder:
    def test_selection_filters(self, orders):
        view = make_view(orders)
        assert len(view) == 12

    def test_entries_sorted_by_collation(self, orders):
        view = make_view(orders)
        customers = [entry.values[0] for entry in view.entries()]
        assert customers == sorted(customers)

    def test_descending_sort(self, orders):
        view = make_view(
            orders,
            columns=[ViewColumn(title="Amount", item="Amount",
                                sort=SortOrder.DESCENDING)],
        )
        amounts = [entry.values[0] for entry in view.entries()]
        assert amounts == sorted(amounts, reverse=True)

    def test_no_sorted_column_falls_back_to_created(self, orders):
        view = make_view(
            orders, columns=[ViewColumn(title="Amount", item="Amount")]
        )
        amounts = [entry.values[0] for entry in view.entries()]
        expected = [(index * 13) % 40 for index in range(12)]
        assert amounts == expected

    def test_multi_key_sort(self, orders):
        view = make_view(
            orders,
            columns=[
                ViewColumn(title="Region", item="Region", sort=SortOrder.ASCENDING),
                ViewColumn(title="Amount", item="Amount", sort=SortOrder.ASCENDING),
            ],
        )
        pairs = [(e.values[0], e.values[1]) for e in view.entries()]
        assert pairs == sorted(pairs)

    def test_formula_column_in_key(self, orders):
        view = make_view(
            orders,
            columns=[
                ViewColumn(title="Bucket", formula='@If(Amount > 20; "high"; "low")',
                           sort=SortOrder.ASCENDING),
                ViewColumn(title="Amount", item="Amount"),
            ],
        )
        buckets = [e.values[0] for e in view.entries()]
        assert buckets == sorted(buckets)

    def test_invalid_mode_rejected(self, orders):
        with pytest.raises(ViewError):
            make_view(orders, mode="sometimes")

    def test_categorized_after_sorted_rejected(self, orders):
        with pytest.raises(ViewError):
            make_view(
                orders,
                columns=[
                    ViewColumn(title="A", item="Amount", sort=SortOrder.ASCENDING),
                    ViewColumn(title="C", item="Customer", categorized=True),
                ],
            )


class TestIncrementalMaintenance:
    def test_create_appears(self, orders):
        view = make_view(orders)
        doc = orders.create({"Form": "Order", "Customer": "aaa", "Amount": 1})
        assert doc.unid in view
        assert view.all_unids()[0] == doc.unid  # sorts first

    def test_update_moves_entry(self, orders):
        view = make_view(orders)
        doc = orders.create({"Form": "Order", "Customer": "aaa", "Amount": 1})
        orders.update(doc.unid, {"Customer": "zzz"})
        assert view.all_unids()[-1] == doc.unid

    def test_update_out_of_selection_removes(self, orders):
        view = make_view(orders)
        doc = orders.create({"Form": "Order", "Customer": "mid", "Amount": 2})
        orders.update(doc.unid, {"Form": "Noise"})
        assert doc.unid not in view

    def test_update_into_selection_adds(self, orders):
        view = make_view(orders)
        doc = orders.create({"Form": "Noise", "Customer": "x"})
        assert doc.unid not in view
        orders.update(doc.unid, {"Form": "Order"})
        assert doc.unid in view

    def test_delete_removes(self, orders):
        view = make_view(orders)
        doc = orders.create({"Form": "Order", "Customer": "gone"})
        orders.delete(doc.unid)
        assert doc.unid not in view

    def test_soft_delete_removes_restore_readds(self, orders):
        view = make_view(orders)
        doc = orders.create({"Form": "Order", "Customer": "trashy"})
        orders.soft_delete(doc.unid)
        assert doc.unid not in view
        orders.restore(doc.unid)
        assert doc.unid in view

    def test_manual_mode_stale_until_refresh(self, orders):
        view = make_view(orders, mode="manual")
        orders.create({"Form": "Order", "Customer": "late"})
        assert len(view) == 12
        view.refresh()
        assert len(view) == 13

    def test_rebuild_equals_incremental(self, orders):
        auto = make_view(orders)
        for index in range(5):
            doc = orders.create({"Form": "Order", "Customer": f"n{index}",
                                 "Amount": index})
            if index % 2:
                orders.update(doc.unid, {"Customer": f"m{index}"})
        manual = make_view(orders, mode="manual")
        assert auto.all_unids() == manual.all_unids()

    def test_closed_view_stops_updating(self, orders):
        view = make_view(orders)
        view.close()
        orders.create({"Form": "Order", "Customer": "after-close"})
        assert len(view) == 12


class TestCategoriesAndTotals:
    @pytest.fixture
    def view(self, orders):
        return make_view(
            orders,
            columns=[
                ViewColumn(title="Region", item="Region", categorized=True),
                ViewColumn(title="Customer", item="Customer",
                           sort=SortOrder.ASCENDING),
                ViewColumn(title="Amount", item="Amount", totals=True),
            ],
        )

    def test_category_rows_emitted(self, view):
        rows = view.rows()
        categories = [row for row in rows if isinstance(row, CategoryRow)]
        assert [category.value for category in categories] == ["east", "west"]

    def test_category_counts(self, view):
        rows = view.rows()
        categories = [row for row in rows if isinstance(row, CategoryRow)]
        assert sum(category.count for category in categories) == 12

    def test_category_subtotals_sum_to_grand_total(self, view):
        rows = view.rows()
        categories = [row for row in rows if isinstance(row, CategoryRow)]
        grand = view.totals()[2]
        assert sum(category.subtotals[2] for category in categories) == grand

    def test_document_rows_indented_under_categories(self, view):
        rows = view.rows()
        doc_rows = [row for row in rows if isinstance(row, DocumentRow)]
        assert all(row.level == 1 for row in doc_rows)

    def test_two_level_categories(self, orders):
        view = make_view(
            orders,
            columns=[
                ViewColumn(title="Region", item="Region", categorized=True),
                ViewColumn(title="Customer", item="Customer", categorized=True),
                ViewColumn(title="Amount", item="Amount", totals=True),
            ],
        )
        rows = view.rows()
        level0 = [r for r in rows if isinstance(r, CategoryRow) and r.level == 0]
        level1 = [r for r in rows if isinstance(r, CategoryRow) and r.level == 1]
        assert len(level0) == 2
        assert len(level1) == 6  # 3 customers per region
        assert sum(r.count for r in level0) == 12
        assert sum(r.count for r in level1) == 12


class TestKeyLookup:
    def test_documents_by_key(self, orders):
        view = make_view(orders)
        matches = view.documents_by_key("cust1")
        assert matches and all(d.get("Customer") == "cust1" for d in matches)

    def test_first_by_key_missing(self, orders):
        view = make_view(orders)
        assert view.first_by_key("nobody") is None

    def test_lookup_on_descending_view(self, orders):
        view = make_view(
            orders,
            columns=[ViewColumn(title="Amount", item="Amount",
                                sort=SortOrder.DESCENDING)],
        )
        matches = view.documents_by_key(26)
        assert matches and all(d.get("Amount") == 26 for d in matches)

    def test_lookup_without_sorted_column_rejected(self, orders):
        view = make_view(
            orders, columns=[ViewColumn(title="Amount", item="Amount")]
        )
        with pytest.raises(ViewError):
            view.documents_by_key(5)
