"""Tests for replica trimming (cutoff delete) and scheduled mail routing."""

import pytest

from repro.mail import Directory, MailRouter, make_memo
from repro.replication import Replicator, SelectiveReplication, SimulatedNetwork
from repro.sim import EventScheduler, VirtualClock


class TestCutoffDelete:
    def test_trims_old_documents(self, db, clock):
        old = db.create({"Subject": "old"})
        clock.advance(1000)
        fresh = db.create({"Subject": "new"})
        removed = db.cutoff_delete(older_than=500.0)
        assert removed == 1
        assert old.unid not in db and fresh.unid in db

    def test_leaves_no_stub(self, db, clock):
        doc = db.create({"Subject": "x"})
        clock.advance(1000)
        db.cutoff_delete(older_than=500.0)
        assert doc.unid not in db.stubs

    def test_views_drop_trimmed_docs(self, db, clock):
        from repro.views import View, ViewColumn

        doc = db.create({"Subject": "x"})
        view = View(db, "All", columns=[ViewColumn(title="S", item="Subject")])
        clock.advance(1000)
        db.cutoff_delete(older_than=500.0)
        assert doc.unid not in view

    def test_trimmed_documents_return_when_revised_elsewhere(self, pair, clock):
        """The documented caveat: no stub, so a later revision on the
        partner restores the whole document."""
        a, b = pair
        doc = a.create({"Subject": "boomerang"})
        clock.advance(1)
        Replicator().replicate(a, b)
        clock.advance(1000)
        b.cutoff_delete(older_than=500.0)
        assert doc.unid not in b
        clock.advance(1)
        a.update(doc.unid, {"Subject": "revised elsewhere"})
        clock.advance(1)
        Replicator().replicate(a, b)
        assert doc.unid in b  # it came back

    def test_trimmed_documents_return_after_history_clear(self, pair, clock):
        a, b = pair
        doc = a.create({"Subject": "boomerang"})
        clock.advance(1)
        Replicator().replicate(a, b)
        clock.advance(1000)
        b.cutoff_delete(older_than=500.0)
        clock.advance(1)
        Replicator().replicate(a, b)
        assert doc.unid not in b  # incremental pass skips the untouched doc
        b.clear_replication_history()
        clock.advance(1)
        Replicator().replicate(a, b)
        assert doc.unid in b  # full re-examination restores it

    def test_selective_formula_prevents_comeback(self, pair, clock):
        a, b = pair
        doc = a.create({"Form": "Old", "Subject": "trimmed"})
        keeper = a.create({"Form": "Current", "Subject": "kept"})
        clock.advance(1)
        selective = SelectiveReplication('SELECT Form = "Current"')
        rep = Replicator()
        rep.pull(b, a, selective=selective)
        assert doc.unid not in b and keeper.unid in b


class TestScheduledRouting:
    @pytest.fixture
    def chain_world(self):
        clock = VirtualClock()
        network = SimulatedNetwork(clock)
        for name in ("s0", "s1", "s2", "s3"):
            network.add_server(name)
        directory = Directory(clock=clock)
        directory.register_person("near/Acme", "s0")
        directory.register_person("far/Acme", "s3")
        router = MailRouter(network, directory)
        for left, right in (("s0", "s1"), ("s1", "s2"), ("s2", "s3")):
            router.add_route(left, right)
        return clock, router

    def test_latency_tracks_hops(self, chain_world):
        clock, router = chain_world
        events = EventScheduler(clock)
        router.attach(events, interval=60.0)
        router.submit(make_memo("near/Acme", "far/Acme", "long haul"), "s0")
        router.submit(make_memo("near/Acme", "near/Acme", "local"), "s0")
        events.run_until(600.0)
        assert router.stats.delivered == 2
        by_hops = dict(zip(router.stats.hop_counts,
                           router.stats.delivery_latency))
        assert by_hops[0] < by_hops[3]
        # three hops need three router passes of 60s each
        assert by_hops[3] >= 3 * 60.0

    def test_mail_submitted_later_still_flows(self, chain_world):
        clock, router = chain_world
        events = EventScheduler(clock)
        router.attach(events, interval=30.0)
        events.run_until(100.0)
        router.submit(make_memo("near/Acme", "far/Acme", "late memo"), "s0")
        events.run_until(400.0)
        assert router.stats.delivered == 1
        inbox = router.mail_file("far/Acme")
        assert [d.get("Subject") for d in inbox.all_documents()] == ["late memo"]
