"""Tests for the Document (data note) model."""

import pytest

from repro.core import Document, Item, ItemType
from repro.errors import DocumentError


@pytest.fixture
def doc():
    document = Document("A" * 32, seq=1, seq_time=(1.0, 1), created=1.0, modified=1.0)
    document.set_all({"Form": "Memo", "Subject": "hello", "Amount": 10})
    return document


class TestItems:
    def test_get_set(self, doc):
        doc.set("Color", "red")
        assert doc.get("Color") == "red"

    def test_get_default(self, doc):
        assert doc.get("Missing", "dflt") == "dflt"

    def test_get_list_wraps(self, doc):
        assert doc.get_list("Amount") == [10]
        doc.set("Tags", ["a", "b"])
        assert doc.get_list("Tags") == ["a", "b"]
        assert doc.get_list("Missing") == []

    def test_contains(self, doc):
        assert "Subject" in doc and "Nope" not in doc

    def test_item_object_access(self, doc):
        item = doc.item("Subject")
        assert isinstance(item, Item) and item.type == ItemType.TEXT

    def test_set_item_instance(self, doc):
        doc.set("Readers", Item.of("X", ["a/Acme"], ItemType.READERS))
        assert doc.item("Readers").type == ItemType.READERS
        assert doc.item("Readers").name == "Readers"

    def test_remove_item(self, doc):
        doc.remove_item("Amount")
        assert "Amount" not in doc

    def test_remove_missing_rejected(self, doc):
        with pytest.raises(DocumentError):
            doc.remove_item("Ghost")

    def test_form_property(self, doc):
        assert doc.form == "Memo"
        doc.remove_item("Form")
        assert doc.form is None

    def test_iteration(self, doc):
        assert {item.name for item in doc} == {"Form", "Subject", "Amount"}


class TestEnvelope:
    def test_seq_starts_at_one(self, doc):
        assert doc.seq == 1 and doc.oid.seq == 1

    def test_bad_seq_rejected(self):
        with pytest.raises(DocumentError):
            Document("B" * 32, seq=0)

    def test_bump_revision(self, doc):
        doc.bump_revision((2.0, 5), "alice/Acme")
        assert doc.seq == 2
        assert doc.seq_time == (2.0, 5)
        assert doc.modified == 2.0
        assert (2.0, 5) in doc.revisions
        assert doc.updated_by[-1] == "alice/Acme"

    def test_repeat_author_not_duplicated(self, doc):
        doc.bump_revision((2.0, 1), "alice")
        doc.bump_revision((3.0, 2), "alice")
        assert doc.updated_by.count("alice") == 1

    def test_revision_history_capped(self, doc):
        for index in range(200):
            doc.bump_revision((float(index + 2), index), "a")
        assert len(doc.revisions) <= 64

    def test_has_ancestor_stamp(self, doc):
        doc.bump_revision((2.0, 9), "a")
        assert doc.has_ancestor_stamp((2.0, 9))
        assert doc.has_ancestor_stamp((1.0, 1))
        assert not doc.has_ancestor_stamp((99.0, 1))

    def test_response_flag(self, doc):
        assert not doc.is_response
        response = Document("C" * 32, parent_unid=doc.unid)
        assert response.is_response

    def test_conflict_flag(self, doc):
        assert not doc.is_conflict
        doc.set("$Conflict", "1")
        assert doc.is_conflict


class TestSecurityAccessors:
    def test_readers_none_when_unrestricted(self, doc):
        assert doc.readers is None

    def test_readers_union(self, doc):
        doc.set("R1", ["a"], ItemType.READERS)
        doc.set("R2", ["b"], ItemType.READERS)
        assert sorted(doc.readers) == ["a", "b"]

    def test_empty_readers_item_still_restricts(self, doc):
        doc.set("R", [], ItemType.READERS)
        assert doc.readers == []

    def test_authors_union(self, doc):
        assert doc.authors == []
        doc.set("A", ["x"], ItemType.AUTHORS)
        assert doc.authors == ["x"]


class TestSerialization:
    def test_roundtrip(self, doc):
        doc.bump_revision((2.0, 3), "bob")
        doc.item_times = {"Subject": (2.0, 3)}
        clone = Document.from_dict(doc.to_dict())
        assert clone.unid == doc.unid
        assert clone.oid == doc.oid
        assert clone.get("Subject") == "hello"
        assert clone.revisions == doc.revisions
        assert clone.item_times == doc.item_times
        assert clone.updated_by == doc.updated_by

    def test_copy_is_isolated(self, doc):
        clone = doc.copy()
        clone.set("Subject", "changed")
        clone.bump_revision((9.0, 9), "x")
        assert doc.get("Subject") == "hello"
        assert doc.seq == 1

    def test_size_grows_with_content(self, doc):
        small = doc.size()
        doc.set("Body", "x" * 10_000)
        assert doc.size() > small + 9_000

    def test_json_safe(self, doc):
        import json

        json.dumps(doc.to_dict())
