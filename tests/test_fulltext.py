"""Tests for tokenizer, query language and the full-text index."""

import pytest

from repro.errors import FullTextError
from repro.fulltext import FullTextIndex, parse_query, tokenize
from repro.fulltext.query import And, Not, Or, Phrase, Term
from repro.fulltext.tokenizer import stem


class TestTokenizer:
    def test_lowercase_and_split(self):
        assert tokenize("Hello WORLD", do_stem=False) == ["hello", "world"]

    def test_stopwords_dropped(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_digits_kept(self):
        assert tokenize("budget 1999 q4") == ["budget", "1999", "q4"]

    def test_punctuation_splits(self):
        assert tokenize("mail.box, replica-id!", do_stem=False) == [
            "mail", "box", "replica", "id",
        ]

    def test_stemming_variants_agree(self):
        assert stem("replicates") == stem("replicated")
        assert stem("stubs") == stem("stub")
        assert stem("categories") == stem("category")

    def test_stem_never_below_three_chars(self):
        assert stem("as") == "as"
        assert stem("ion") == "ion"  # stripping would leave nothing
        assert len(stem("using")) >= 3

    def test_empty_text(self):
        assert tokenize("") == []


class TestQueryParsing:
    def test_single_term(self):
        assert parse_query("budget") == Term("budget")

    def test_implicit_and(self):
        node = parse_query("annual budget")
        assert isinstance(node, And) and len(node.parts) == 2

    def test_explicit_operators(self):
        node = parse_query("a OR b AND NOT c")
        assert isinstance(node, Or)
        right = node.parts[1]
        assert isinstance(right, And)
        assert isinstance(right.parts[1], Not)

    def test_parentheses(self):
        node = parse_query("(a OR b) AND c")
        assert isinstance(node, And)
        assert isinstance(node.parts[0], Or)

    def test_phrase(self):
        assert parse_query('"deletion stub"') == Phrase("deletion stub")

    def test_field_scope(self):
        assert parse_query("subject:budget") == Term("budget", field="subject")

    def test_field_scoped_phrase(self):
        assert parse_query('subject:"big plan"') == Phrase("big plan", field="subject")

    def test_empty_rejected(self):
        with pytest.raises(FullTextError):
            parse_query("   ")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(FullTextError):
            parse_query("(a OR b")


@pytest.fixture
def corpus(db):
    docs = {}
    docs["budget"] = db.create({
        "Subject": "Budget forecast", "Body": "The annual budget meeting."})
    docs["repl"] = db.create({
        "Subject": "Replication guide",
        "Body": "Deletion stubs propagate deletes. Budget unrelated."})
    docs["lunch"] = db.create({
        "Subject": "Lunch menu", "Body": "Pizza on Friday friday FRIDAY."})
    return db, docs


class TestIndex:
    def test_term_search(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        hits = {h.unid for h in index.search("budget")}
        assert hits == {docs["budget"].unid, docs["repl"].unid}

    def test_ranking_prefers_frequency(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert index.search("friday")[0].unid == docs["lunch"].unid

    def test_subject_weight_via_field_query(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert {h.unid for h in index.search("subject:budget")} == {
            docs["budget"].unid
        }

    def test_boolean_combinators(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert {h.unid for h in index.search("budget AND meeting")} == {
            docs["budget"].unid
        }
        assert {h.unid for h in index.search("budget NOT meeting")} == {
            docs["repl"].unid
        }
        assert len(index.search("pizza OR budget")) == 3

    def test_phrase_respects_adjacency(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert {h.unid for h in index.search('"deletion stubs"')} == {
            docs["repl"].unid
        }
        assert index.search('"stubs deletion"') == []

    def test_stemmed_matching(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert {h.unid for h in index.search("deleted")} == {docs["repl"].unid}

    def test_incremental_update(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        db.update(docs["lunch"].unid, {"Body": "Tacos and budget cuts"})
        assert len(index.search("budget")) == 3
        assert index.search("pizza") == []

    def test_incremental_delete(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        db.delete(docs["budget"].unid)
        assert {h.unid for h in index.search("budget")} == {docs["repl"].unid}

    def test_create_after_index(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        fresh = db.create({"Subject": "Zebra report"})
        assert {h.unid for h in index.search("zebra")} == {fresh.unid}

    def test_manual_mode_stale_until_refresh(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db, mode="manual")
        db.create({"Subject": "Quokka"})
        assert index.search("quokka") == []
        index.refresh()
        assert len(index.search("quokka")) == 1

    def test_limit(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert len(index.search("budget OR pizza", limit=1)) == 1

    def test_reader_fields_filter_results(self, corpus):
        from repro.core import ItemType
        from repro.security import AccessControlList, AclLevel

        db, docs = corpus
        acl = AccessControlList(default_level=AclLevel.EDITOR)
        db.acl = acl
        db.get(docs["budget"].unid).set("R", ["boss/Acme"], ItemType.READERS)
        index = FullTextIndex(db)
        hits = index.search("budget", as_user="peon/Acme")
        assert {h.unid for h in hits} == {docs["repl"].unid}

    def test_text_list_items_indexed(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        doc = db.create({"Keywords": ["confidential", "roadmap"]})
        assert {h.unid for h in index.search("roadmap")} == {doc.unid}

    def test_numbers_not_indexed_as_items(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        db.create({"Amount": 777})
        assert index.search("777") == []

    def test_stats(self, corpus):
        db, docs = corpus
        index = FullTextIndex(db)
        assert index.document_count == 3
        assert index.term_count > 5

    def test_subject_matches_outrank_body_matches(self, db):
        in_subject = db.create({"Subject": "quarterly forecast",
                                "Body": "numbers attached"})
        in_body = db.create({"Subject": "misc notes",
                             "Body": "see the forecast section"})
        index = FullTextIndex(db)
        hits = index.search("forecast")
        assert [h.unid for h in hits] == [in_subject.unid, in_body.unid]
        assert hits[0].score > hits[1].score

    def test_custom_field_weights(self, db):
        a = db.create({"Keywords": "alpha", "Body": "filler"})
        b = db.create({"Body": "alpha alpha alpha"})
        index = FullTextIndex(db, field_weights={"Keywords": 10.0})
        hits = index.search("alpha")
        assert hits[0].unid == a.unid
