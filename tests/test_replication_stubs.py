"""Tests for deletion-stub propagation and the purge-interval anomaly."""

import pytest

from repro.replication import Replicator, converged


@pytest.fixture
def rep():
    return Replicator()


@pytest.fixture
def synced_pair(pair, clock, rep):
    a, b = pair
    doc = a.create({"S": "shared"})
    clock.advance(1)
    rep.replicate(a, b)
    clock.advance(1)
    return a, b, doc


class TestStubPropagation:
    def test_delete_propagates(self, synced_pair, clock, rep):
        a, b, doc = synced_pair
        a.delete(doc.unid)
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.stubs_transferred == 1
        assert doc.unid not in b
        assert doc.unid in b.stubs

    def test_delete_beats_stale_copy_in_other_direction(self, synced_pair, clock, rep):
        a, b, doc = synced_pair
        a.delete(doc.unid)
        clock.advance(1)
        rep.replicate(a, b)
        assert doc.unid not in a and doc.unid not in b
        assert converged([a, b])

    def test_edit_after_delete_wins(self, synced_pair, clock, rep):
        """A document revised *past* the deletion survives it (more
        revisions than the stub's sequence number)."""
        a, b, doc = synced_pair
        a.delete(doc.unid)  # stub at seq 2
        clock.advance(1)
        b.update(doc.unid, {"S": "keep me"})  # seq 2
        b.update(doc.unid, {"S": "keep me!"})  # seq 3 > stub
        clock.advance(1)
        rep.replicate(a, b)
        assert a.try_get(doc.unid) is not None
        assert b.get(doc.unid).get("S") == "keep me!"
        assert converged([a, b])

    def test_delete_beats_concurrent_single_edit(self, synced_pair, clock, rep):
        a, b, doc = synced_pair
        b.update(doc.unid, {"S": "concurrent edit"})  # seq 2 (earlier time)
        clock.advance(1)
        a.delete(doc.unid)  # stub seq 2, later seq_time
        clock.advance(1)
        rep.replicate(a, b)
        assert doc.unid not in a and doc.unid not in b

    def test_stub_not_reanimated_by_old_copy(self, synced_pair, clock, rep):
        a, b, doc = synced_pair
        a.delete(doc.unid)
        clock.advance(1)
        rep.pull(a, b)  # b still has the old doc; a must keep the stub
        assert doc.unid not in a
        assert doc.unid in a.stubs


class TestPurgeAnomaly:
    def test_early_purge_resurrects_document(self, synced_pair, clock, rep):
        """Purging the stub before the partner replicates lets the old copy
        flow back — the ghost/resurrection anomaly of experiment E2."""
        a, b, doc = synced_pair
        a.delete(doc.unid)
        clock.advance(100)
        a.purge_stubs(older_than=clock.now)  # too early: b never saw it
        clock.advance(1)
        rep.replicate(a, b)
        assert doc.unid in a  # resurrected!

    def test_patient_purge_is_safe(self, synced_pair, clock, rep):
        a, b, doc = synced_pair
        a.delete(doc.unid)
        clock.advance(1)
        rep.replicate(a, b)  # delete reaches b first
        clock.advance(100)
        a.purge_stubs(older_than=clock.now)
        b.purge_stubs(older_than=clock.now)
        clock.advance(1)
        rep.replicate(a, b)
        assert doc.unid not in a and doc.unid not in b

    def test_recreate_after_purge_is_new_document(self, synced_pair, clock, rep):
        a, b, doc = synced_pair
        a.delete(doc.unid)
        clock.advance(1)
        rep.replicate(a, b)
        a.purge_stubs(older_than=clock.now + 1)
        fresh = a.create({"S": "new life"})
        assert fresh.unid != doc.unid
