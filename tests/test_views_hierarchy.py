"""Tests for hierarchical (response) views and the navigator."""

import pytest

from repro.core import NotesDatabase
from repro.views import SortOrder, View, ViewColumn, ViewNavigator


@pytest.fixture
def disc(db, clock):
    """A small discussion: two topics, nested responses."""
    topics = {}
    topics["t1"] = db.create({"Form": "MainTopic", "Subject": "mango"})
    clock.advance(1)
    topics["t2"] = db.create({"Form": "MainTopic", "Subject": "apple"})
    clock.advance(1)
    topics["r1"] = db.create({"Form": "Response", "Subject": "re one"},
                             parent=topics["t1"].unid)
    clock.advance(1)
    topics["r2"] = db.create({"Form": "Response", "Subject": "re two"},
                             parent=topics["r1"].unid)
    clock.advance(1)
    topics["r3"] = db.create({"Form": "Response", "Subject": "re three"},
                             parent=topics["t2"].unid)
    return db, topics


def hier_view(db, selection='SELECT Form = "MainTopic" | @AllDescendants'):
    return View(
        db,
        "Threads",
        selection=selection,
        columns=[ViewColumn(title="Subject", item="Subject",
                            sort=SortOrder.ASCENDING)],
        hierarchical=True,
    )


class TestHierarchy:
    def test_responses_follow_parents(self, disc):
        db, docs = disc
        view = hier_view(db)
        order = [(e.values[0], e.level) for e in view.entries()]
        assert order == [
            ("apple", 0),
            ("re three", 1),
            ("mango", 0),
            ("re one", 1),
            ("re two", 2),
        ]

    def test_alldescendants_excludes_unrelated_responses(self, disc):
        db, docs = disc
        orphan_root = db.create({"Form": "Noise", "Subject": "hidden"})
        db.create({"Form": "Response", "Subject": "re hidden"},
                  parent=orphan_root.unid)
        view = hier_view(db)
        subjects = [e.values[0] for e in view.entries()]
        assert "re hidden" not in subjects
        assert "hidden" not in subjects

    def test_allchildren_only_first_level(self, disc):
        db, docs = disc
        view = hier_view(db, 'SELECT Form = "MainTopic" | @AllChildren')
        subjects = [e.values[0] for e in view.entries()]
        assert "re one" in subjects
        assert "re two" not in subjects  # grandchild

    def test_parent_edit_rekeys_subtree(self, disc):
        db, docs = disc
        view = hier_view(db)
        db.update(docs["t1"].unid, {"Subject": "aaa first now"})
        order = [(e.values[0], e.level) for e in view.entries()]
        assert order[0] == ("aaa first now", 0)
        assert order[1] == ("re one", 1)
        assert order[2] == ("re two", 2)

    def test_parent_delete_promotes_orphan(self, disc):
        db, docs = disc
        view = hier_view(db)
        db.delete(docs["t1"].unid)
        subjects = {e.values[0] for e in view.entries()}
        # children of the deleted topic no longer qualify via ancestry
        assert "re one" not in subjects and "re two" not in subjects

    def test_response_arriving_before_parent_placement(self, db, clock):
        """Replication can deliver a response before its parent."""
        from repro.core import Document

        parent_unid = "P" * 32
        response = Document("R" * 32, created=5.0)
        response.set_all({"Form": "Response", "Subject": "early bird"})
        response.parent_unid = parent_unid
        view = hier_view(db)
        db.raw_put(response)
        assert len(view) == 0  # not selectable: no ancestor yet
        parent = Document(parent_unid, created=1.0)
        parent.set_all({"Form": "MainTopic", "Subject": "late parent"})
        db.raw_put(parent)
        order = [(e.values[0], e.level) for e in view.entries()]
        assert order == [("late parent", 0), ("early bird", 1)]

    def test_flat_view_ignores_hierarchy(self, disc):
        db, docs = disc
        view = View(
            db,
            "Flat",
            selection="SELECT @All",
            columns=[ViewColumn(title="Subject", item="Subject",
                                sort=SortOrder.ASCENDING)],
            hierarchical=False,
        )
        assert all(e.level == 0 for e in view.entries())


class TestNavigator:
    @pytest.fixture
    def nav(self, disc):
        db, _ = disc
        return ViewNavigator(hier_view(db))

    def test_first_last(self, nav):
        assert nav.first().values[0] == "apple"
        assert nav.last().values[0] == "re two"

    def test_next_previous(self, nav):
        nav.first()
        assert nav.next().values[0] == "re three"
        assert nav.previous().values[0] == "apple"
        assert nav.previous() is None

    def test_next_at_end(self, nav):
        nav.last()
        assert nav.next() is None

    def test_page(self, nav):
        nav.first()
        page = nav.page(3)
        assert [row.values[0] for row in page] == ["apple", "re three", "mango"]

    def test_goto_key(self, nav):
        row = nav.goto_key("mango")
        assert row.values[0] == "mango"
        assert nav.current.values[0] == "mango"

    def test_goto_unid(self, disc):
        db, docs = disc
        nav = ViewNavigator(hier_view(db))
        row = nav.goto_unid(docs["r2"].unid)
        assert row.values[0] == "re two"

    def test_goto_missing(self, nav):
        assert nav.goto_key("not-there") is None

    def test_empty_view_navigation(self, db):
        view = hier_view(db)
        nav = ViewNavigator(view)
        assert nav.first() is None and nav.last() is None
        assert nav.page(5) == []
