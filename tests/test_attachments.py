"""Tests for file attachments ($FILE items)."""

import pytest

from repro.core import (
    ItemType,
    attach,
    attachment_bytes,
    attachment_names,
    detach,
    remove_attachment,
)
from repro.errors import DocumentError, ItemError
from repro.replication import Replicator, SelectiveReplication

PAYLOAD = bytes(range(256)) * 40  # ~10 KB of binary


class TestAttachments:
    def test_attach_detach_roundtrip(self, db):
        doc = db.create({"Subject": "with file"})
        attach(doc, "report.pdf", PAYLOAD)
        assert detach(doc, "report.pdf") == PAYLOAD
        assert attachment_names(doc) == ["report.pdf"]

    def test_binary_safety(self, db):
        doc = db.create({"Subject": "x"})
        attach(doc, "null.bin", b"\x00\xff" * 100)
        assert detach(doc, "null.bin") == b"\x00\xff" * 100

    def test_reattach_replaces(self, db):
        doc = db.create({"Subject": "x"})
        attach(doc, "f.txt", b"v1")
        attach(doc, "f.txt", b"v2")
        assert detach(doc, "f.txt") == b"v2"
        assert attachment_names(doc) == ["f.txt"]

    def test_multiple_attachments(self, db):
        doc = db.create({"Subject": "x"})
        attach(doc, "b.txt", b"bee")
        attach(doc, "a.txt", b"ay")
        assert attachment_names(doc) == ["a.txt", "b.txt"]
        assert attachment_bytes(doc) == 5

    def test_remove(self, db):
        doc = db.create({"Subject": "x"})
        attach(doc, "gone.txt", b"x")
        remove_attachment(doc, "gone.txt")
        assert attachment_names(doc) == []
        with pytest.raises(DocumentError):
            detach(doc, "gone.txt")

    def test_missing_detach_rejected(self, db):
        doc = db.create({"Subject": "x"})
        with pytest.raises(DocumentError):
            detach(doc, "nope.txt")

    def test_empty_filename_rejected(self, db):
        doc = db.create({"Subject": "x"})
        with pytest.raises(DocumentError):
            attach(doc, "", b"x")

    def test_malformed_attachment_value_rejected(self):
        from repro.core import Item

        with pytest.raises(ItemError):
            Item("$FILE.x", ItemType.ATTACHMENT, {"name": "x"})  # no data
        with pytest.raises(ItemError):
            Item("$FILE.x", ItemType.ATTACHMENT, {"name": "", "data": ""})

    def test_size_accounts_for_payload(self, db):
        doc = db.create({"Subject": "x"})
        small = doc.size()
        attach(doc, "big.bin", PAYLOAD)
        assert doc.size() > small + len(PAYLOAD)  # base64 expansion included

    def test_serialization_roundtrip(self, db):
        from repro.core import Document

        doc = db.create({"Subject": "x"})
        attach(doc, "f.bin", PAYLOAD)
        clone = Document.from_dict(doc.to_dict())
        assert detach(clone, "f.bin") == PAYLOAD


class TestAttachmentReplication:
    def test_attachments_replicate(self, pair, clock):
        a, b = pair
        doc = a.create({"Subject": "carrier"})
        attach(a.get(doc.unid), "payload.bin", PAYLOAD)
        a._persist_doc(a.get(doc.unid))
        clock.advance(1)
        Replicator().replicate(a, b)
        assert detach(b.get(doc.unid), "payload.bin") == PAYLOAD

    def test_strip_attachments_option(self, pair, clock):
        a, b = pair
        doc = a.create({"Subject": "carrier", "Body": "text stays"})
        attach(a.get(doc.unid), "heavy.bin", PAYLOAD)
        clock.advance(1)
        selective = SelectiveReplication("SELECT @All", strip_attachments=True)
        stats = Replicator().pull(b, a, selective=selective)
        copy = b.get(doc.unid)
        assert attachment_names(copy) == []
        assert copy.get("$StrippedAttachments") == ["$FILE.heavy.bin"]
        assert copy.get("Body") == "text stays"
        assert stats.bytes_transferred < 2_000
        # source untouched
        assert attachment_names(a.get(doc.unid)) == ["heavy.bin"]

    def test_attach_file_is_a_revision(self, db, clock):
        doc = db.create({"Subject": "x"})
        clock.advance(1)
        db.attach_file(doc.unid, "f.bin", b"payload", author="alice")
        fresh = db.get(doc.unid)
        assert fresh.seq == 2
        assert "$FILE.f.bin" in fresh.item_times
        assert fresh.updated_by[-1] == "alice"

    def test_field_level_ships_attachment_only_when_changed(self, pair, clock):
        a, b = pair
        doc = a.create({"Subject": "x", "Note": "small"})
        clock.advance(1)
        a.attach_file(doc.unid, "big.bin", PAYLOAD)
        clock.advance(1)
        rep = Replicator(field_level=True)
        rep.replicate(a, b)
        assert detach(b.get(doc.unid), "big.bin") == PAYLOAD
        # now edit only a text item: the attachment must not re-ship
        clock.advance(1)
        a.update(doc.unid, {"Note": "edited"})
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.bytes_transferred < 2_000
        assert detach(b.get(doc.unid), "big.bin") == PAYLOAD

    def test_attachment_reship_when_it_changes(self, pair, clock):
        a, b = pair
        doc = a.create({"Subject": "x"})
        clock.advance(1)
        a.attach_file(doc.unid, "f.bin", PAYLOAD)
        clock.advance(1)
        rep = Replicator(field_level=True)
        rep.replicate(a, b)
        clock.advance(1)
        a.attach_file(doc.unid, "f.bin", PAYLOAD * 2)
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.bytes_transferred > len(PAYLOAD)
        assert detach(b.get(doc.unid), "f.bin") == PAYLOAD * 2
