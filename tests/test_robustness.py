"""Robustness fuzzing: parsers fail *closed* with library exceptions.

Whatever bytes arrive — user-typed formulas, URLs, search queries — the
parsers must either succeed or raise the documented error type; any other
exception is a crash bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FormulaEvalError,
    FormulaSyntaxError,
    FullTextError,
    ItemError,
)
from repro.formula import compile_formula
from repro.fulltext import parse_query
from repro.web.urls import WebError, parse_url

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60
)


@given(source=printable)
@settings(max_examples=300, deadline=None)
def test_formula_parser_fails_closed(source):
    try:
        compile_formula(source)
    except FormulaSyntaxError:
        pass


@given(source=printable)
@settings(max_examples=200, deadline=None)
def test_formula_evaluation_fails_closed(source):
    """Even formulas that parse must evaluate or raise a formula error."""
    try:
        formula = compile_formula(source)
    except FormulaSyntaxError:
        return
    try:
        formula.evaluate()
    except (FormulaEvalError, FormulaSyntaxError):
        pass


@given(source=printable)
@settings(max_examples=300, deadline=None)
def test_query_parser_fails_closed(source):
    try:
        parse_query(source)
    except FullTextError:
        pass


@given(url=printable)
@settings(max_examples=300, deadline=None)
def test_url_parser_fails_closed(url):
    try:
        parse_url(url)
    except WebError:
        pass


@given(url=printable)
@settings(max_examples=150, deadline=None)
def test_web_server_never_raises(url):
    """The request handler turns every malformed input into a status code."""
    import random

    from repro.core import NotesDatabase
    from repro.design import Application
    from repro.web import DominoWebServer

    db = NotesDatabase("fuzz.nsf", rng=random.Random(1))
    server = DominoWebServer()
    server.register("fuzz.nsf", Application(db))
    response = server.handle("/" + url)
    assert response.status in (200, 400, 401, 404)


@given(
    name=st.text(min_size=0, max_size=10),
    value=st.one_of(
        st.none(),
        st.booleans(),
        st.text(max_size=10),
        st.integers(),
        st.floats(allow_nan=False, allow_infinity=False),
        st.lists(st.one_of(st.text(max_size=5), st.integers()), max_size=4),
        st.dictionaries(st.text(max_size=3), st.integers(), max_size=2),
    ),
)
@settings(max_examples=300, deadline=None)
def test_item_construction_fails_closed(name, value):
    from repro.core import Item

    try:
        item = Item.of(name or "X", value)
    except ItemError:
        return
    # accepted values must round-trip through the wire format
    assert Item.from_dict(item.name, item.to_dict()) == item
