"""Tests for conflict detection, conflict documents, merge and LWW."""

import pytest

from repro.core import ChangeKind
from repro.replication import ConflictPolicy, Replicator, converged, merge_documents
from repro.replication.conflicts import conflict_unid, detect, divergence_point


@pytest.fixture
def diverged(pair, clock):
    """A doc edited independently on both replicas after a sync."""
    a, b = pair
    doc = a.create({"S": "base", "Color": "red"}, author="alice")
    clock.advance(1)
    Replicator().replicate(a, b)
    clock.advance(1)
    a.update(doc.unid, {"S": "a edit"}, author="alice")
    clock.advance(1)
    b.update(doc.unid, {"S": "b edit"}, author="bob")
    clock.advance(1)
    return a, b, doc


class TestDetection:
    def test_same(self, pair, clock):
        a, b = pair
        doc = a.create({"S": "x"})
        clock.advance(1)
        Replicator().replicate(a, b)
        assert detect(a.get(doc.unid), b.get(doc.unid)) == "same"

    def test_incoming_newer(self, pair, clock):
        a, b = pair
        doc = a.create({"S": "x"})
        clock.advance(1)
        Replicator().replicate(a, b)
        clock.advance(1)
        b.update(doc.unid, {"S": "newer"})
        assert detect(a.get(doc.unid), b.get(doc.unid)) == "incoming_newer"
        assert detect(b.get(doc.unid), a.get(doc.unid)) == "local_newer"

    def test_conflict_on_divergence(self, diverged):
        a, b, doc = diverged
        assert detect(a.get(doc.unid), b.get(doc.unid)) == "conflict"

    def test_conflict_with_unequal_seq(self, diverged, clock):
        a, b, doc = diverged
        a.update(doc.unid, {"S": "a again"})  # a at seq 3, b at seq 2
        assert detect(a.get(doc.unid), b.get(doc.unid)) == "conflict"

    def test_divergence_point_is_shared_revision(self, diverged):
        a, b, doc = diverged
        point = divergence_point(a.get(doc.unid), b.get(doc.unid))
        assert point in [tuple(s) for s in a.get(doc.unid).revisions]
        assert point in [tuple(s) for s in b.get(doc.unid).revisions]


class TestConflictDocuments:
    def test_loser_preserved_as_conflict_response(self, diverged):
        a, b, doc = diverged
        stats = Replicator().replicate(a, b)
        assert stats.conflicts >= 1
        for db in (a, b):
            main = db.get(doc.unid)
            assert main.get("S") == "b edit"  # later edit wins
            conflicts = [d for d in db.all_documents() if d.is_conflict]
            assert len(conflicts) == 1
            assert conflicts[0].get("S") == "a edit"
            assert conflicts[0].parent_unid == doc.unid

    def test_conflict_unid_deterministic(self, diverged):
        a, b, doc = diverged
        assert conflict_unid(a.get(doc.unid)) == conflict_unid(a.get(doc.unid))
        assert conflict_unid(a.get(doc.unid)) != conflict_unid(b.get(doc.unid))

    def test_replicas_converge_with_single_conflict_doc(self, diverged, clock):
        a, b, doc = diverged
        rep = Replicator()
        rep.replicate(a, b)
        clock.advance(1)
        stats = rep.replicate(a, b)
        assert stats.conflicts == 0
        assert converged([a, b])
        assert sum(1 for d in a.all_documents() if d.is_conflict) == 1

    def test_conflict_resolution_fires_view_events(self, diverged):
        a, b, doc = diverged
        kinds = []
        a.subscribe(lambda kind, payload, old: kinds.append(kind))
        Replicator().replicate(a, b)
        assert ChangeKind.REPLACE in kinds

    def test_three_way_divergence(self, pair, clock):
        a, b = pair
        c = a.new_replica("gamma")
        doc = a.create({"S": "base"})
        clock.advance(1)
        rep = Replicator()
        rep.replicate(a, b)
        rep.replicate(a, c)
        clock.advance(1)
        a.update(doc.unid, {"S": "a"})
        clock.advance(1)
        b.update(doc.unid, {"S": "b"})
        clock.advance(1)
        c.update(doc.unid, {"S": "c"})
        clock.advance(1)
        for _ in range(3):
            clock.advance(1)
            rep.replicate(a, b)
            rep.replicate(b, c)
            rep.replicate(a, c)
        assert converged([a, b, c])
        winners = {db.get(doc.unid).get("S") for db in (a, b, c)}
        assert winners == {"c"}
        conflict_count = sum(1 for d in a.all_documents() if d.is_conflict)
        assert 1 <= conflict_count <= 2  # losers preserved, not duplicated


class TestMergePolicy:
    def test_disjoint_edits_merge(self, pair, clock):
        a, b = pair
        doc = a.create({"S": "base", "Color": "red", "Size": 1}, author="x")
        clock.advance(1)
        rep = Replicator(conflict_policy=ConflictPolicy.MERGE)
        rep.replicate(a, b)
        clock.advance(1)
        a.update(doc.unid, {"Color": "blue"}, author="alice")
        clock.advance(1)
        b.update(doc.unid, {"Size": 2}, author="bob")
        clock.advance(1)
        stats = rep.replicate(a, b)
        assert stats.merges >= 1
        for db in (a, b):
            merged = db.get(doc.unid)
            assert merged.get("Color") == "blue"
            assert merged.get("Size") == 2
            assert merged.get("S") == "base"
        assert converged([a, b])

    def test_merge_includes_item_removal(self, pair, clock):
        a, b = pair
        doc = a.create({"S": "base", "Temp": "x"}, author="u")
        clock.advance(1)
        rep = Replicator(conflict_policy=ConflictPolicy.MERGE)
        rep.replicate(a, b)
        clock.advance(1)
        a.update(doc.unid, {}, remove_items=["Temp"], author="alice")
        clock.advance(1)
        b.update(doc.unid, {"S": "edited"}, author="bob")
        clock.advance(1)
        rep.replicate(a, b)
        for db in (a, b):
            merged = db.get(doc.unid)
            assert "Temp" not in merged
            assert merged.get("S") == "edited"

    def test_overlapping_edits_fall_back_to_conflict_doc(self, diverged):
        a, b, doc = diverged  # both edited "S"
        stats = Replicator(conflict_policy=ConflictPolicy.MERGE).replicate(a, b)
        assert stats.merges == 0
        assert stats.conflicts >= 1
        assert any(d.is_conflict for d in a.all_documents())

    def test_merge_documents_returns_none_without_shared_history(self):
        from repro.core import Document

        a = Document("A" * 32, seq=1, seq_time=(1.0, 1))
        b = Document("A" * 32, seq=1, seq_time=(2.0, 2))
        b.revisions = [(2.0, 2)]
        assert merge_documents(a, b) is None

    def test_merged_envelope_deterministic(self, pair, clock):
        a, b = pair
        doc = a.create({"X": 1, "Y": 1}, author="u")
        clock.advance(1)
        rep = Replicator(conflict_policy=ConflictPolicy.MERGE)
        rep.replicate(a, b)
        clock.advance(1)
        a.update(doc.unid, {"X": 2})
        clock.advance(1)
        b.update(doc.unid, {"Y": 2})
        clock.advance(1)
        rep.replicate(a, b)
        assert a.get(doc.unid).oid == b.get(doc.unid).oid


class TestLwwPolicy:
    def test_lww_discards_loser_silently(self, diverged):
        a, b, doc = diverged
        stats = Replicator(conflict_policy=ConflictPolicy.LWW).replicate(a, b)
        assert stats.lost_updates >= 1
        for db in (a, b):
            assert db.get(doc.unid).get("S") == "b edit"
            assert not any(d.is_conflict for d in db.all_documents())
