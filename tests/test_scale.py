"""Scale sanity: the structures stay usable at 10k documents.

Not a benchmark — loose wall-clock ceilings (generous even for slow CI)
that catch accidental O(n²) regressions in the hot paths.
"""

import random
import time

import pytest

from repro.bench.runners import build_deployment, populate
from repro.fulltext import FullTextIndex
from repro.replication import Replicator
from repro.views import SortOrder, View, ViewColumn

N_DOCS = 10_000


@pytest.fixture(scope="module")
def big():
    deployment = build_deployment(2, seed=10_000)
    populate(deployment.origin, N_DOCS, deployment.rng, body_bytes=120,
             advance=0.01)
    return deployment


@pytest.mark.slow
class TestScale:
    def test_view_build_and_lookup(self, big):
        db = big.origin
        start = time.perf_counter()
        view = View(
            db, "Big",
            selection='SELECT Form = "Memo"',
            columns=[
                ViewColumn(title="Categories", item="Categories",
                           categorized=True),
                ViewColumn(title="Subject", item="Subject",
                           sort=SortOrder.ASCENDING),
                ViewColumn(title="Amount", item="Amount", totals=True),
            ],
        )
        build_seconds = time.perf_counter() - start
        assert len(view) == N_DOCS
        assert build_seconds < 30.0

        start = time.perf_counter()
        for _ in range(200):
            assert view.documents_by_key("eng")
        lookups = time.perf_counter() - start
        assert lookups < 5.0

        start = time.perf_counter()
        unid = db.unids()[N_DOCS // 2]
        db.update(unid, {"Subject": "moved entry"})
        assert time.perf_counter() - start < 0.5
        assert unid in view

    def test_fulltext_build_and_query(self, big):
        db = big.origin
        start = time.perf_counter()
        index = FullTextIndex(db)
        assert time.perf_counter() - start < 30.0
        start = time.perf_counter()
        for query in ("budget", "budget AND review", '"budget forecast"'):
            index.search(query)
        assert time.perf_counter() - start < 5.0

    def test_incremental_replication_delta(self, big):
        source, target = big.databases
        big.clock.advance(1)
        rep = Replicator()
        rep.pull(target, source)  # bulk first sync
        big.clock.advance(1)
        for unid in source.unids()[:25]:
            source.update(unid, {"Subject": "delta"})
        big.clock.advance(1)
        start = time.perf_counter()
        stats = rep.pull(target, source)
        assert time.perf_counter() - start < 5.0
        assert stats.docs_transferred == 25

    def test_state_fingerprint_cost(self, big):
        db = big.origin
        start = time.perf_counter()
        first = db.state_fingerprint()
        assert time.perf_counter() - start < 2.0
        assert first == db.state_fingerprint()
