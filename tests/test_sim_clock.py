"""Tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(start=-1.0)

    def test_advance_moves_forward(self, clock):
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_advance_returns_new_time(self, clock):
        assert clock.advance(3.0) == 3.0

    def test_negative_advance_rejected(self, clock):
        with pytest.raises(SimulationError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self, clock):
        clock.advance_to(42.0)
        assert clock.now == 42.0

    def test_advance_to_backwards_rejected(self, clock):
        clock.advance(10)
        with pytest.raises(SimulationError):
            clock.advance_to(5)

    def test_advance_to_same_instant_is_noop(self, clock):
        clock.advance(4)
        clock.advance_to(4)
        assert clock.now == 4

    def test_ticks_strictly_monotonic(self, clock):
        ticks = [clock.tick() for _ in range(100)]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == 100

    def test_timestamps_unique_at_same_instant(self, clock):
        first = clock.timestamp()
        second = clock.timestamp()
        assert first[0] == second[0]
        assert first < second

    def test_timestamps_order_across_time(self, clock):
        early = clock.timestamp()
        clock.advance(1)
        late = clock.timestamp()
        assert early < late
