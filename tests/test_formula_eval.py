"""Tests for formula evaluation semantics (lists, broadcasting, selection)."""

import pytest

from repro.core import Document
from repro.errors import FormulaEvalError
from repro.formula import compile_formula


def ev(source, doc=None, **kw):
    return compile_formula(source).evaluate(doc, **kw)


@pytest.fixture
def doc():
    document = Document("A" * 32, seq=2, seq_time=(10.0, 3), created=1.0,
                        modified=10.0, updated_by=["alice/Acme", "bob/Acme"])
    document.set_all(
        {
            "Form": "Order",
            "Subject": "Big Deal",
            "Amount": 250,
            "Quantities": [1, 2, 3],
            "Categories": ["west", "north"],
        }
    )
    return document


class TestListSemantics:
    def test_everything_is_a_list(self):
        assert ev("42") == [42]
        assert ev('"text"') == ["text"]

    def test_list_concatenation(self):
        assert ev("1:2:3") == [1, 2, 3]
        assert ev('"a":"b"') == ["a", "b"]

    def test_broadcast_arithmetic(self):
        assert ev("1:2:3 + 10") == [11, 12, 13]
        assert ev("1:2 + 10:20") == [11, 22]

    def test_shorter_list_pads_with_last(self):
        assert ev("1:2:3 + 10:20") == [11, 22, 23]

    def test_string_concat_via_plus(self):
        assert ev('"a":"b" + "!"') == ["a!", "b!"]

    def test_mixed_type_arithmetic_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev('1 + "x"')

    def test_division_by_zero_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev("4 / 0")

    def test_unary_minus_maps(self):
        assert ev("-(1:2)") == [-1, -2]


class TestComparisons:
    def test_any_pair_equality(self, doc):
        assert ev('Categories = "north"', doc) == [1]
        assert ev('Categories = "south"', doc) == [0]

    def test_equality_against_list_literal(self, doc):
        assert ev('Form = "Order":"Invoice"', doc) == [1]

    def test_inequality(self):
        assert ev("1 != 2") == [1]
        assert ev("1 != 1") == [0]

    def test_ordering(self):
        assert ev("3 > 2") == [1]
        assert ev("2 >= 2") == [1]
        assert ev('"apple" < "banana"') == [1]

    def test_text_compare_case_insensitive(self):
        assert ev('"ABC" = "abc"') == [1]

    def test_ordering_mixed_types_rejected(self):
        with pytest.raises(FormulaEvalError):
            ev('1 < "x"')

    def test_logical_and_or_not(self):
        assert ev("1 & 1") == [1]
        assert ev("1 & 0") == [0]
        assert ev("0 | 1") == [1]
        assert ev("!1") == [0]

    def test_and_short_circuits(self):
        # the right side would divide by zero
        assert ev("0 & (1/0)") == [0]


class TestFieldsAndVariables:
    def test_field_reference(self, doc):
        assert ev("Amount", doc) == [250]
        assert ev("Quantities", doc) == [1, 2, 3]

    def test_missing_field_is_empty_string(self, doc):
        assert ev("Nonexistent", doc) == [""]

    def test_temp_variable(self, doc):
        assert ev("x := Amount * 2; x + 1", doc) == [501]

    def test_variable_shadows_field(self, doc):
        assert ev('Amount := "shadowed"; Amount', doc) == ["shadowed"]
        assert doc.get("Amount") == 250

    def test_field_assignment_goes_to_overlay(self, doc):
        formula = compile_formula('FIELD Status := "approved"; Status')
        from repro.formula import EvalContext

        ctx = EvalContext(doc=doc)
        result = formula.run(ctx)
        assert result == ["approved"]
        assert ctx.field_writes == {"Status": ["approved"]}
        assert "Status" not in doc

    def test_default_only_when_absent(self, doc):
        assert ev('DEFAULT Amount := 999; Amount', doc) == [250]
        assert ev('DEFAULT Missing := 7; Missing', doc) == [7]


class TestSelection:
    def test_select_true(self, doc):
        assert compile_formula('SELECT Form = "Order"').select(doc)

    def test_select_false(self, doc):
        assert not compile_formula('SELECT Form = "Memo"').select(doc)

    def test_select_all(self, doc):
        assert compile_formula("SELECT @All").select(doc)

    def test_compound_selection(self, doc):
        formula = 'SELECT Form = "Order" & Amount > 100 & @Contains(Subject; "deal")'
        assert compile_formula(formula).select(doc)

    def test_bare_expression_acts_as_selection(self, doc):
        assert compile_formula("Amount > 100").select(doc)

    def test_select_ex_reports_hierarchy_flags(self, doc):
        formula = compile_formula('SELECT Form = "Topic" | @AllDescendants')
        selected, children, descendants = formula.select_ex(doc)
        assert not selected
        assert descendants and not children

    def test_allchildren_flag(self, doc):
        formula = compile_formula('SELECT Form = "Topic" | @AllChildren')
        _, children, descendants = formula.select_ex(doc)
        assert children and not descendants
