"""Tests for calendar & scheduling: busy time, free-time search, booking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calendar import (
    BusyTimeIndex,
    Interval,
    book_meeting,
    find_free_slots,
    make_appointment,
)
from repro.calendar.busytime import CalendarError, merge_intervals


@pytest.fixture
def index(db):
    return BusyTimeIndex([db])


def busy(db, person, start, end, attendees=()):
    return db.create(
        make_appointment(person, f"mtg {start}", start, end,
                         attendees=list(attendees)),
        author=person,
    )


class TestIntervals:
    def test_empty_interval_rejected(self):
        with pytest.raises(CalendarError):
            Interval(5, 5)

    def test_overlap(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))  # half-open

    def test_merge_coalesces(self):
        merged = merge_intervals(
            [Interval(0, 5), Interval(4, 8), Interval(10, 12)]
        )
        assert merged == [Interval(0, 8), Interval(10, 12)]

    def test_merge_adjacent(self):
        assert merge_intervals([Interval(0, 5), Interval(5, 8)]) == [
            Interval(0, 8)
        ]


class TestBusyTime:
    def test_appointment_marks_chair_and_attendees(self, db, index):
        busy(db, "alice", 100, 200, attendees=["bob"])
        assert index.busy_intervals("alice") == [Interval(100, 200)]
        assert index.busy_intervals("bob") == [Interval(100, 200)]
        assert index.busy_intervals("carol") == []

    def test_non_appointments_ignored(self, db, index):
        db.create({"Form": "Memo", "StartTime": 0, "EndTime": 10,
                   "Chair": ["alice"]})
        assert index.busy_intervals("alice") == []

    def test_reschedule_moves_interval(self, db, index):
        doc = busy(db, "alice", 100, 200)
        db.update(doc.unid, {"StartTime": 300.0, "EndTime": 400.0})
        assert index.busy_intervals("alice") == [Interval(300, 400)]

    def test_cancel_frees_time(self, db, index):
        doc = busy(db, "alice", 100, 200)
        db.delete(doc.unid)
        assert index.busy_intervals("alice") == []
        assert index.is_free("alice", 100, 200)

    def test_replicated_appointments_counted(self, pair, clock):
        from repro.replication import Replicator

        a, b = pair
        index = BusyTimeIndex([b])
        busy(a, "alice", 50, 60)
        clock.advance(1)
        Replicator().replicate(a, b)
        assert index.busy_intervals("alice") == [Interval(50, 60)]

    def test_free_intervals_within_window(self, db, index):
        busy(db, "alice", 100, 200)
        busy(db, "alice", 300, 400)
        free = index.free_intervals("alice", 0, 500)
        assert free == [Interval(0, 100), Interval(200, 300),
                        Interval(400, 500)]

    def test_free_intervals_clip_to_window(self, db, index):
        busy(db, "alice", 0, 100)
        assert index.free_intervals("alice", 50, 150) == [Interval(100, 150)]

    def test_fully_busy_window(self, db, index):
        busy(db, "alice", 0, 100)
        assert index.free_intervals("alice", 10, 90) == []

    def test_bad_window_rejected(self, index):
        with pytest.raises(CalendarError):
            index.free_intervals("alice", 10, 10)


class TestFreeTimeSearch:
    def test_single_person(self, db, index):
        busy(db, "alice", 100, 200)
        slots = find_free_slots(index, ["alice"], 0, 300, duration=50)
        assert slots[0] == Interval(0, 50)
        assert all(index.is_free("alice", s.start, s.end) for s in slots)

    def test_intersection_of_two_people(self, db, index):
        busy(db, "alice", 0, 100)
        busy(db, "bob", 150, 300)
        slots = find_free_slots(index, ["alice", "bob"], 0, 400, duration=50)
        assert slots[0] == Interval(100, 150)

    def test_no_slot_available(self, db, index):
        busy(db, "alice", 0, 100)
        busy(db, "bob", 100, 200)
        assert find_free_slots(index, ["alice", "bob"], 0, 200, 50) == []

    def test_limit_respected(self, db, index):
        slots = find_free_slots(index, ["idle"], 0, 10_000, 100, limit=3)
        assert len(slots) == 3

    def test_duration_longer_than_gaps(self, db, index):
        busy(db, "alice", 100, 110)
        busy(db, "alice", 200, 210)
        slots = find_free_slots(index, ["alice"], 95, 215, duration=95)
        assert slots == []

    def test_bad_arguments_rejected(self, index):
        with pytest.raises(CalendarError):
            find_free_slots(index, [], 0, 100, 10)
        with pytest.raises(CalendarError):
            find_free_slots(index, ["a"], 0, 100, 0)


class TestBooking:
    def test_booking_takes_earliest_slot(self, db, index):
        busy(db, "alice", 0, 100)
        doc = book_meeting(db, index, "alice", "sync", ["bob"], 0, 500, 60)
        assert doc.get("StartTime") == 100.0
        assert doc.get("EndTime") == 160.0

    def test_consecutive_bookings_stack(self, db, index):
        first = book_meeting(db, index, "alice", "a", ["bob"], 0, 1000, 100)
        second = book_meeting(db, index, "alice", "b", ["bob"], 0, 1000, 100)
        assert first.get("EndTime") <= second.get("StartTime")
        assert not Interval(
            first.get("StartTime"), first.get("EndTime")
        ).overlaps(Interval(second.get("StartTime"), second.get("EndTime")))

    def test_booking_fails_when_no_slot(self, db, index):
        busy(db, "alice", 0, 200)
        with pytest.raises(CalendarError):
            book_meeting(db, index, "alice", "x", [], 0, 200, 60)

    def test_chair_not_double_counted(self, db, index):
        doc = book_meeting(db, index, "alice", "solo", ["alice"], 0, 100, 50)
        assert doc.get_list("Chair") == ["alice"]


time_points = st.integers(min_value=0, max_value=200)


@given(
    meetings=st.lists(
        st.tuples(time_points, st.integers(min_value=1, max_value=40)),
        max_size=12,
    ),
    duration=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_property_slots_never_overlap_busy_time(meetings, duration):
    """Every slot returned by free-time search is genuinely free."""
    import random

    from repro.core import NotesDatabase

    db = NotesDatabase("cal.nsf", rng=random.Random(4))
    index = BusyTimeIndex([db])
    for start, length in meetings:
        busy(db, "alice", start, start + length)
    slots = find_free_slots(index, ["alice"], 0, 400, duration, limit=10)
    for slot in slots:
        assert index.is_free("alice", slot.start, slot.end)
    # slots are disjoint and sorted
    for before, after in zip(slots, slots[1:]):
        assert before.end <= after.start
