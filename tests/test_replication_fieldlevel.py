"""Tests for field-level (partial item) replication."""

import pytest

from repro.replication import Replicator, converged


@pytest.fixture
def synced(pair, clock):
    a, b = pair
    doc = a.create({
        "Subject": "big doc",
        "Body": "x" * 10_000,
        "Status": "open",
        "Amount": 5,
    })
    clock.advance(1)
    Replicator().replicate(a, b)
    clock.advance(1)
    return a, b, doc


class TestFieldLevel:
    def test_small_edit_ships_small_delta(self, synced, clock):
        a, b, doc = synced
        a.update(doc.unid, {"Status": "closed"})
        clock.advance(1)
        stats = Replicator(field_level=True).pull(b, a)
        assert stats.docs_transferred == 1
        assert stats.bytes_transferred < 1_000  # not the 10 KB body
        assert b.get(doc.unid).get("Status") == "closed"
        assert b.get(doc.unid).get("Body") == "x" * 10_000

    def test_whole_doc_mode_ships_everything(self, synced, clock):
        a, b, doc = synced
        a.update(doc.unid, {"Status": "closed"})
        clock.advance(1)
        stats = Replicator(field_level=False).pull(b, a)
        assert stats.bytes_transferred > 10_000

    def test_rebuilt_document_identical(self, synced, clock):
        a, b, doc = synced
        a.update(doc.unid, {"Status": "closed", "NewItem": [1, 2]},
                 remove_items=["Amount"], author="editor")
        clock.advance(1)
        Replicator(field_level=True).pull(b, a)
        mine = a.get(doc.unid)
        theirs = b.get(doc.unid)
        assert theirs.oid == mine.oid
        assert theirs.revisions == mine.revisions
        assert theirs.updated_by == mine.updated_by
        assert sorted(theirs.item_names) == sorted(mine.item_names)
        for name in mine.item_names:
            assert theirs.get(name) == mine.get(name)
        assert converged([a, b])

    def test_item_removal_travels(self, synced, clock):
        a, b, doc = synced
        a.update(doc.unid, {}, remove_items=["Amount"])
        clock.advance(1)
        Replicator(field_level=True).pull(b, a)
        assert "Amount" not in b.get(doc.unid)

    def test_multi_revision_delta(self, synced, clock):
        """Several edits between passes still produce one correct delta."""
        a, b, doc = synced
        a.update(doc.unid, {"Status": "triaged"})
        clock.advance(1)
        a.update(doc.unid, {"Owner": "bob"})
        clock.advance(1)
        stats = Replicator(field_level=True).pull(b, a)
        copy = b.get(doc.unid)
        assert copy.get("Status") == "triaged"
        assert copy.get("Owner") == "bob"
        assert copy.seq == a.get(doc.unid).seq
        assert stats.bytes_transferred < 1_000

    def test_new_document_ships_in_full(self, pair, clock):
        a, b = pair
        a.create({"Subject": "fresh", "Body": "y" * 5_000})
        clock.advance(1)
        stats = Replicator(field_level=True).pull(b, a)
        assert stats.bytes_transferred > 5_000  # no local base to diff from

    def test_conflicts_unaffected(self, synced, clock):
        a, b, doc = synced
        a.update(doc.unid, {"Status": "a-edit"})
        clock.advance(1)
        b.update(doc.unid, {"Status": "b-edit"})
        clock.advance(1)
        rep = Replicator(field_level=True)
        stats = rep.replicate(a, b)
        assert stats.conflicts >= 1
        clock.advance(1)
        rep.replicate(a, b)
        assert converged([a, b])

    def test_repeated_passes_converge(self, synced, clock):
        a, b, doc = synced
        rep = Replicator(field_level=True)
        for round_number in range(4):
            clock.advance(1)
            a.update(doc.unid, {"Counter": round_number})
            clock.advance(1)
            rep.replicate(a, b)
        assert converged([a, b])
        assert b.get(doc.unid).get("Counter") == 3
