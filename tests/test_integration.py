"""End-to-end integration: the subsystems composed as a real application.

A discussion application with views, agents, full-text search and security,
deployed on a replicated three-server network — the paper's archetypal
groupware deployment — exercised through a full lifecycle.
"""

import random

import pytest

from repro.agents import Agent, AgentRunner, AgentTrigger
from repro.bench.runners import build_deployment
from repro.core import ItemType, NotesDatabase
from repro.fulltext import FullTextIndex
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    converged,
)
from repro.security import AccessControlList, AclLevel
from repro.sim import DiscussionWorkload
from repro.storage import StorageEngine
from repro.views import SortOrder, View, ViewColumn


class TestDiscussionApplication:
    def test_full_lifecycle(self):
        deployment = build_deployment(3, seed=2024, title="disc.nsf")
        hub, spoke1, spoke2 = deployment.databases
        clock = deployment.clock

        # Views + FT + agent live on the hub replica.
        threads = View(
            hub,
            "Threads",
            selection='SELECT Form = "MainTopic" | @AllDescendants',
            columns=[
                ViewColumn(title="Subject", item="Subject",
                           sort=SortOrder.ASCENDING)
            ],
            hierarchical=True,
        )
        by_category = View(
            hub,
            "ByCategory",
            selection='SELECT Form = "MainTopic"',
            columns=[
                ViewColumn(title="Categories", item="Categories",
                           categorized=True),
                ViewColumn(title="Subject", item="Subject",
                           sort=SortOrder.ASCENDING),
            ],
        )
        index = FullTextIndex(hub)
        runner = AgentRunner(hub)
        runner.add(Agent(
            name="greeter", trigger=AgentTrigger.ON_CREATE,
            selection='SELECT Form = "MainTopic"',
            formula='FIELD Status := "open"',
        ))

        # Users post on the spokes; replication brings it all together.
        workload1 = DiscussionWorkload(spoke1, random.Random(1), author="bob/Acme")
        workload2 = DiscussionWorkload(spoke2, random.Random(2), author="eve/Acme")
        for _ in range(20):
            clock.advance(60)
            workload1.step()
            workload2.step()
        hub_topic = hub.create(
            {"Form": "MainTopic", "Subject": "welcome thread",
             "Categories": "general", "Body": "please be excellent"},
            author="alice/Acme",
        )

        topology = ReplicationTopology.hub_spoke("srv0", ["srv1", "srv2"])
        scheduler = ReplicationScheduler(deployment.network, topology)
        rounds = scheduler.rounds_to_convergence(deployment.databases)
        assert rounds <= 3
        assert converged(deployment.databases)

        # Views tracked replicated content incrementally.
        assert len(threads) == len(hub)
        assert hub_topic.unid in threads
        # Agent stamped only topics created locally on the hub
        assert hub.get(hub_topic.unid).get("Status") == "open"
        # FT search finds replicated posts.
        assert index.search("excellent")
        # Categorized view counts match the database.
        total_topics = sum(
            1 for doc in hub.all_documents() if doc.form == "MainTopic"
        )
        assert len(by_category) == total_topics

    def test_edit_war_resolves_everywhere(self):
        deployment = build_deployment(3, seed=5)
        a, b, c = deployment.databases
        clock = deployment.clock
        doc = a.create({"Form": "Page", "Body": "v0"}, author="alice")
        topology = ReplicationTopology.mesh(["srv0", "srv1", "srv2"])
        scheduler = ReplicationScheduler(deployment.network, topology)
        scheduler.rounds_to_convergence(deployment.databases)
        for round_number in range(3):
            clock.advance(10)
            a.update(doc.unid, {"Body": f"a{round_number}"}, author="alice")
            b.update(doc.unid, {"Body": f"b{round_number}"}, author="bob")
            c.update(doc.unid, {"Body": f"c{round_number}"}, author="carl")
            clock.advance(10)
            scheduler.rounds_to_convergence(deployment.databases, max_rounds=20)
        assert converged(deployment.databases)
        bodies = {db.get(doc.unid).get("Body") for db in deployment.databases}
        assert len(bodies) == 1
        conflicts = [d for d in a.all_documents() if d.is_conflict]
        assert conflicts  # losers preserved

    def test_secure_replicated_database(self, tmp_path):
        """ACL + readers fields + persistence + replication together."""
        acl = AccessControlList(default_level=AclLevel.AUTHOR)
        acl.add("hr-admin/Acme", AclLevel.MANAGER)
        clock_seed = random.Random(11)
        engine = StorageEngine(str(tmp_path / "hr"))
        hr = NotesDatabase("hr.nsf", rng=clock_seed, engine=engine, acl=acl)
        review = hr.create(
            {"Form": "Review", "Subject": "annual review", "Rating": 4},
            author="hr-admin/Acme",
        )
        hr.get(review.unid).set("SecretReaders", ["hr-admin/Acme"],
                                ItemType.READERS)
        hr._persist_doc(hr.get(review.unid))
        laptop = hr.new_replica("laptop")
        hr.clock.advance(1)
        Replicator().replicate(hr, laptop)
        # readers restriction survived replication
        copy = laptop.get(review.unid)
        assert copy.readers == ["hr-admin/Acme"]
        from repro.errors import AccessDenied

        with pytest.raises(AccessDenied):
            laptop.get(review.unid, as_user="rando/Acme")
        # and persistence survives a crash
        engine.simulate_crash()
        engine2 = StorageEngine(str(tmp_path / "hr"))
        reloaded = NotesDatabase("hr.nsf", rng=random.Random(12),
                                 engine=engine2, acl=acl)
        assert reloaded.get(review.unid).get("Rating") == 4

    def test_view_consistency_across_replicas(self):
        """The same view definition over converged replicas shows the same
        rows — the property that makes replicated applications coherent."""
        deployment = build_deployment(2, seed=31)
        a, b = deployment.databases
        workload = DiscussionWorkload(a, random.Random(3))
        for _ in range(25):
            deployment.clock.advance(30)
            workload.step()
        deployment.clock.advance(1)
        Replicator().replicate(a, b)
        assert converged([a, b])

        def snapshot(db):
            view = View(
                db, "S",
                selection="SELECT @All",
                columns=[ViewColumn(title="Subject", item="Subject",
                                    sort=SortOrder.ASCENDING)],
            )
            return [entry.values for entry in view.entries()]

        assert snapshot(a) == snapshot(b)

    def test_mail_plus_agent_workflow(self):
        """Expense approval: memo arrives, agent routes it, approver edits."""
        from repro.mail import Directory, MailRouter, make_memo
        from repro.replication import SimulatedNetwork
        from repro.sim import VirtualClock

        clock = VirtualClock()
        network = SimulatedNetwork(clock)
        network.add_server("hq")
        directory = Directory(clock=clock)
        directory.register_person("approver/Acme", "hq")
        directory.register_person("employee/Acme", "hq")
        router = MailRouter(network, directory)
        inbox = router.mail_file("approver/Acme")
        runner = AgentRunner(inbox)
        runner.add(Agent(
            name="triage", trigger=AgentTrigger.ON_CREATE,
            selection='SELECT @Contains(Subject; "expense")',
            formula='FIELD Status := @If(Amount > 500; "needs-vp"; "auto-ok")',
        ))
        router.submit(
            make_memo("employee/Acme", "approver/Acme", "expense: travel",
                      extra_items={"Amount": 1200}),
            "hq",
        )
        router.submit(
            make_memo("employee/Acme", "approver/Acme", "expense: books",
                      extra_items={"Amount": 60}),
            "hq",
        )
        router.deliver_all()
        statuses = sorted(
            doc.get("Status") for doc in inbox.all_documents()
        )
        assert statuses == ["auto-ok", "needs-vp"]
