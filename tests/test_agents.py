"""Tests for agents and the agent runner."""

import pytest

from repro.agents import Agent, AgentRunner, AgentTrigger
from repro.errors import AgentError
from repro.sim import EventScheduler


@pytest.fixture
def runner(db):
    return AgentRunner(db)


class TestAgentDefinition:
    def test_needs_exactly_one_action(self):
        with pytest.raises(AgentError):
            Agent(name="none")
        with pytest.raises(AgentError):
            Agent(name="both", formula="1", action=lambda d, db: None)

    def test_bad_interval_rejected(self):
        with pytest.raises(AgentError):
            Agent(name="x", trigger=AgentTrigger.SCHEDULED, formula="1",
                  interval=0)

    def test_bad_scan_rejected(self):
        with pytest.raises(AgentError):
            Agent(name="x", formula="1", scan="sometimes")

    def test_duplicate_names_rejected(self, runner):
        runner.add(Agent(name="a", formula="1"))
        with pytest.raises(AgentError):
            runner.add(Agent(name="a", formula="2"))

    def test_scheduled_needs_event_loop(self, runner):
        with pytest.raises(AgentError):
            runner.add(Agent(name="s", trigger=AgentTrigger.SCHEDULED,
                             formula="1"))

    def test_agent_lookup(self, runner):
        agent = runner.add(Agent(name="find-me", formula="1"))
        assert runner.agent("find-me") is agent
        with pytest.raises(AgentError):
            runner.agent("ghost")


class TestEventTriggers:
    def test_on_create_fires(self, db, runner):
        runner.add(Agent(name="stamp", trigger=AgentTrigger.ON_CREATE,
                         formula='FIELD Status := "received"'))
        doc = db.create({"S": "x"})
        assert db.get(doc.unid).get("Status") == "received"

    def test_on_create_respects_selection(self, db, runner):
        runner.add(Agent(name="stamp", trigger=AgentTrigger.ON_CREATE,
                         selection='SELECT Form = "Order"',
                         formula='FIELD Status := "stamped"'))
        order = db.create({"Form": "Order"})
        memo = db.create({"Form": "Memo"})
        assert db.get(order.unid).get("Status") == "stamped"
        assert db.get(memo.unid).get("Status") is None

    def test_on_update_fires_for_updates(self, db, runner, clock):
        runner.add(Agent(name="track", trigger=AgentTrigger.ON_UPDATE,
                         formula='FIELD Touched := @Now'))
        doc = db.create({"S": "x"})
        clock.advance(5)
        db.update(doc.unid, {"S": "y"})
        assert db.get(doc.unid).get("Touched") == clock.now

    def test_agent_writes_do_not_cascade(self, db, runner):
        counter = {"runs": 0}

        def action(doc, database):
            counter["runs"] += 1
            return {"Counter": counter["runs"]}

        runner.add(Agent(name="loopy", trigger=AgentTrigger.ON_UPDATE,
                         action=action))
        doc = db.create({"S": "x"})
        assert counter["runs"] == 1  # not re-triggered by its own write

    def test_python_action_returning_none_writes_nothing(self, db, runner):
        runner.add(Agent(name="watcher", trigger=AgentTrigger.ON_CREATE,
                         action=lambda d, database: None))
        doc = db.create({"S": "x"})
        assert db.get(doc.unid).seq == 1  # untouched

    def test_agent_author_recorded(self, db, runner):
        runner.add(Agent(name="router-bot", trigger=AgentTrigger.ON_CREATE,
                         formula='FIELD Routed := 1'))
        doc = db.create({"S": "x"}, author="alice")
        assert db.get(doc.unid).updated_by == ["alice", "router-bot/agent"]


class TestScheduledAndManual:
    def test_scheduled_agent_fires_on_interval(self, db, clock, runner):
        events = EventScheduler(clock)
        agent = runner.add(
            Agent(name="sched", trigger=AgentTrigger.SCHEDULED,
                  formula='FIELD Seen := 1', interval=10, scan="all"),
            events,
        )
        db.create({"S": "x"})
        events.run_until(35)
        assert agent.runs == 3

    def test_manual_agent_processes_changed_only(self, db, clock, runner):
        processed = []
        agent = runner.add(
            Agent(name="m", action=lambda d, database: processed.append(d.unid))
        )
        clock.advance(1)
        first = db.create({"S": "1"})
        clock.advance(1)
        runner.run_agent(agent)
        clock.advance(1)
        second = db.create({"S": "2"})
        clock.advance(1)
        runner.run_agent(agent)
        assert processed == [first.unid, second.unid]

    def test_full_scan_revisits_everything(self, db, clock, runner):
        processed = []
        agent = runner.add(
            Agent(name="m", action=lambda d, database: processed.append(d.unid))
        )
        doc = db.create({"S": "x"})
        clock.advance(1)
        runner.run_agent(agent)
        clock.advance(1)
        runner.run_agent(agent, full_scan=True)
        assert processed == [doc.unid, doc.unid]

    def test_run_all_manual_skips_triggered(self, db, runner):
        hits = []
        runner.add(Agent(name="manual", action=lambda d, database: hits.append("m")))
        runner.add(Agent(name="event", trigger=AgentTrigger.ON_CREATE,
                         action=lambda d, database: hits.append("e")))
        db.create({"S": "x"})
        db.clock.advance(1)
        runner.run_all_manual()
        assert hits == ["e", "m"]

    def test_formula_agent_multistatement(self, db, runner, clock):
        runner.add(Agent(
            name="classify", trigger=AgentTrigger.ON_CREATE,
            formula=(
                'FIELD Bucket := @If(Amount > 100; "big"; "small"); '
                'FIELD Reviewed := 0'
            ),
        ))
        big = db.create({"Amount": 500})
        small = db.create({"Amount": 5})
        assert db.get(big.unid).get("Bucket") == "big"
        assert db.get(small.unid).get("Bucket") == "small"
        assert db.get(small.unid).get("Reviewed") == 0

    def test_docs_processed_counter(self, db, clock, runner):
        agent = runner.add(Agent(name="c", formula='FIELD T := 1'))
        for index in range(4):
            db.create({"S": str(index)})
        clock.advance(1)
        touched = runner.run_agent(agent)
        assert touched == 4
        assert agent.docs_processed == 4
