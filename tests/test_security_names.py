"""Tests for hierarchical names, wildcard matching and group expansion."""

from repro.security import NotesName, expand_groups, name_matches
from repro.security.names import user_in_names


class TestNotesName:
    def test_parse_abbreviated(self):
        name = NotesName.parse("Alice Smith/Sales/Acme")
        assert name.components == ("Alice Smith", "Sales", "Acme")
        assert name.common == "Alice Smith"

    def test_parse_canonical(self):
        name = NotesName.parse("CN=Alice Smith/OU=Sales/O=Acme")
        assert name.components == ("Alice Smith", "Sales", "Acme")

    def test_canonical_rendering(self):
        name = NotesName.parse("Alice/Sales/Acme")
        assert name.canonical == "CN=Alice/OU=Sales/O=Acme"

    def test_single_component(self):
        name = NotesName.parse("LocalAdmin")
        assert name.canonical == "CN=LocalAdmin"

    def test_exact_match_case_insensitive(self):
        assert name_matches("alice/sales/acme", "Alice/Sales/Acme")

    def test_canonical_matches_abbreviated(self):
        assert name_matches("CN=Bob/O=Acme", "bob/acme")

    def test_wildcard_org(self):
        assert name_matches("Alice/Sales/Acme", "*/Acme")
        assert name_matches("Alice/Sales/Acme", "*/Sales/Acme")
        assert not name_matches("Alice/Eng/Acme", "*/Sales/Acme")
        assert not name_matches("Alice/Other", "*/Acme")

    def test_star_alone_matches_everyone(self):
        assert name_matches("Anyone/Anywhere", "*")

    def test_length_mismatch_no_match(self):
        assert not name_matches("Alice/Acme", "Alice/Sales/Acme")


class TestGroups:
    GROUPS = {
        "Sales Team": ["alice/Acme", "bob/Acme"],
        "Leads": ["carol/Acme", "Sales Team"],
        "Loop": ["Loop", "dave/Acme"],
    }

    def test_flat_expansion(self):
        assert expand_groups(["Sales Team"], self.GROUPS) == {
            "alice/Acme",
            "bob/Acme",
        }

    def test_nested_expansion(self):
        assert expand_groups(["Leads"], self.GROUPS) == {
            "carol/Acme",
            "alice/Acme",
            "bob/Acme",
        }

    def test_cycle_tolerated(self):
        assert expand_groups(["Loop"], self.GROUPS) == {"dave/Acme"}

    def test_non_group_passthrough(self):
        assert expand_groups(["eve/Acme"], self.GROUPS) == {"eve/Acme"}

    def test_group_name_case_insensitive(self):
        assert "alice/Acme" in expand_groups(["sales team"], self.GROUPS)


class TestUserInNames:
    def test_direct(self):
        assert user_in_names("alice/Acme", ["alice/Acme"])

    def test_via_group(self):
        assert user_in_names("bob/Acme", ["Sales Team"],
                             groups=TestGroups.GROUPS)

    def test_via_wildcard(self):
        assert user_in_names("bob/Acme", ["*/Acme"])

    def test_via_role(self):
        assert user_in_names("anyone", ["[Moderators]"], roles=["Moderators"])
        assert not user_in_names("anyone", ["[Moderators]"], roles=["Other"])

    def test_empty_names_deny(self):
        assert not user_in_names("alice/Acme", [])
