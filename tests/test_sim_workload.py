"""Tests for workload generators."""

import random

import pytest

from repro.sim import DiscussionWorkload, UpdateWorkload, zipf_choice


class TestZipf:
    def test_uniform_when_theta_zero(self):
        rng = random.Random(1)
        counts = {}
        population = list(range(10))
        for _ in range(5000):
            pick = zipf_choice(rng, population, theta=0.0)
            counts[pick] = counts.get(pick, 0) + 1
        assert max(counts.values()) / min(counts.values()) < 1.6

    def test_skew_concentrates_on_head(self):
        rng = random.Random(2)
        population = list(range(100))
        hits_head = sum(
            1 for _ in range(2000) if zipf_choice(rng, population, 1.2) < 10
        )
        assert hits_head > 1200  # >60% of picks land in the top 10%

    def test_empty_population_rejected(self):
        with pytest.raises(IndexError):
            zipf_choice(random.Random(1), [], 0.5)

    def test_deterministic_for_seed(self):
        population = list(range(50))
        picks_a = [zipf_choice(random.Random(9), population, 0.9) for _ in range(5)]
        picks_b = [zipf_choice(random.Random(9), population, 0.9) for _ in range(5)]
        # each call consumes one rng draw; rebuild the rng to compare runs
        rng1, rng2 = random.Random(9), random.Random(9)
        assert [zipf_choice(rng1, population, 0.9) for _ in range(20)] == [
            zipf_choice(rng2, population, 0.9) for _ in range(20)
        ]


class TestUpdateWorkload:
    def test_ops_recorded(self, db, clock):
        workload = UpdateWorkload(db, random.Random(3))
        stats = workload.run(200)
        assert stats.total == 200
        assert stats.creates > 0 and stats.updates > 0

    def test_first_step_creates_when_empty(self, db):
        workload = UpdateWorkload(db, random.Random(4), mix=(0.0, 1.0, 0.0))
        assert workload.step() == "create"  # nothing to update yet

    def test_updates_bump_sequence_numbers(self, db, clock):
        workload = UpdateWorkload(db, random.Random(5), mix=(0.3, 0.7, 0.0))
        workload.run(100)
        assert any(doc.seq > 1 for doc in db.all_documents())

    def test_deterministic_given_seed(self, clock):
        import random as random_module

        from repro.core import NotesDatabase

        def run(seed):
            database = NotesDatabase("w.nsf", clock=clock,
                                     rng=random_module.Random(seed))
            UpdateWorkload(database, random_module.Random(77)).run(50)
            return sorted(
                (doc.get("Subject"), doc.seq) for doc in database.all_documents()
            )

        assert run(1) == run(1)


class TestDiscussionWorkload:
    def test_builds_hierarchy(self, db, clock):
        workload = DiscussionWorkload(db, random.Random(6))
        workload.run(100)
        responses = [doc for doc in db.all_documents() if doc.is_response]
        topics = [doc for doc in db.all_documents() if not doc.is_response]
        assert topics and responses

    def test_response_bias_zero_makes_only_topics(self, db):
        workload = DiscussionWorkload(db, random.Random(7), response_bias=0.0)
        workload.run(30)
        assert all(not doc.is_response for doc in db.all_documents())

    def test_parents_always_exist(self, db):
        workload = DiscussionWorkload(db, random.Random(8))
        workload.run(150)
        unids = set(db.unids())
        for doc in db.all_documents():
            if doc.is_response:
                assert doc.parent_unid in unids
