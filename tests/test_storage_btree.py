"""Unit tests for the B+tree."""

import random

import pytest

from repro.errors import BTreeError
from repro.storage import BPlusTree


class TestBasics:
    def test_insert_get(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "five")
        assert tree.get(5) == "five"

    def test_missing_key_default(self):
        tree = BPlusTree()
        assert tree.get(1) is None
        assert tree.get(1, "dflt") == "dflt"

    def test_replace_existing(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_order_minimum(self):
        with pytest.raises(BTreeError):
            BPlusTree(order=3)

    def test_contains(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert "k" in tree and "x" not in tree

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3, 7, 2, 8]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [1, 2, 3, 5, 7, 8, 9]

    def test_splits_maintain_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert list(tree) == list(range(100))
        assert tree.node_splits > 0
        tree.validate()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for key in range(1000):
            tree.insert(key, key)
        assert tree.height() <= 5

    def test_tuple_keys(self):
        tree = BPlusTree()
        tree.insert((1, "b"), "x")
        tree.insert((1, "a"), "y")
        tree.insert((0, "z"), "w")
        assert [k for k, _ in tree.items()] == [(0, "z"), (1, "a"), (1, "b")]

    def test_min_key(self):
        tree = BPlusTree()
        assert tree.min_key() is None
        tree.insert(9, "x")
        tree.insert(4, "y")
        assert tree.min_key() == 4


class TestBulkLoad:
    def test_matches_incremental_build(self):
        pairs = [(k, k * 3) for k in range(137)]
        bulk = BPlusTree(order=6)
        bulk.bulk_load(pairs)
        incremental = BPlusTree(order=6)
        for key, value in pairs:
            incremental.insert(key, value)
        assert list(bulk.items()) == list(incremental.items())
        bulk.validate()

    def test_empty_load(self):
        tree = BPlusTree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_single_pair(self):
        tree = BPlusTree(order=4)
        tree.bulk_load([(1, "one")])
        assert tree.get(1) == "one"
        tree.validate()

    def test_requires_empty_tree(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        with pytest.raises(BTreeError):
            tree.bulk_load([(2, 2)])

    def test_rejects_unsorted(self):
        tree = BPlusTree()
        with pytest.raises(BTreeError):
            tree.bulk_load([(2, 0), (1, 0)])

    def test_rejects_duplicates(self):
        tree = BPlusTree()
        with pytest.raises(BTreeError):
            tree.bulk_load([(1, 0), (1, 1)])

    def test_mutations_after_bulk_load(self):
        tree = BPlusTree(order=4)
        tree.bulk_load([(k, k) for k in range(0, 100, 2)])
        for key in range(1, 100, 2):
            tree.insert(key, key)
        for key in range(0, 100, 4):
            tree.delete(key)
        tree.validate()
        expected = sorted(
            (set(range(0, 100, 2)) | set(range(1, 100, 2)))
            - set(range(0, 100, 4))
        )
        assert list(tree) == expected

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 20, 21, 22, 100, 1000])
    def test_every_size_is_structurally_valid(self, n):
        for order in (4, 5, 8, 32):
            tree = BPlusTree(order=order)
            tree.bulk_load([(k, k) for k in range(n)])
            tree.validate()
            assert len(tree) == n
            assert list(tree) == list(range(n))


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # evens 0..98
            tree.insert(key, key)
        return tree

    def test_inclusive_range(self, tree):
        assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        keys = [k for k, _ in tree.range(10, 20, include_lo=False, include_hi=False)]
        assert keys == [12, 14, 16, 18]

    def test_open_ended_low(self, tree):
        assert [k for k, _ in tree.range(hi=6)] == [0, 2, 4, 6]

    def test_open_ended_high(self, tree):
        assert [k for k, _ in tree.range(lo=94)] == [94, 96, 98]

    def test_bounds_not_present_in_tree(self, tree):
        assert [k for k, _ in tree.range(9, 15)] == [10, 12, 14]

    def test_empty_range(self, tree):
        assert list(tree.range(13, 13)) == []

    def test_full_scan_matches_items(self, tree):
        assert list(tree.range()) == list(tree.items())


class TestDelete:
    def test_delete_returns_value(self):
        tree = BPlusTree()
        tree.insert(1, "one")
        assert tree.delete(1) == "one"
        assert 1 not in tree

    def test_delete_missing_raises(self):
        tree = BPlusTree()
        with pytest.raises(KeyError):
            tree.delete(42)

    def test_delete_all_then_reuse(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        for key in range(50):
            tree.delete(key)
        assert len(tree) == 0
        tree.validate()
        tree.insert(7, "back")
        assert tree.get(7) == "back"

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(order=4)
        rng = random.Random(7)
        shadow = {}
        for step in range(2000):
            key = rng.randrange(200)
            if key in shadow and rng.random() < 0.5:
                del shadow[key]
                tree.delete(key)
            else:
                shadow[key] = step
                tree.insert(key, step)
        assert dict(tree.items()) == shadow
        tree.validate()

    def test_merges_happen_under_heavy_delete(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        for key in range(0, 200, 2):
            tree.delete(key)
        for key in range(1, 199, 2):
            tree.delete(key)
        assert tree.node_merges > 0
        tree.validate()

    def test_root_collapse(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        assert tree.height() > 1
        for key in range(19):
            tree.delete(key)
        assert tree.height() == 1
        assert tree.get(19) == 19
