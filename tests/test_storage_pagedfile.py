"""Tests for the paged container file."""

import os

import pytest

from repro.errors import StorageError
from repro.storage import PAGE_SIZE, PagedFile


@pytest.fixture
def pf(tmp_path):
    with PagedFile(str(tmp_path / "data.pages")) as file:
        yield file


class TestPagedFile:
    def test_starts_empty(self, pf):
        assert pf.page_count == 0

    def test_allocate_returns_sequential_ids(self, pf):
        assert [pf.allocate() for _ in range(3)] == [1, 2, 3]

    def test_new_page_is_zeroed(self, pf):
        page_id = pf.allocate()
        assert pf.read(page_id) == bytearray(PAGE_SIZE)

    def test_write_read_roundtrip(self, pf):
        page_id = pf.allocate()
        data = bytes(range(256)) * (PAGE_SIZE // 256)
        pf.write(page_id, data)
        assert bytes(pf.read(page_id)) == data

    def test_out_of_range_read_rejected(self, pf):
        with pytest.raises(StorageError):
            pf.read(1)
        pf.allocate()
        with pytest.raises(StorageError):
            pf.read(2)

    def test_page_zero_is_reserved(self, pf):
        with pytest.raises(StorageError):
            pf.read(0)

    def test_short_write_rejected(self, pf):
        page_id = pf.allocate()
        with pytest.raises(StorageError):
            pf.write(page_id, b"short")

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.pages")
        file = PagedFile(path)
        page_id = file.allocate()
        file.write(page_id, b"\xAB" * PAGE_SIZE)
        file.close()
        reopened = PagedFile(path)
        assert reopened.page_count == 1
        assert bytes(reopened.read(page_id)) == b"\xAB" * PAGE_SIZE
        reopened.close()

    def test_non_page_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.pages"
        path.write_bytes(b"not a page file" * 400)
        with pytest.raises(StorageError):
            PagedFile(str(path))

    def test_closed_file_rejects_io(self, tmp_path):
        file = PagedFile(str(tmp_path / "c.pages"))
        page_id = file.allocate()
        file.close()
        with pytest.raises(StorageError):
            file.read(page_id)

    def test_file_size_matches_pages(self, tmp_path, pf):
        for _ in range(5):
            pf.allocate()
        pf.sync()
        assert os.path.getsize(pf.path) == 6 * PAGE_SIZE  # header + 5
