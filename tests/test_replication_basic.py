"""Tests for basic incremental replication."""

import pytest

from repro.errors import ReplicationError
from repro.replication import Replicator, converged


@pytest.fixture
def rep():
    return Replicator()


class TestPull:
    def test_new_documents_flow(self, pair, clock, rep):
        a, b = pair
        a.create({"S": "one"})
        a.create({"S": "two"})
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.docs_transferred == 2
        assert len(b) == 2
        assert converged([a, b])

    def test_documents_identical_after_transfer(self, pair, clock, rep):
        a, b = pair
        doc = a.create({"Subject": "x", "Amount": 5}, author="alice")
        clock.advance(1)
        rep.pull(b, a)
        copy = b.get(doc.unid)
        assert copy.oid == doc.oid
        assert copy.get("Subject") == "x"
        assert copy.updated_by == doc.updated_by
        assert copy.revisions == doc.revisions

    def test_second_pull_transfers_nothing(self, pair, clock, rep):
        a, b = pair
        a.create({"S": "x"})
        clock.advance(1)
        rep.pull(b, a)
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.docs_transferred == 0
        assert stats.docs_examined == 0  # history cutoff skipped the scan

    def test_update_propagates(self, pair, clock, rep):
        a, b = pair
        doc = a.create({"S": "v1"})
        clock.advance(1)
        rep.pull(b, a)
        clock.advance(1)
        a.update(doc.unid, {"S": "v2"})
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.docs_transferred == 1
        assert b.get(doc.unid).get("S") == "v2"
        assert b.get(doc.unid).seq == 2

    def test_pull_does_not_push(self, pair, clock, rep):
        a, b = pair
        b.create({"S": "only in b"})
        clock.advance(1)
        rep.pull(b, a)
        assert len(a) == 0

    def test_replicate_is_bidirectional(self, pair, clock, rep):
        a, b = pair
        a.create({"S": "from a"})
        b.create({"S": "from b"})
        clock.advance(1)
        rep.replicate(a, b)
        assert len(a) == len(b) == 2
        assert converged([a, b])

    def test_identical_replicas_no_traffic(self, pair, clock, rep):
        a, b = pair
        a.create({"S": "x"})
        clock.advance(1)
        rep.replicate(a, b)
        clock.advance(1)
        stats = rep.replicate(a, b)
        assert stats.bytes_transferred == 0

    def test_mismatched_replica_ids_rejected(self, clock, rep):
        from repro.core import NotesDatabase

        a = NotesDatabase("one", clock=clock)
        b = NotesDatabase("two", clock=clock)
        with pytest.raises(ReplicationError):
            rep.pull(a, b)

    def test_self_replication_rejected(self, pair, rep):
        a, _ = pair
        with pytest.raises(ReplicationError):
            rep.pull(a, a)

    def test_updated_remote_doc_keeps_local_note_id(self, pair, clock, rep):
        a, b = pair
        doc = a.create({"S": "x"})
        b_local = b.create({"S": "local"})
        clock.advance(1)
        rep.pull(b, a)
        incoming = b.get(doc.unid)
        assert incoming.note_id not in (0, b_local.note_id)


class TestFullCopyBaseline:
    def test_full_copy_ships_everything_every_time(self, pair, clock, rep):
        a, b = pair
        for index in range(10):
            a.create({"S": str(index)})
        clock.advance(1)
        first = rep.full_copy(b, a)
        clock.advance(1)
        second = rep.full_copy(b, a)
        assert first.docs_examined == second.docs_examined == 10
        assert second.bytes_transferred == first.bytes_transferred
        assert converged([a, b])

    def test_incremental_cheaper_than_full_after_small_change(self, pair, clock, rep):
        a, b = pair
        for index in range(50):
            a.create({"S": str(index), "Body": "y" * 300})
        clock.advance(1)
        rep.pull(b, a)
        clock.advance(1)
        a.update(a.unids()[0], {"S": "changed"})
        clock.advance(1)
        incremental = rep.pull(b, a)
        full = rep.full_copy(b, a)
        assert incremental.bytes_transferred < full.bytes_transferred / 10


class TestTimestampAblation:
    def test_clock_skew_loses_update_with_timestamps(self, pair, clock):
        """The ablation DESIGN.md calls out: timestamp-based replication
        silently drops the edit made on the replica whose clock lags."""
        a, b = pair
        doc = a.create({"S": "base"})
        clock.advance(10)
        Replicator().replicate(a, b)
        # b edits later in *real* order, but we fake a lagging clock by
        # editing a at a later virtual time than b.
        clock.advance(1)
        b.update(doc.unid, {"S": "good edit"}, author="bob")
        clock.advance(1)
        a.update(doc.unid, {"S": "skewed edit"}, author="alice")
        clock.advance(1)
        skewed = Replicator(versioning="timestamp")
        stats = skewed.replicate(a, b)
        assert stats.conflicts == 0  # never even notices the divergence
        assert a.get(doc.unid).get("S") == b.get(doc.unid).get("S") == "skewed edit"

    def test_oid_versioning_detects_same_divergence(self, pair, clock):
        a, b = pair
        doc = a.create({"S": "base"})
        clock.advance(10)
        Replicator().replicate(a, b)
        clock.advance(1)
        b.update(doc.unid, {"S": "good edit"}, author="bob")
        clock.advance(1)
        a.update(doc.unid, {"S": "skewed edit"}, author="alice")
        clock.advance(1)
        stats = Replicator().replicate(a, b)
        assert stats.conflicts >= 1
