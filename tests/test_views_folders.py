"""Tests for folders and unread marks."""

import pytest

from repro.errors import ViewError
from repro.views import Folder, SortOrder, UnreadTracker, View, ViewColumn


@pytest.fixture
def folder(db):
    return Folder(
        db, "Favorites",
        columns=[ViewColumn(title="Subject", item="Subject",
                            sort=SortOrder.ASCENDING)],
    )


class TestFolder:
    def test_add_and_contains(self, db, folder):
        doc = db.create({"Subject": "keep"})
        folder.add(doc.unid)
        assert doc.unid in folder
        assert len(folder) == 1

    def test_add_is_idempotent(self, db, folder):
        doc = db.create({"Subject": "x"})
        folder.add(doc.unid)
        folder.add(doc.unid)
        assert len(folder) == 1

    def test_add_missing_rejected(self, folder):
        with pytest.raises(ViewError):
            folder.add("F" * 32)

    def test_remove(self, db, folder):
        doc = db.create({"Subject": "x"})
        folder.add(doc.unid)
        folder.remove(doc.unid)
        assert doc.unid not in folder

    def test_remove_unfiled_rejected(self, db, folder):
        doc = db.create({"Subject": "x"})
        with pytest.raises(ViewError):
            folder.remove(doc.unid)

    def test_sorted_contents(self, db, folder):
        for subject in ("mango", "apple", "zebra"):
            doc = db.create({"Subject": subject})
            folder.add(doc.unid)
        assert [d.get("Subject") for d in folder.documents()] == [
            "apple", "mango", "zebra",
        ]

    def test_membership_is_manual_not_selective(self, db, folder):
        filed = db.create({"Subject": "in"})
        db.create({"Subject": "out"})
        folder.add(filed.unid)
        assert len(folder) == 1

    def test_edit_rekeys_member(self, db, folder):
        doc = db.create({"Subject": "mmm"})
        other = db.create({"Subject": "aaa"})
        folder.add(doc.unid)
        folder.add(other.unid)
        db.update(doc.unid, {"Subject": "000-first"})
        assert folder.documents()[0].unid == doc.unid

    def test_delete_removes_member(self, db, folder):
        doc = db.create({"Subject": "gone"})
        folder.add(doc.unid)
        db.delete(doc.unid)
        assert len(folder) == 0
        assert folder.documents() == []

    def test_same_doc_in_two_folders(self, db, folder):
        other = Folder(db, "Archive")
        doc = db.create({"Subject": "both"})
        folder.add(doc.unid)
        other.add(doc.unid)
        folder.remove(doc.unid)
        assert doc.unid in other


class TestUnread:
    @pytest.fixture
    def tracker(self, db):
        return UnreadTracker(db)

    def test_new_docs_unread(self, db, tracker):
        doc = db.create({"Subject": "x"})
        assert tracker.is_unread("alice", doc)
        assert tracker.unread_count("alice") == 1

    def test_mark_read(self, db, tracker):
        doc = db.create({"Subject": "x"})
        tracker.mark_read("alice", doc.unid)
        assert not tracker.is_unread("alice", db.get(doc.unid))

    def test_unread_is_per_user(self, db, tracker):
        doc = db.create({"Subject": "x"})
        tracker.mark_read("alice", doc.unid)
        assert tracker.is_unread("bob", db.get(doc.unid))

    def test_revision_resets_to_unread(self, db, clock, tracker):
        doc = db.create({"Subject": "x"})
        tracker.mark_read("alice", doc.unid)
        clock.advance(1)
        db.update(doc.unid, {"Subject": "revised"})
        assert tracker.is_unread("alice", db.get(doc.unid))

    def test_replicated_update_resets_too(self, pair, clock, tracker):
        from repro.replication import Replicator

        a, b = pair
        track = UnreadTracker(a)
        doc = a.create({"Subject": "x"})
        clock.advance(1)
        Replicator().replicate(a, b)
        track.mark_read("alice", doc.unid)
        clock.advance(1)
        b.update(doc.unid, {"Subject": "remote edit"})
        clock.advance(1)
        Replicator().replicate(a, b)
        assert track.is_unread("alice", a.get(doc.unid))

    def test_mark_all_read(self, db, tracker):
        for index in range(5):
            db.create({"Subject": str(index)})
        assert tracker.mark_all_read("alice") == 5
        assert tracker.unread_count("alice") == 0

    def test_mark_unread(self, db, tracker):
        doc = db.create({"Subject": "x"})
        tracker.mark_read("alice", doc.unid)
        tracker.mark_unread("alice", doc.unid)
        assert tracker.is_unread("alice", db.get(doc.unid))

    def test_unread_count_scoped_to_view(self, db, tracker):
        view = View(db, "Orders", selection='SELECT Form = "Order"',
                    columns=[ViewColumn(title="S", item="Subject")])
        order = db.create({"Form": "Order", "Subject": "o"})
        db.create({"Form": "Memo", "Subject": "m"})
        assert tracker.unread_count("alice", view=view) == 1
        tracker.mark_read("alice", order.unid)
        assert tracker.unread_count("alice", view=view) == 0
        assert tracker.unread_count("alice") == 1
