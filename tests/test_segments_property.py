"""Property-based equivalence tests for the segment stack (E15).

The property under test, at two levels:

* **Stack level** — whatever sequence of appends, removals, folds, and
  manifest reloads a ``SegmentStack`` goes through, its live contents
  equal a plain dict applying the same batches (newest-wins), and the
  concatenation of per-segment records equals the append history
  (accumulate). Merge policy must never change what reads see, only how
  many segments hold it.
* **Consumer level** — a persisted view and full-text index driven
  through randomized create/update/delete/purge batches interleaved with
  ``save`` checkpoints, engine reopens, and forced merges (policies down
  to ``SINGLE_SEGMENT``) finish entry-for-entry identical to consumers
  rebuilt from scratch.

Each property runs twice: a reduced-example fast lane in the default
job, and a ``slow``-marked lane with the full example budget
(``pytest -m slow``).
"""

import os
import random
import tempfile
from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import NotesDatabase
from repro.fulltext import FullTextIndex
from repro.sim import VirtualClock
from repro.storage import (
    DEFAULT_POLICY,
    SINGLE_SEGMENT,
    MergePolicy,
    SegmentStack,
    StorageEngine,
)
from repro.views import SortOrder, View, ViewColumn

# Hypothesis drives the batches; engine IO makes per-example timing too
# noisy for a deadline.
RELAXED = settings(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class FakeEngine:
    """The four calls SegmentStack makes, over a dict — keeps the
    stack-level properties fast enough for hundreds of examples."""

    def __init__(self):
        self.store: dict[bytes, bytes] = {}

    def begin(self):
        return {}

    def put(self, txn, key, value):
        txn[key] = value

    def delete(self, txn, key):
        txn[key] = None

    def commit(self, txn):
        for key, value in txn.items():
            if value is None:
                self.store.pop(key, None)
            else:
                self.store[key] = value

    def get(self, key):
        return self.store.get(key)


KEYS = st.sampled_from([f"k{i}" for i in range(12)])  # small space: overwrites
POLICIES = st.sampled_from([
    SINGLE_SEGMENT,
    MergePolicy(max_segments=2, max_dead_ratio=0.5),
    MergePolicy(max_segments=3, max_dead_ratio=0.2),
    DEFAULT_POLICY,
])
BATCHES = st.lists(
    st.tuples(
        st.dictionaries(KEYS, st.integers(), max_size=6),   # records
        st.sets(KEYS, max_size=4),                          # removals
    ),
    min_size=1,
    max_size=12,
)


def check_newest_wins(batches, policy):
    engine = FakeEngine()
    stack = SegmentStack(engine, b"nw", policy=policy)
    shadow: dict[str, int] = {}
    for records, removes in batches:
        txn = engine.begin()
        stack.append(txn, records, remove=removes)
        stack.maintain(txn)
        engine.commit(txn)
        shadow.update(records)
        for key in removes - set(records):
            shadow.pop(key, None)
        assert dict(stack.live_items()) == shadow
        assert stack.live_count() == len(shadow)
        assert all(stack.get(key) == value for key, value in shadow.items())
        assert len(stack) <= policy.max_segments
        assert stack.stats.segments == len(stack)
        assert stack.stats.dead_entries == (
            stack.stats.total_entries - len(shadow)
        )
    manifest = stack.manifest()
    # Tombstones never outlive the keys they mask (fold-time GC).
    assert set(manifest["tombstones"]) <= set(stack.keys())
    reopened = SegmentStack(engine, b"nw", policy=policy)
    assert reopened.load(manifest)
    assert dict(reopened.live_items()) == shadow
    # From-scratch equivalence: one segment holding the final dict reads
    # the same as however many segments history left behind.
    rebuilt = SegmentStack(engine, b"rebuilt", policy=policy)
    txn = engine.begin()
    rebuilt.append(txn, shadow)
    engine.commit(txn)
    assert dict(rebuilt.live_items()) == dict(reopened.live_items())


def check_accumulate(batches, policy):
    engine = FakeEngine()
    stack = SegmentStack(engine, b"acc", policy=policy, newest_wins=False)

    def combine(key, older, newer):
        merged = list(older or ()) + list(newer or ())
        return merged or None

    history: dict[str, list[int]] = defaultdict(list)
    for records, _ in batches:
        txn = engine.begin()
        stack.append(txn, {key: [value] for key, value in records.items()})
        stack.maintain(txn, combine=combine)
        engine.commit(txn)
        for key, value in records.items():
            history[key].append(value)
        assert len(stack) <= policy.max_segments
        for key, values in history.items():
            # Folds concatenate older-then-newer, so the flattened
            # oldest-first read is exactly the append history.
            flat = [
                value
                for _, record in stack.records(key)
                for value in record
            ]
            assert flat == values
    reopened = SegmentStack(
        engine, b"acc", policy=policy, newest_wins=False
    )
    assert reopened.load(stack.manifest())
    for key, values in history.items():
        assert [
            value for _, record in reopened.records(key) for value in record
        ] == values


CONSUMER_OPS = st.lists(
    st.tuples(
        st.sampled_from([
            "create", "create", "update", "update", "delete", "soft",
            "restore", "purge", "save", "save", "reopen",
        ]),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=5,
    max_size=40,
)

WORDS = ("budget", "meeting", "release", "replica", "schedule",
         "review", "forecast", "inventory", "proposal", "summary")


def _make_view(db, policy, persist=True, journal=True):
    return View(
        db, "PropEquiv",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
        persist=persist, journal=journal, merge_policy=policy,
    )


def _view_state(view):
    return [(entry.unid, entry.values) for entry in view.entries()]


def check_consumer_cycles(ops, policy):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "db")
        engine = StorageEngine(path)
        db = NotesDatabase("prop.nsf", clock=VirtualClock(),
                           rng=random.Random(7), engine=engine)
        view = _make_view(db, policy)
        index = FullTextIndex(db, persist=True, merge_policy=policy)
        for op, arg in ops:
            rng = random.Random(arg)
            db.clock.advance(0.1)
            unids = db.unids()
            if op == "create" or (op in ("update", "delete", "soft")
                                  and not unids):
                db.create({
                    "Form": rng.choice(["Memo", "Memo", "Task"]),
                    "Subject": f"{rng.choice(WORDS)} {arg % 97}",
                    "Body": " ".join(rng.choice(WORDS) for _ in range(5)),
                    "Amount": arg % 100,
                })
            elif op == "update":
                db.update(rng.choice(unids), {
                    "Subject": f"{rng.choice(WORDS)} edited",
                    "Amount": arg % 100,
                })
            elif op == "delete":
                db.delete(rng.choice(unids))
            elif op == "soft":
                db.soft_delete(rng.choice(unids))
            elif op == "restore":
                if db.trash:
                    db.restore(rng.choice(db.trash))
            elif op == "purge":
                if unids:
                    db.delete(rng.choice(unids))
                db.clock.advance(10)
                db.purge_stubs(db.clock.now)
            elif op == "save":
                view.save_index()
                index.save_checkpoint()
                if policy is SINGLE_SEGMENT:
                    # The ablation folds every save down to one segment.
                    assert view.catch_up.segment_stats["entries"].segments <= 1
                    assert index.catch_up.segment_stats["docs"].segments <= 1
            elif op == "reopen":
                view.close()
                index.close()
                engine.close()
                engine = StorageEngine(path)
                db = NotesDatabase("prop.nsf", clock=VirtualClock(),
                                   rng=random.Random(arg), engine=engine)
                view = _make_view(db, policy)
                index = FullTextIndex(db, persist=True, merge_policy=policy)
        cold_view = _make_view(db, policy, persist=False, journal=False)
        assert _view_state(view) == _view_state(cold_view)
        cold_index = FullTextIndex(db)
        assert index.document_count == cold_index.document_count
        assert index.postings_snapshot() == cold_index.postings_snapshot()
        view.close()
        index.close()
        cold_index.close()
        engine.close()


# -- fast lane (default job: reduced examples) --------------------------


@settings(max_examples=25, parent=RELAXED)
@given(batches=BATCHES, policy=POLICIES)
def test_newest_wins_matches_dict(batches, policy):
    check_newest_wins(batches, policy)


@settings(max_examples=25, parent=RELAXED)
@given(batches=BATCHES, policy=POLICIES)
def test_accumulate_preserves_history(batches, policy):
    check_accumulate(batches, policy)


@settings(max_examples=6, parent=RELAXED)
@given(ops=CONSUMER_OPS, policy=POLICIES)
def test_consumer_cycles_match_rebuild(ops, policy):
    check_consumer_cycles(ops, policy)


# -- slow lane (full budget: pytest -m slow) ----------------------------


@pytest.mark.slow
@settings(max_examples=200, parent=RELAXED)
@given(batches=BATCHES, policy=POLICIES)
def test_newest_wins_matches_dict_full(batches, policy):
    check_newest_wins(batches, policy)


@pytest.mark.slow
@settings(max_examples=200, parent=RELAXED)
@given(batches=BATCHES, policy=POLICIES)
def test_accumulate_preserves_history_full(batches, policy):
    check_accumulate(batches, policy)


@pytest.mark.slow
@settings(max_examples=40, parent=RELAXED)
@given(ops=CONSUMER_OPS, policy=POLICIES)
def test_consumer_cycles_match_rebuild_full(ops, policy):
    check_consumer_cycles(ops, policy)
