"""Tests for persisted view indexes (warm view opens)."""

import random

import pytest

from repro.core import NotesDatabase
from repro.errors import ViewError
from repro.sim import VirtualClock
from repro.storage import SINGLE_SEGMENT, MergePolicy, StorageEngine
from repro.views import SortOrder, View, ViewColumn


@pytest.fixture
def store(tmp_path):
    def open_db(seed=1):
        engine = StorageEngine(str(tmp_path / "nsf"))
        db = NotesDatabase("v.nsf", clock=VirtualClock(),
                           rng=random.Random(seed), engine=engine)
        return engine, db

    return open_db


def make_view(db, persist=True, selection='SELECT Form = "Memo"', **kw):
    return View(
        db, "ByAmount",
        selection=selection,
        columns=[
            ViewColumn(title="Amount", item="Amount",
                       sort=SortOrder.DESCENDING),
            ViewColumn(title="Subject", item="Subject"),
        ],
        persist=persist,
        **kw,
    )


class TestPersistedViews:
    def test_persist_needs_engine(self, db):
        with pytest.raises(ViewError):
            make_view(db, persist=True)

    def test_cold_then_warm_open(self, store):
        engine, db = store()
        for index in range(30):
            db.create({"Form": "Memo", "Amount": index * 7 % 40,
                       "Subject": f"m{index}"})
        view = make_view(db)
        assert not view.loaded_from_disk  # cold: had to build
        expected = view.all_unids()
        view.close()  # saves the index
        engine.close()

        engine2, db2 = store(seed=2)
        warm = make_view(db2)
        assert warm.loaded_from_disk
        assert warm.rebuilds == 0
        assert warm.all_unids() == expected
        engine2.close()

    def test_stale_index_tops_up_from_journal(self, store):
        engine, db = store()
        doc = db.create({"Form": "Memo", "Amount": 1, "Subject": "x"})
        view = make_view(db)
        view.save_index()
        db.update(doc.unid, {"Amount": 99})  # state moved past the snapshot
        view.close()  # note: close() re-saves, so break that by re-opening
        engine.close()

        engine2, db2 = store(seed=2)
        db2.create({"Form": "Memo", "Amount": 5, "Subject": "new"})
        fresh = make_view(db2)
        # Stale snapshot + same journal: loaded and topped up, no rebuild.
        assert fresh.loaded_from_disk
        assert fresh.rebuilds == 0
        assert fresh.catch_up.last_path == "topup"
        assert fresh.catch_up.notes_replayed >= 1
        amounts = [entry.values[0] for entry in fresh.entries()]
        assert amounts == sorted(amounts, reverse=True)
        assert amounts == [99, 5]
        engine2.close()

    def test_stale_index_rebuilds_with_journal_off(self, store):
        engine, db = store()
        doc = db.create({"Form": "Memo", "Amount": 1, "Subject": "x"})
        view = make_view(db)
        view.save_index()
        db.update(doc.unid, {"Amount": 99})
        engine.close()

        engine2, db2 = store(seed=2)
        fresh = View(
            db2, "ByAmount", selection='SELECT Form = "Memo"',
            columns=[
                ViewColumn(title="Amount", item="Amount",
                           sort=SortOrder.DESCENDING),
                ViewColumn(title="Subject", item="Subject"),
            ],
            persist=True, journal=False,
        )
        # The ablation keeps the pre-journal contract: stale -> rebuild.
        assert not fresh.loaded_from_disk
        assert fresh.rebuilds == 1
        assert [entry.values[0] for entry in fresh.entries()] == [99]
        engine2.close()

    def test_design_change_invalidates(self, store):
        engine, db = store()
        db.create({"Form": "Memo", "Amount": 1, "Subject": "x"})
        view = make_view(db)
        view.close()
        engine.close()

        engine2, db2 = store(seed=2)
        changed = make_view(db2, selection="SELECT @All")
        assert not changed.loaded_from_disk
        engine2.close()

    def test_loaded_view_stays_incremental(self, store):
        engine, db = store()
        db.create({"Form": "Memo", "Amount": 3, "Subject": "a"})
        view = make_view(db)
        view.close()
        engine.close()

        engine2, db2 = store(seed=2)
        warm = make_view(db2)
        doc = db2.create({"Form": "Memo", "Amount": 99, "Subject": "b"})
        assert doc.unid in warm
        assert warm.all_unids()[0] == doc.unid  # descending: 99 first
        engine2.close()

    def test_descending_keys_roundtrip(self, store):
        engine, db = store()
        for amount in (5, 1, 9, 3):
            db.create({"Form": "Memo", "Amount": amount, "Subject": "s"})
        view = make_view(db)
        before = [entry.values[0] for entry in view.entries()]
        view.close()
        engine.close()

        engine2, db2 = store(seed=2)
        warm = make_view(db2)
        assert [entry.values[0] for entry in warm.entries()] == before
        assert before == [9, 5, 3, 1]
        engine2.close()

    def test_snapshot_roundtrip_random_content(self, store):
        """Property-ish: arbitrary generated content loads back into an
        identical view (keys, values, levels, order)."""
        import random as random_module

        engine, db = store()
        rng = random_module.Random(99)
        for index in range(120):
            items = {"Form": "Memo", "Subject": rng.choice(
                ["", "a", "Zz", "0bc", "ωmega"]) + str(index)}
            if rng.random() < 0.5:
                items["Amount"] = rng.randrange(-5, 5)
            if rng.random() < 0.3:
                items["Tags"] = [rng.choice("xyz") for _ in range(3)]
            db.create(items)
        view = make_view(db)
        before = [(e.unid, e.values, e.level) for e in view.entries()]
        view.close()
        engine.close()

        engine2, db2 = store(seed=5)
        warm = make_view(db2)
        assert warm.loaded_from_disk
        after = [(e.unid, e.values, e.level) for e in warm.entries()]
        assert after == before
        engine2.close()

    def test_refresh_distinguishes_topup_from_topup_plus_fold(self, store):
        """A manual persistent view reports ``"merge"`` only when the
        checkpoint save behind its top-up also folded segments."""
        engine, db = store()
        for index in range(10):
            db.create({"Form": "Memo", "Amount": index, "Subject": f"m{index}"})
        policy = MergePolicy(max_segments=2, max_dead_ratio=1.0)
        view = View(
            db, "ByAmount", selection='SELECT Form = "Memo"',
            columns=[
                ViewColumn(title="Amount", item="Amount",
                           sort=SortOrder.DESCENDING),
                ViewColumn(title="Subject", item="Subject"),
            ],
            mode="manual", persist=True, merge_policy=policy,
        )
        view.save_index()  # fresh stack: one segment
        stats = view.catch_up.segment_stats["entries"]
        assert stats.segments == 1
        assert view.catch_up.merges == 0

        db.create({"Form": "Memo", "Amount": 50, "Subject": "second"})
        assert view.refresh() == "topup"  # appended segment 2: no fold yet
        assert stats.segments == 2
        assert view.catch_up.merges == 0
        assert view.catch_up.topups == 1

        db.create({"Form": "Memo", "Amount": 60, "Subject": "third"})
        assert view.refresh() == "merge"  # third segment broke the policy
        assert view.catch_up.last_path == "merge"
        assert view.catch_up.merges >= 1
        assert view.catch_up.topups == 2  # the merge was still a top-up
        assert stats.segments <= 2
        assert stats.bytes_folded > 0

        db.create({"Form": "Task", "Amount": 1, "Subject": "unselected"})
        assert view.refresh() in ("topup", "merge")  # never a rebuild
        assert view.rebuilds == 1  # only the initial cold build
        engine.close()

    def test_save_appends_only_the_delta(self, store):
        engine, db = store()
        docs = [
            db.create({"Form": "Memo", "Amount": index, "Subject": f"m{index}"})
            for index in range(20)
        ]
        view = make_view(db)
        view.save_index()
        stats = view.catch_up.segment_stats["entries"]
        assert stats.records_appended == 20  # the fresh full rewrite
        db.update(docs[0].unid, {"Amount": 100})
        db.update(docs[1].unid, {"Amount": 101})
        db.delete(docs[2].unid)
        view.save_index()
        # Second save wrote exactly the two dirtied entries (the delete
        # travels as a manifest tombstone, not a record).
        assert stats.records_appended == 22
        assert stats.segments == 2
        assert stats.dead_entries == 3  # two superseded + one tombstoned
        engine.close()

    def test_single_segment_ablation_folds_every_save(self, store):
        engine, db = store()
        for index in range(15):
            db.create({"Form": "Memo", "Amount": index, "Subject": f"m{index}"})
        view = make_view(db, merge_policy=SINGLE_SEGMENT)
        view.save_index()
        stats = view.catch_up.segment_stats["entries"]
        assert stats.segments == 1
        db.create({"Form": "Memo", "Amount": 99, "Subject": "delta"})
        view.save_index()
        # The ablation rewrote everything: append + immediate fold.
        assert stats.segments == 1
        assert view.catch_up.merges >= 1
        assert stats.bytes_folded > 0
        assert view.catch_up.last_path == "merge"
        engine.close()

    def test_database_close_sweeps_registered_views(self, store):
        engine, db = store()
        db.create({"Form": "Memo", "Amount": 3, "Subject": "a"})
        view = make_view(db)
        saved = db.save_checkpoints()
        assert saved == 1  # the view registered itself
        db.create({"Form": "Memo", "Amount": 9, "Subject": "b"})
        db.close()  # saves the view sidecar, then closes the engine

        engine2, db2 = store(seed=2)
        warm = make_view(db2)
        assert warm.loaded_from_disk
        assert warm.catch_up.last_path == "noop"  # close() caught the delta
        assert len(warm) == 2
        engine2.close()

    def test_hierarchical_view_roundtrip(self, store):
        engine, db = store()
        topic = db.create({"Form": "Memo", "Amount": 1, "Subject": "t"})
        db.clock.advance(1)
        db.create({"Form": "Memo", "Amount": 2, "Subject": "re"},
                  parent=topic.unid)
        view = View(
            db, "Threads", selection='SELECT Form = "Memo"',
            columns=[ViewColumn(title="Subject", item="Subject",
                                sort=SortOrder.ASCENDING)],
            hierarchical=True, persist=True,
        )
        levels = [entry.level for entry in view.entries()]
        view.close()
        engine.close()

        engine2, db2 = store(seed=2)
        warm = View(
            db2, "Threads", selection='SELECT Form = "Memo"',
            columns=[ViewColumn(title="Subject", item="Subject",
                                sort=SortOrder.ASCENDING)],
            hierarchical=True, persist=True,
        )
        assert warm.loaded_from_disk
        assert [entry.level for entry in warm.entries()] == levels
        # hierarchy bookkeeping restored: parent edits re-key children
        parent_unid = next(
            entry.unid for entry in warm.entries() if entry.level == 0
        )
        db2.update(parent_unid, {"Subject": "zzz"})
        order = [(entry.values[0], entry.level) for entry in warm.entries()]
        assert order == [("zzz", 0), ("re", 1)]
        engine2.close()
