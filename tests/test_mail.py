"""Tests for the directory and the mail router."""

import pytest

from repro.errors import MailError
from repro.mail import Directory, MailRouter, make_memo
from repro.mail.message import make_nondelivery_report, recipients_of
from repro.replication import SimulatedNetwork
from repro.sim import VirtualClock


@pytest.fixture
def mail_world():
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    for name in ("hq", "emea", "apac"):
        network.add_server(name)
    directory = Directory(clock=clock)
    directory.register_person("alice/Acme", "hq")
    directory.register_person("bob/Acme", "emea")
    directory.register_person("chen/Acme", "apac")
    directory.register_group("all-hands", ["alice/Acme", "bob/Acme", "chen/Acme"])
    router = MailRouter(network, directory)
    router.add_route("hq", "emea")
    router.add_route("emea", "apac")
    return clock, network, directory, router


class TestMessages:
    def test_make_memo_fields(self):
        memo = make_memo("a", ["b", "c"], "subj", "body", copy_to="d")
        assert memo["Form"] == "Memo"
        assert recipients_of(memo) == ["b", "c", "d"]

    def test_string_recipient_normalised(self):
        memo = make_memo("a", "b", "s")
        assert memo["SendTo"] == ["b"]

    def test_ndr_addresses_sender(self):
        memo = make_memo("a", "ghost", "lost")
        ndr = make_nondelivery_report(memo, "ghost", "unknown")
        assert ndr["SendTo"] == ["a"]
        assert ndr["Form"] == "NonDelivery"
        assert "lost" in ndr["Subject"]


class TestDirectory:
    def test_person_lookup(self, mail_world):
        _, _, directory, _ = mail_world
        assert directory.mail_server_of("bob/Acme") == "emea"
        assert directory.mail_file_of("bob/Acme").startswith("mail/")

    def test_unknown_person_rejected(self, mail_world):
        _, _, directory, _ = mail_world
        with pytest.raises(MailError):
            directory.mail_server_of("ghost/Acme")

    def test_reregistration_replaces(self, mail_world):
        _, _, directory, _ = mail_world
        directory.register_person("bob/Acme", "apac")
        assert directory.mail_server_of("bob/Acme") == "apac"
        assert directory.people.count("bob/Acme") == 1

    def test_group_expansion(self, mail_world):
        _, _, directory, _ = mail_world
        people, unknown = directory.expand_recipients(["all-hands"])
        assert set(people) == {"alice/Acme", "bob/Acme", "chen/Acme"}
        assert unknown == []

    def test_nested_groups_and_dedup(self, mail_world):
        _, _, directory, _ = mail_world
        directory.register_group("leads", ["alice/Acme", "all-hands"])
        people, _ = directory.expand_recipients(["leads", "alice/Acme"])
        assert people.count("alice/Acme") == 1
        assert len(people) == 3

    def test_group_cycle_tolerated(self, mail_world):
        _, _, directory, _ = mail_world
        directory.register_group("g1", ["g2"])
        directory.register_group("g2", ["g1", "bob/Acme"])
        people, _ = directory.expand_recipients(["g1"])
        assert people == ["bob/Acme"]

    def test_unknown_names_reported(self, mail_world):
        _, _, directory, _ = mail_world
        _, unknown = directory.expand_recipients(["nobody/Acme"])
        assert unknown == ["nobody/Acme"]


class TestRouting:
    def test_local_delivery(self, mail_world):
        _, _, _, router = mail_world
        router.submit(make_memo("alice/Acme", "alice/Acme", "to self"), "hq")
        stats = router.deliver_all()
        assert stats.delivered == 1
        assert stats.hop_counts == [0]

    def test_single_hop(self, mail_world):
        _, _, _, router = mail_world
        router.submit(make_memo("alice/Acme", "bob/Acme", "hi"), "hq")
        stats = router.deliver_all()
        assert stats.delivered == 1 and stats.hop_counts == [1]

    def test_multi_hop_route_trace(self, mail_world):
        _, _, _, router = mail_world
        router.submit(make_memo("alice/Acme", "chen/Acme", "far away"), "hq")
        router.deliver_all()
        memo = next(iter(router.mail_file("chen/Acme").all_documents()))
        assert memo.get_list("$RouteTrace") == ["hq", "emea", "apac"]
        assert memo.get("DeliveredDate") is not None

    def test_group_fanout(self, mail_world):
        _, _, _, router = mail_world
        router.submit(make_memo("alice/Acme", "all-hands", "everyone"), "hq")
        stats = router.deliver_all()
        assert stats.delivered == 3
        for person in ("alice/Acme", "bob/Acme", "chen/Acme"):
            subjects = [d.get("Subject")
                        for d in router.mail_file(person).all_documents()]
            assert "everyone" in subjects

    def test_unknown_recipient_bounces_ndr(self, mail_world):
        _, _, _, router = mail_world
        router.submit(make_memo("alice/Acme", "ghost/Acme", "??"), "hq")
        stats = router.deliver_all()
        assert stats.bounced == 1
        subjects = [d.get("Subject")
                    for d in router.mail_file("alice/Acme").all_documents()]
        assert any(s.startswith("NON-DELIVERY") for s in subjects)

    def test_bounce_of_bounce_suppressed(self, mail_world):
        _, _, directory, router = mail_world
        # sender that does not exist: NDR cannot be delivered, must not loop
        router.submit(make_memo("ghost/Acme", "also-ghost/Acme", "x"), "hq")
        stats = router.deliver_all()
        assert stats.bounced >= 1  # terminated

    def test_no_recipients_rejected(self, mail_world):
        _, _, _, router = mail_world
        with pytest.raises(MailError):
            router.submit({"Form": "Memo", "From": "alice/Acme"}, "hq")

    def test_partition_bounces_after_retries_exhausted(self, mail_world):
        _, network, _, router = mail_world
        router.max_attempts = 1  # bounce on first failure
        network.partition("emea", "apac")
        router.submit(make_memo("alice/Acme", "chen/Acme", "blocked"), "hq")
        stats = router.deliver_all()
        assert stats.bounced == 1
        assert stats.delivered == 1  # the NDR back to alice

    def test_partition_holds_mail_until_link_returns(self, mail_world):
        """Store-and-forward: a memo waits out the outage, then delivers."""
        _, network, _, router = mail_world
        network.partition("emea", "apac")
        router.submit(make_memo("alice/Acme", "chen/Acme", "patient"), "hq")
        stats = router.deliver_all()
        assert stats.delivered == 0 and stats.bounced == 0
        assert stats.held >= 1
        assert router.pending() == 1  # waiting at emea
        network.partition("emea", "apac", partitioned=False)
        stats = router.deliver_all()
        assert stats.delivered == 1
        memo = next(iter(router.mail_file("chen/Acme").all_documents()))
        assert memo.get("Subject") == "patient"

    def test_copy_fields_counted(self, mail_world):
        _, _, _, router = mail_world
        router.submit(
            make_memo("alice/Acme", "bob/Acme", "cc test",
                      copy_to="chen/Acme", blind_copy_to="alice/Acme"),
            "hq",
        )
        stats = router.deliver_all()
        assert stats.delivered == 3

    def test_network_traffic_accounted(self, mail_world):
        _, network, _, router = mail_world
        router.submit(make_memo("alice/Acme", "chen/Acme", "traffic",
                                body="B" * 5000), "hq")
        router.deliver_all()
        assert network.stats.bytes_sent > 10_000  # two hops x ~5KB
