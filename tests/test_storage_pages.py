"""Tests for slotted pages."""

import pytest

from repro.errors import PageError
from repro.storage import PAGE_SIZE, SlottedPage


class TestInsertGet:
    def test_roundtrip(self):
        page = SlottedPage()
        slot = page.insert(b"hello world")
        assert page.get(slot) == b"hello world"

    def test_multiple_records_keep_distinct_slots(self):
        page = SlottedPage()
        slots = [page.insert(f"record {i}".encode()) for i in range(10)]
        assert len(set(slots)) == 10
        for index, slot in enumerate(slots):
            assert page.get(slot) == f"record {index}".encode()

    def test_empty_record_allowed(self):
        page = SlottedPage()
        slot = page.insert(b"")
        assert page.get(slot) == b""

    def test_max_record_fits_exactly(self):
        page = SlottedPage()
        data = b"x" * SlottedPage.max_record_size()
        slot = page.insert(data)
        assert page.get(slot) == data

    def test_oversized_record_rejected(self):
        page = SlottedPage()
        with pytest.raises(PageError):
            page.insert(b"x" * (SlottedPage.max_record_size() + 1))

    def test_full_page_rejects_insert(self):
        page = SlottedPage()
        while page.free_space >= 100:
            page.insert(b"y" * 100)
        with pytest.raises(PageError):
            page.insert(b"z" * (page.free_space + 200))

    def test_bad_slot_rejected(self):
        page = SlottedPage()
        with pytest.raises(PageError):
            page.get(0)

    def test_wrong_size_raw_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(100))


class TestDelete:
    def test_deleted_slot_unreadable(self):
        page = SlottedPage()
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(PageError):
            page.get(slot)

    def test_double_delete_rejected(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_slot_reuse_after_delete(self):
        page = SlottedPage()
        slot_a = page.insert(b"a")
        page.insert(b"b")
        page.delete(slot_a)
        slot_c = page.insert(b"c")
        assert slot_c == slot_a
        assert page.get(slot_c) == b"c"

    def test_delete_does_not_move_other_records(self):
        page = SlottedPage()
        keep = page.insert(b"keeper")
        victim = page.insert(b"victim")
        page.delete(victim)
        assert page.get(keep) == b"keeper"

    def test_slots_lists_live_records_only(self):
        page = SlottedPage()
        a = page.insert(b"a")
        b = page.insert(b"b")
        page.delete(a)
        assert page.slots() == [b]


class TestUpdateCompact:
    def test_shrinking_update_in_place(self):
        page = SlottedPage()
        slot = page.insert(b"long value here")
        page.update(slot, b"tiny")
        assert page.get(slot) == b"tiny"

    def test_growing_update(self):
        page = SlottedPage()
        slot = page.insert(b"small")
        page.update(slot, b"much larger value " * 10)
        assert page.get(slot) == b"much larger value " * 10

    def test_update_of_deleted_slot_rejected(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.update(slot, b"y")

    def test_update_too_big_rolls_back(self):
        page = SlottedPage()
        slot = page.insert(b"orig")
        filler = []
        while page.free_space >= 200:
            filler.append(page.insert(b"f" * 180))
        with pytest.raises(PageError):
            page.update(slot, b"g" * (page.free_space + 300))
        assert page.get(slot) == b"orig"  # rollback preserved the record

    def test_compaction_reclaims_space(self):
        page = SlottedPage()
        slots = [page.insert(b"d" * 200) for _ in range(10)]
        free_before = page.free_space
        for slot in slots[:5]:
            page.delete(slot)
        page.compact()
        assert page.free_space >= free_before + 5 * 200

    def test_compaction_preserves_survivors(self):
        page = SlottedPage()
        slots = [page.insert(f"data-{i}".encode() * 10) for i in range(8)]
        for slot in slots[::2]:
            page.delete(slot)
        page.compact()
        for index in range(1, 8, 2):
            assert page.get(slots[index]) == f"data-{index}".encode() * 10

    def test_fits_accounts_for_reclaimable(self):
        page = SlottedPage()
        slot = page.insert(b"x" * 3000)
        page.delete(slot)
        assert page.fits(3000)

    def test_insert_triggers_compaction_when_fragmented(self):
        page = SlottedPage()
        slots = [page.insert(b"x" * 500) for _ in range(7)]
        for slot in slots[:4]:
            page.delete(slot)
        # Contiguous free space is small but reclaimable space suffices.
        slot = page.insert(b"y" * 1500)
        assert page.get(slot) == b"y" * 1500
