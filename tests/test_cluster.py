"""Tests for clustering: event-driven replication, failover, catch-up."""

import random

import pytest

from repro.cluster import Cluster
from repro.core import NotesDatabase
from repro.errors import ClusterError
from repro.replication import ConflictPolicy, SimulatedNetwork, converged
from repro.sim import VirtualClock


@pytest.fixture
def world():
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    for name in ("c1", "c2", "c3"):
        network.add_server(name)
    db = NotesDatabase("app.nsf", clock=clock, rng=random.Random(3), server="c1")
    network.server("c1").add_database(db)
    cluster = Cluster("TestCluster", network)
    for name in ("c1", "c2", "c3"):
        cluster.add_member(name)
    replicas = cluster.cluster_database(db)
    return clock, network, cluster, replicas


class TestMembership:
    def test_members_get_replicas(self, world):
        _, network, _, replicas = world
        assert len(replicas) == 3
        assert {r.server for r in replicas} == {"c1", "c2", "c3"}
        assert len({r.replica_id for r in replicas}) == 1

    def test_duplicate_member_rejected(self, world):
        _, _, cluster, _ = world
        with pytest.raises(ClusterError):
            cluster.add_member("c1")

    def test_cluster_size_cap(self, world):
        clock, network, cluster, _ = world
        for index in range(3, 6):
            network.add_server(f"c{index + 1}")
            cluster.add_member(f"c{index + 1}")
        network.add_server("overflow")
        with pytest.raises(ClusterError):
            cluster.add_member("overflow")

    def test_preexisting_content_seeded(self):
        clock = VirtualClock()
        network = SimulatedNetwork(clock)
        network.add_server("c1")
        network.add_server("c2")
        db = NotesDatabase("pre.nsf", clock=clock, rng=random.Random(1), server="c1")
        network.server("c1").add_database(db)
        seeded = db.create({"S": "existing"})
        db_deleted = db.create({"S": "gone"})
        db.delete(db_deleted.unid)
        cluster = Cluster("C", network)
        cluster.add_member("c1")
        cluster.add_member("c2")
        replicas = cluster.cluster_database(db)
        replica = next(r for r in replicas if r.server == "c2")
        assert seeded.unid in replica
        assert db_deleted.unid in replica.stubs


class TestEventDrivenReplication:
    def test_create_propagates_immediately(self, world):
        _, _, _, (a, b, c) = world
        doc = a.create({"S": "live"})
        assert doc.unid in b and doc.unid in c

    def test_update_propagates(self, world):
        _, _, _, (a, b, c) = world
        doc = a.create({"S": "v1"})
        b.update(doc.unid, {"S": "v2"})
        assert a.get(doc.unid).get("S") == "v2"
        assert c.get(doc.unid).get("S") == "v2"

    def test_delete_propagates(self, world):
        _, _, _, (a, b, c) = world
        doc = a.create({"S": "x"})
        c.delete(doc.unid)
        assert doc.unid not in a and doc.unid not in b
        assert converged([a, b, c])

    def test_no_echo_storm(self, world):
        _, _, cluster, (a, b, c) = world
        replicator = next(iter(cluster.replicators.values()))
        a.create({"S": "once"})
        # one change, two pushes (to b and c) — no echoes back
        assert replicator.stats.pushes == 2

    def test_conflicting_cluster_edits_resolve(self, world):
        clock, _, cluster, (a, b, c) = world
        # simulate a partition so concurrent edits are possible
        doc = a.create({"S": "base"})
        cluster.network.partition("c1", "c2")
        cluster.network.partition("c1", "c3")
        cluster.network.partition("c2", "c3")
        clock.advance(1)
        a.update(doc.unid, {"S": "a!"})
        clock.advance(1)
        b.update(doc.unid, {"S": "b!"})
        for pair_names in (("c1", "c2"), ("c1", "c3"), ("c2", "c3")):
            cluster.network.partition(*pair_names, partitioned=False)
        replicator = next(iter(cluster.replicators.values()))
        for _ in range(3):
            replicator.catch_up()
        assert converged([a, b, c])
        assert replicator.stats.conflicts >= 1


class TestFailover:
    def test_preferred_server_when_up(self, world):
        _, _, cluster, (a, _, _) = world
        result = cluster.open_database(a.replica_id, preferred="c1")
        assert result.server == "c1" and not result.failed_over

    def test_failover_when_preferred_down(self, world):
        _, _, cluster, (a, _, _) = world
        cluster.fail("c1")
        result = cluster.open_database(
            a.replica_id, preferred="c1", rng=random.Random(0)
        )
        assert result.server in ("c2", "c3")
        assert result.failed_over
        assert cluster.failovers == 1

    def test_all_down_raises(self, world):
        _, _, cluster, (a, _, _) = world
        for name in ("c1", "c2", "c3"):
            cluster.fail(name)
        with pytest.raises(ClusterError):
            cluster.open_database(a.replica_id)

    def test_load_balancing_spreads_opens(self, world):
        _, _, cluster, (a, _, _) = world
        rng = random.Random(42)
        servers = [
            cluster.open_database(a.replica_id, rng=rng).server
            for _ in range(30)
        ]
        assert len(set(servers)) == 3  # no single member takes everything

    def test_availability_index_decreases_with_load(self, world):
        _, _, cluster, (a, _, _) = world
        before = cluster.availability_index("c1")
        for _ in range(5):
            cluster.open_database(a.replica_id, preferred="c1")
        assert cluster.availability_index("c1") < before
        cluster.close_session("c1")
        assert cluster.availability_index("c1") == before - 20

    def test_changes_queue_while_down_and_drain_on_restore(self, world):
        _, _, cluster, (a, b, c) = world
        cluster.fail("c1")
        doc = b.create({"S": "while c1 down"})
        replicator = next(iter(cluster.replicators.values()))
        assert replicator.backlog_size >= 1
        assert doc.unid in c and doc.unid not in a
        drained = cluster.restore("c1")
        assert drained >= 1
        assert doc.unid in a
        assert converged([a, b, c])

    def test_queued_delete_drains(self, world):
        _, _, cluster, (a, b, c) = world
        doc = a.create({"S": "to delete"})
        cluster.fail("c3")
        b.delete(doc.unid)
        cluster.restore("c3")
        assert doc.unid not in c
        assert converged([a, b, c])

    def test_edit_superseded_while_down_applies_latest(self, world):
        clock, _, cluster, (a, b, c) = world
        doc = a.create({"S": "v1"})
        cluster.fail("c1")
        clock.advance(1)
        b.update(doc.unid, {"S": "v2"})
        clock.advance(1)
        b.update(doc.unid, {"S": "v3"})
        cluster.restore("c1")
        assert a.get(doc.unid).get("S") == "v3"
