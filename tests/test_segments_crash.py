"""Crash injection for the segment stack: kill the engine at every write
point inside a checkpoint save — segment appends, merge folds, the meta
record, the commit itself — and prove recovery.

The discipline under test: a consumer's whole save (new segments + folds
+ meta) rides one engine transaction, so a crash anywhere inside it must
leave the *previous* checkpoint fully intact. On reopen the half-written
segment is invisible (the WAL never committed it), the old manifest
still loads, and one journal top-up brings the consumer to exactly the
state a from-scratch rebuild produces — with no orphaned segment keys
left in the engine.
"""

import json
import random

import pytest

from repro.core import NotesDatabase
from repro.fulltext import FullTextIndex
from repro.sim import VirtualClock
from repro.storage import MergePolicy, SINGLE_SEGMENT, SegmentStack, StorageEngine
from repro.views import SortOrder, View, ViewColumn

WORDS = ("budget", "meeting", "release", "replica", "schedule",
         "review", "forecast", "inventory", "proposal", "summary")

#: Fold-every-save exercises the merge write points on each checkpoint;
#: the default-ish policy exercises the append-only save.
POLICIES = [SINGLE_SEGMENT, MergePolicy(max_segments=8, max_dead_ratio=0.9)]


class CrashPoint(Exception):
    """Injected failure standing in for the process dying mid-write."""


def arm(engine, fail_at=None):
    """Count engine write calls; raise CrashPoint on the ``fail_at``-th.

    Wraps ``put``/``delete``/``commit`` — every point at which a
    checkpoint save touches the engine. With ``fail_at=None`` it only
    counts (used to enumerate the write points of a clean save).
    """
    counter = {"n": 0}

    def wrap(fn):
        def inner(*args, **kwargs):
            counter["n"] += 1
            if fail_at is not None and counter["n"] == fail_at:
                raise CrashPoint(f"write point {fail_at}")
            return fn(*args, **kwargs)
        return inner

    engine.put = wrap(engine.put)
    engine.delete = wrap(engine.delete)
    engine.commit = wrap(engine.commit)
    return counter


def make_view(db, policy):
    return View(
        db, "Crash",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
        persist=True, merge_policy=policy,
    )


def build_scenario(path, policy, checkpoint_first=True):
    """Deterministic world: seed docs, optionally checkpoint, then a
    delta batch — leaving a save pending that appends and (under
    SINGLE_SEGMENT) folds."""
    engine = StorageEngine(path)
    db = NotesDatabase("crash.nsf", clock=VirtualClock(),
                       rng=random.Random(5), engine=engine)
    rng = random.Random(17)
    for index in range(20):
        db.clock.advance(0.1)
        db.create({
            "Form": rng.choice(["Memo", "Memo", "Memo", "Task"]),
            "Subject": f"{rng.choice(WORDS)} {index}",
            "Body": " ".join(rng.choice(WORDS) for _ in range(6)),
            "Amount": rng.randrange(100),
        })
    view = make_view(db, policy)
    index = FullTextIndex(db, persist=True, merge_policy=policy)
    if checkpoint_first:
        view.save_index()
        index.save_checkpoint()
    for _ in range(12):
        db.clock.advance(0.1)
        roll = rng.random()
        unids = db.unids()
        if roll < 0.4:
            db.create({
                "Form": "Memo",
                "Subject": f"{rng.choice(WORDS)} delta",
                "Body": " ".join(rng.choice(WORDS) for _ in range(6)),
                "Amount": rng.randrange(100),
            })
        elif roll < 0.8:
            db.update(rng.choice(unids), {
                "Subject": f"{rng.choice(WORDS)} edited",
                "Amount": rng.randrange(100),
            })
        else:
            db.delete(rng.choice(unids))
    return engine, db, view, index


def view_state(view):
    return [(entry.unid, entry.values) for entry in view.entries()]


def count_write_points(tmp_path, policy, checkpoint_first=True):
    """How many engine writes one clean save of both consumers makes."""
    engine, db, view, index = build_scenario(
        str(tmp_path / "count"), policy, checkpoint_first
    )
    counter = arm(engine)
    view.save_index()
    index.save_checkpoint()
    total = counter["n"]
    if policy is SINGLE_SEGMENT and checkpoint_first:
        # Sanity: the save being attacked really does fold — both
        # consumers appended a second segment and merged it away.
        assert view.catch_up.merges > 0
        assert index.catch_up.merges > 0
    engine.close()
    return total


def assert_no_orphan_segment_keys(engine, view_name="Crash"):
    """Every viewidx:/ftidx: key must be named by a committed manifest."""
    expected = set()
    for meta_key, namespaces in (
        (b"viewidx:" + view_name.encode(),
         {"index": b"viewidx:" + view_name.encode()}),
        (b"ftidx:meta", {"terms": b"ftidx:terms", "docs": b"ftidx:docs"}),
    ):
        raw = engine.get(meta_key)
        if raw is None:
            continue
        expected.add(meta_key)
        meta = json.loads(raw.decode())
        for field, namespace in namespaces.items():
            for seg_id in meta.get(field, {}).get("segments", ()):
                expected.add(namespace + b":dir:" + str(seg_id).encode())
                expected.add(namespace + b":blob:" + str(seg_id).encode())
    actual = {
        key for key in engine.keys()
        if key.startswith(b"viewidx:") or key.startswith(b"ftidx:")
    }
    assert actual == expected


def crash_and_verify(tmp_path, policy, fail_at, checkpoint_first=True):
    path = str(tmp_path / f"crash{fail_at}")
    engine, db, view, index = build_scenario(path, policy, checkpoint_first)
    arm(engine, fail_at=fail_at)
    with pytest.raises(CrashPoint):
        view.save_index()
        index.save_checkpoint()
    engine.simulate_crash()

    recovered = StorageEngine(path)
    db = NotesDatabase("crash.nsf", clock=VirtualClock(),
                       rng=random.Random(99), engine=recovered)
    assert_no_orphan_segment_keys(recovered)
    warm_view = make_view(db, policy)
    warm_index = FullTextIndex(db, persist=True, merge_policy=policy)
    if checkpoint_first:
        # The pre-crash checkpoint survived whole: no rebuild, at most
        # one journal top-up covers whatever the torn save was writing.
        assert warm_view.loaded_from_disk
        assert warm_view.rebuilds == 0
        assert warm_view.catch_up.topups <= 1
        assert warm_index.loaded_from_disk
        assert warm_index.rebuilds == 0
        assert warm_index.catch_up.topups <= 1
    cold_view = View(
        db, "Cold", selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
        persist=False, journal=False,
    )
    cold_index = FullTextIndex(db)
    assert view_state(warm_view) == view_state(cold_view)
    assert warm_index.document_count == cold_index.document_count
    assert warm_index.postings_snapshot() == cold_index.postings_snapshot()
    # The recovered state checkpoints cleanly and reads back whole.
    warm_view.save_index()
    warm_index.save_checkpoint()
    assert_no_orphan_segment_keys(recovered)
    warm_index.close()
    cold_index.close()
    recovered.close()


class TestCrashEveryWritePoint:
    @pytest.mark.parametrize("policy", POLICIES, ids=["fold", "append"])
    def test_incremental_save_survives_any_torn_write(self, tmp_path, policy):
        """Kill the engine at write point 1, 2, … n of a delta save
        (segment dir, segment blob, fold deletes, fold writes, meta,
        commit) — every prefix recovers to the rebuild state."""
        total = count_write_points(tmp_path, policy)
        assert total >= 8  # dirs + blobs + meta + commits at minimum
        for fail_at in range(1, total + 1):
            crash_and_verify(tmp_path, policy, fail_at)

    def test_initial_save_survives_any_torn_write(self, tmp_path):
        """Crash during the very first checkpoint: no meta commits, so
        reopen sees no checkpoint at all and rebuilds cleanly."""
        total = count_write_points(
            tmp_path, SINGLE_SEGMENT, checkpoint_first=False
        )
        for fail_at in range(1, total + 1, 3):
            crash_and_verify(
                tmp_path, SINGLE_SEGMENT, fail_at, checkpoint_first=False
            )


class TestManifestIntegrity:
    def test_load_refuses_manifest_with_missing_segment(self, tmp_path):
        """A manifest that names a vanished segment is never trusted —
        the consumer falls back to rebuild instead of reading a hole."""
        engine = StorageEngine(str(tmp_path / "missing"))
        stack = SegmentStack(engine, b"t")
        txn = engine.begin()
        stack.append(txn, {"a": 1, "b": 2})
        engine.commit(txn)
        manifest = stack.manifest()
        engine.remove(b"t:dir:1")
        fresh = SegmentStack(engine, b"t")
        assert not fresh.load(manifest)
        assert fresh.live_count() == 0
        engine.close()

    def test_uncommitted_segment_invisible_after_crash(self, tmp_path):
        """A segment written but never committed does not exist: the
        engine's WAL drops it, and the old manifest still loads."""
        path = str(tmp_path / "torn")
        engine = StorageEngine(path)
        stack = SegmentStack(engine, b"t")
        txn = engine.begin()
        stack.append(txn, {"a": 1})
        engine.commit(txn)
        committed = stack.manifest()
        txn = engine.begin()
        stack.append(txn, {"b": 2})  # dir + blob buffered, never committed
        engine.simulate_crash()

        recovered = StorageEngine(path)
        assert recovered.get(b"t:dir:2") is None
        assert recovered.get(b"t:blob:2") is None
        fresh = SegmentStack(recovered, b"t")
        assert fresh.load(committed)
        assert dict(fresh.live_items()) == {"a": 1}
        recovered.close()
