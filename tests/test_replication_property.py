"""Property-based convergence tests: the headline replication guarantee.

Whatever interleaving of creates/updates/deletes happens on N replicas,
enough rounds of pairwise replication make all replicas identical, and no
committed update is silently lost under the conflict-document policy (every
losing revision survives as a conflict note).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runners import build_deployment
from repro.replication import (
    ConflictPolicy,
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    converged,
)

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # replica index
        st.sampled_from(["create", "update", "delete"]),
        st.integers(min_value=0, max_value=10_000),  # payload / victim pick
    ),
    min_size=1,
    max_size=40,
)


def apply_ops(databases, clock, ops):
    for replica_index, op, payload in ops:
        db = databases[replica_index % len(databases)]
        clock.advance(1)
        unids = db.unids()
        if op == "create" or not unids:
            db.create({"S": f"v{payload}", "N": payload},
                      author=f"u{replica_index}")
        elif op == "update":
            db.update(unids[payload % len(unids)], {"S": f"e{payload}"},
                      author=f"u{replica_index}")
        else:
            db.delete(unids[payload % len(unids)], author=f"u{replica_index}")


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_mesh_replication_always_converges(ops):
    deployment = build_deployment(3, seed=99)
    apply_ops(deployment.databases, deployment.clock, ops)
    topology = ReplicationTopology.mesh(["srv0", "srv1", "srv2"])
    scheduler = ReplicationScheduler(deployment.network, topology)
    scheduler.rounds_to_convergence(deployment.databases, max_rounds=16)
    assert converged(deployment.databases)


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_ring_replication_always_converges(ops):
    deployment = build_deployment(3, seed=7)
    apply_ops(deployment.databases, deployment.clock, ops)
    topology = ReplicationTopology.ring(["srv0", "srv1", "srv2"])
    scheduler = ReplicationScheduler(deployment.network, topology)
    scheduler.rounds_to_convergence(deployment.databases, max_rounds=16)
    assert converged(deployment.databases)


@given(
    edits=st.lists(
        st.tuples(st.integers(0, 1), st.text("ab", min_size=1, max_size=3)),
        min_size=2,
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_no_update_is_silently_lost_with_conflict_docs(edits):
    """Every edited value survives somewhere: as the winner or inside a
    conflict document."""
    deployment = build_deployment(2, seed=13)
    a, b = deployment.databases
    clock = deployment.clock
    doc = a.create({"S": "base"})
    clock.advance(1)
    rep = Replicator(conflict_policy=ConflictPolicy.CONFLICT_DOC)
    rep.replicate(a, b)
    final_values = {}
    for replica_index, value in edits:
        db = (a, b)[replica_index]
        clock.advance(1)
        db.update(doc.unid, {"S": value}, author=f"u{replica_index}")
        final_values[replica_index] = value
    clock.advance(1)
    for _ in range(4):
        clock.advance(1)
        rep.replicate(a, b)
    assert converged([a, b])
    surviving = {d.get("S") for d in a.all_documents()}
    # The last edit on each replica must survive (earlier same-replica edits
    # are legitimately superseded by their own successors).
    for value in final_values.values():
        assert value in surviving


@given(
    seed=st.integers(0, 2**16),
    partitions=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.booleans()),
        max_size=12,
    ),
)
@settings(max_examples=25, deadline=None)
def test_partition_chaos_then_heal_converges(seed, partitions):
    """Random link cuts/heals between rounds never prevent eventual
    convergence once all links heal."""
    deployment = build_deployment(3, seed=seed)
    rng = random.Random(seed)
    databases = deployment.databases
    clock = deployment.clock
    names = ["srv0", "srv1", "srv2"]
    topology = ReplicationTopology.mesh(names)
    scheduler = ReplicationScheduler(deployment.network, topology)
    flips = list(partitions)
    for step in range(10):
        db = rng.choice(databases)
        clock.advance(1)
        db.create({"S": f"step {step}"})
        if flips:
            a, b, cut = flips.pop()
            if a != b:
                deployment.network.partition(names[a], names[b],
                                             partitioned=cut)
        clock.advance(1)
        scheduler.run_round()  # partitioned edges are skipped silently
    # heal everything and run to convergence
    for i in range(3):
        for j in range(i + 1, 3):
            deployment.network.partition(names[i], names[j], partitioned=False)
    scheduler.rounds_to_convergence(databases, max_rounds=16)
    assert converged(databases)
    assert all(len(db) == 10 for db in databases)


@given(
    edits=st.lists(
        st.tuples(
            st.sampled_from(["A", "B", "C", "D"]),  # which item
            st.text("xyz", min_size=1, max_size=4),  # new value
        ),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=40, deadline=None)
def test_field_level_equals_whole_document_replication(edits):
    """Field-delta transfer must reach the exact state whole-document
    transfer reaches, for any edit sequence."""
    whole = build_deployment(2, seed=101)
    delta = build_deployment(2, seed=101)  # identical twin deployment

    def run(deployment, field_level):
        a, b = deployment.databases
        clock = deployment.clock
        doc = a.create({"A": "0", "B": "0", "C": "0", "D": "0"})
        clock.advance(1)
        rep = Replicator(field_level=field_level)
        rep.replicate(a, b)
        for item, value in edits:
            clock.advance(1)
            a.update(doc.unid, {item: value}, author="u")
            if len(value) == 1:  # occasionally replicate mid-stream
                clock.advance(1)
                rep.replicate(a, b)
        clock.advance(1)
        rep.replicate(a, b)
        assert converged([a, b])
        copy = b.get(doc.unid)
        return (
            copy.oid,
            sorted((name, str(copy.get(name))) for name in copy.item_names),
        )

    assert run(whole, False) == run(delta, True)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_random_workload_with_deletes_converges(seed):
    deployment = build_deployment(3, seed=seed)
    rng = random.Random(seed)
    databases = deployment.databases
    clock = deployment.clock
    for _ in range(30):
        db = rng.choice(databases)
        clock.advance(1)
        roll = rng.random()
        unids = db.unids()
        if roll < 0.5 or not unids:
            db.create({"S": str(rng.random())})
        elif roll < 0.8:
            db.update(rng.choice(unids), {"S": str(rng.random())})
        else:
            db.delete(rng.choice(unids))
    topology = ReplicationTopology.hub_spoke("srv0", ["srv1", "srv2"])
    scheduler = ReplicationScheduler(deployment.network, topology)
    scheduler.rounds_to_convergence(databases, max_rounds=16)
    assert converged(databases)
