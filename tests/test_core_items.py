"""Tests for typed items."""

import pytest

from repro.core import Item, ItemType
from repro.core.items import infer_type
from repro.errors import ItemError


class TestInference:
    def test_text(self):
        assert infer_type("hello") == ItemType.TEXT

    def test_number(self):
        assert infer_type(42) == ItemType.NUMBER
        assert infer_type(3.14) == ItemType.NUMBER

    def test_text_list(self):
        assert infer_type(["a", "b"]) == ItemType.TEXT_LIST

    def test_number_list(self):
        assert infer_type([1, 2.5]) == ItemType.NUMBER_LIST

    def test_empty_list_is_text_list(self):
        assert infer_type([]) == ItemType.TEXT_LIST

    def test_bool_rejected(self):
        with pytest.raises(ItemError):
            infer_type(True)

    def test_mixed_list_rejected(self):
        with pytest.raises(ItemError):
            infer_type(["a", 1])

    def test_unsupported_rejected(self):
        with pytest.raises(ItemError):
            infer_type({"a": 1})


class TestItem:
    def test_of_infers(self):
        item = Item.of("Subject", "hi")
        assert item.type == ItemType.TEXT and item.value == "hi"

    def test_explicit_type(self):
        item = Item.of("People", ["a/Acme"], ItemType.READERS)
        assert item.type == ItemType.READERS

    def test_type_mismatch_rejected(self):
        with pytest.raises(ItemError):
            Item("Num", ItemType.NUMBER, "not a number")

    def test_readers_must_be_string_list(self):
        with pytest.raises(ItemError):
            Item("R", ItemType.READERS, [1, 2])

    def test_empty_name_rejected(self):
        with pytest.raises(ItemError):
            Item("", ItemType.TEXT, "x")

    def test_tuple_normalised_to_list(self):
        item = Item("L", ItemType.TEXT_LIST, ("a", "b"))
        assert item.value == ["a", "b"]

    def test_as_list_wraps_scalar(self):
        assert Item.of("N", 5).as_list() == [5]
        assert Item.of("L", ["x"]).as_list() == ["x"]

    def test_as_list_copies(self):
        item = Item.of("L", ["x"])
        copy = item.as_list()
        copy.append("y")
        assert item.value == ["x"]

    def test_dict_roundtrip(self):
        for value, type_ in [
            ("text", None),
            (5, None),
            ([1, 2], None),
            (["a/Acme"], ItemType.AUTHORS),
            (99.5, ItemType.DATETIME),
            ("big body", ItemType.RICH_TEXT),
        ]:
            item = Item.of("X", value, type_)
            assert Item.from_dict("X", item.to_dict()) == item

    def test_datetime_holds_number(self):
        item = Item("When", ItemType.DATETIME, 86400.0)
        assert item.value == 86400.0

    def test_name_type_flag(self):
        assert ItemType.READERS.is_name_type
        assert ItemType.AUTHORS.is_name_type
        assert ItemType.NAMES.is_name_type
        assert not ItemType.TEXT.is_name_type
