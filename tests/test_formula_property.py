"""Property-based formula tests: algebraic identities the evaluator must
satisfy under Notes list semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document
from repro.formula import compile_formula

numbers = st.integers(min_value=-10_000, max_value=10_000)
number_lists = st.lists(numbers, min_size=1, max_size=6)
texts = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    max_size=12,
)


def lit(values):
    return ":".join(str(v) for v in values)


@given(a=number_lists, b=number_lists)
def test_addition_commutes(a, b):
    left = compile_formula(f"({lit(a)}) + ({lit(b)})").evaluate()
    right = compile_formula(f"({lit(b)}) + ({lit(a)})").evaluate()
    assert left == right


@given(a=number_lists)
def test_double_negation_is_identity(a):
    assert compile_formula(f"-(-({lit(a)}))").evaluate() == a


@given(a=number_lists)
def test_sum_matches_python(a):
    assert compile_formula(f"@Sum({lit(a)})").evaluate() == [sum(a)]


@given(a=number_lists)
def test_min_max_bound_every_element(a):
    low = compile_formula(f"@Min({lit(a)})").evaluate()[0]
    high = compile_formula(f"@Max({lit(a)})").evaluate()[0]
    assert low == min(a) and high == max(a)


@given(a=number_lists)
def test_sort_is_idempotent_and_ordered(a):
    once = compile_formula(f"@Sort({lit(a)})").evaluate()
    twice = compile_formula(
        f"@Sort(@Sort({lit(a)}))"
    ).evaluate()
    assert once == sorted(a)
    assert once == twice


@given(a=number_lists)
def test_elements_counts(a):
    assert compile_formula(f"@Elements({lit(a)})").evaluate() == [len(a)]


@given(a=number_lists, n=st.integers(min_value=1, max_value=6))
def test_subset_prefix(a, n):
    result = compile_formula(f"@Subset({lit(a)}; {n})").evaluate()
    assert result == a[:n]


@given(value=texts)
def test_case_functions_roundtrip(value):
    source = f'@LowerCase(@UpperCase("{value}"))'
    assert compile_formula(source).evaluate() == [value.upper().lower()]


@given(value=texts, n=st.integers(min_value=0, max_value=12))
def test_left_right_partition(value, n):
    left = compile_formula(f'@Left("{value}"; {n})').evaluate()[0]
    right = compile_formula(f'@Right("{value}"; {len(value) - n})').evaluate()[0]
    if n <= len(value):
        assert left + right == value


@given(a=number_lists, b=number_lists)
def test_equality_is_any_pair(a, b):
    result = compile_formula(f"({lit(a)}) = ({lit(b)})").evaluate()
    expected = 1 if set(a) & set(b) else 0
    assert result == [expected]


@given(x=numbers, y=numbers)
def test_if_picks_correct_branch(x, y):
    source = f"@If({x} > {y}; \"gt\"; {x} = {y}; \"eq\"; \"lt\")"
    expected = "gt" if x > y else ("eq" if x == y else "lt")
    assert compile_formula(source).evaluate() == [expected]


@given(value=number_lists)
def test_field_read_equals_literal(value):
    doc = Document("A" * 32)
    doc.set("Payload", value)
    assert compile_formula("Payload").evaluate(doc) == value
    assert compile_formula("@Sum(Payload)").evaluate(doc) == [sum(value)]


@given(value=texts)
def test_selection_consistency(value):
    """A doc selected by `Subject = literal` matches exactly when equal
    (case-insensitively), regardless of content."""
    doc = Document("B" * 32)
    doc.set("Subject", value)
    formula = compile_formula(f'SELECT Subject = "{value}"')
    assert formula.select(doc) is True
