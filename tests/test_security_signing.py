"""Tests for signing and sealing."""

import pytest

from repro.core import Document, ItemType
from repro.errors import SecurityError
from repro.security import (
    IdVault,
    seal_items,
    sign_document,
    unseal_items,
    verify_document,
)
from repro.security.sealing import sealed_item_names


@pytest.fixture
def vault():
    vault = IdVault()
    vault.register("alice/Acme")
    vault.register("bob/Acme")
    return vault


@pytest.fixture
def doc():
    document = Document("S" * 32)
    document.set_all({"Subject": "contract", "Amount": 1000})
    return document


class TestSigning:
    def test_sign_verify_roundtrip(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        assert verify_document(doc, vault)
        assert doc.get("$Signer") == "alice/Acme"

    def test_item_tamper_detected(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        doc.set("Amount", 9_999_999)
        assert not verify_document(doc, vault)

    def test_added_item_detected(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        doc.set("Sneaky", "addition")
        assert not verify_document(doc, vault)

    def test_signer_spoof_detected(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        doc.set("$Signer", "bob/Acme")
        assert not verify_document(doc, vault)

    def test_unsigned_fails_verification(self, doc, vault):
        assert not verify_document(doc, vault)

    def test_unregistered_signer_fails(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        doc.set("$Signer", "stranger/Evil")
        assert not verify_document(doc, vault)

    def test_unknown_user_cannot_sign(self, doc, vault):
        with pytest.raises(SecurityError):
            sign_document(doc, "ghost/Acme", vault)

    def test_resigning_after_edit_is_valid(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        doc.set("Amount", 2000)
        sign_document(doc, "bob/Acme", vault)
        assert verify_document(doc, vault)
        assert doc.get("$Signer") == "bob/Acme"

    def test_signature_survives_serialization(self, doc, vault):
        sign_document(doc, "alice/Acme", vault)
        clone = Document.from_dict(doc.to_dict())
        assert verify_document(clone, vault)


class TestSealing:
    def test_seal_hides_value(self, doc):
        seal_items(doc, ["Amount"], key="k1")
        assert doc.get("Amount") is None
        assert sealed_item_names(doc) == ["Amount"]

    def test_unseal_restores_value_and_type(self, doc):
        doc.set("Tags", ["a", "b"], ItemType.TEXT_LIST)
        seal_items(doc, ["Amount", "Tags"], key="k1")
        restored = unseal_items(doc, "k1")
        assert set(restored) == {"Amount", "Tags"}
        assert doc.get("Amount") == 1000
        assert doc.item("Tags").type == ItemType.TEXT_LIST

    def test_wrong_key_rejected(self, doc):
        seal_items(doc, ["Amount"], key="right")
        with pytest.raises(SecurityError):
            unseal_items(doc, "wrong")
        assert doc.get("Amount") is None  # still sealed

    def test_seal_missing_item_rejected(self, doc):
        with pytest.raises(SecurityError):
            seal_items(doc, ["Ghost"], key="k")

    def test_unseal_unsealed_rejected(self, doc):
        with pytest.raises(SecurityError):
            unseal_items(doc, "k", names=["Subject"])

    def test_sealed_items_replicate_opaquely(self, pair, clock):
        from repro.replication import Replicator

        a, b = pair
        doc = a.create({"Secret": "payroll data", "Public": "memo"})
        seal_items(a.get(doc.unid), ["Secret"], key="hr-key")
        clock.advance(1)
        Replicator().replicate(a, b)
        remote = b.get(doc.unid)
        assert remote.get("Secret") is None
        assert remote.get("Public") == "memo"
        unseal_items(remote, "hr-key")
        assert remote.get("Secret") == "payroll data"

    def test_ciphertext_differs_from_plaintext(self, doc):
        seal_items(doc, ["Subject"], key="k")
        cipher = doc.get("$Sealed.Subject")
        assert "contract" not in cipher
