"""Tests for view columns and collation."""

import pytest

from repro.core import Document
from repro.errors import ViewError
from repro.views import SortOrder, ViewColumn, collate
from repro.views.column import Descending


@pytest.fixture
def doc():
    document = Document("A" * 32)
    document.set_all({"Subject": "Plan", "Amount": 7, "Tags": ["x", "y"]})
    return document


class TestCollation:
    def test_numbers_before_text(self):
        assert collate(5) < collate("5")

    def test_text_case_insensitive_primary(self):
        assert collate("Apple") < collate("banana")
        assert collate("apple") != collate("Apple")  # tie-break keeps both

    def test_missing_sorts_first(self):
        assert collate(None) < collate(0)
        assert collate(None) < collate("")

    def test_list_collates_on_first_element(self):
        assert collate(["b", "a"]) == collate("b")
        assert collate([]) == collate("")

    def test_uncollatable_rejected(self):
        with pytest.raises(ViewError):
            collate({"not": "ok"})

    def test_descending_wrapper_inverts(self):
        assert Descending(collate(1)) > Descending(collate(2))
        assert Descending(collate("a")) > Descending(collate("b"))
        assert Descending(collate(1)) == Descending(collate(1))


class TestViewColumn:
    def test_item_column(self, doc):
        column = ViewColumn(title="Subject", item="Subject")
        assert column.value_for(doc) == "Plan"

    def test_formula_column(self, doc):
        column = ViewColumn(title="Double", formula="Amount * 2")
        assert column.value_for(doc) == 14

    def test_formula_column_multi_value(self, doc):
        column = ViewColumn(title="Tags", formula="Tags")
        assert column.value_for(doc) == ["x", "y"]

    def test_item_or_formula_required(self):
        with pytest.raises(ViewError):
            ViewColumn(title="Broken")
        with pytest.raises(ViewError):
            ViewColumn(title="Both", item="A", formula="B")

    def test_categorized_implies_sorted(self):
        column = ViewColumn(title="Cat", item="C", categorized=True)
        assert column.sort == SortOrder.ASCENDING

    def test_key_component_none_when_unsorted(self, doc):
        column = ViewColumn(title="S", item="Subject")
        assert column.key_component("x") is None

    def test_key_component_descending_wrapped(self, doc):
        column = ViewColumn(title="S", item="Subject", sort=SortOrder.DESCENDING)
        assert isinstance(column.key_component("x"), Descending)
