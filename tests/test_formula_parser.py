"""Tests for the formula parser (precedence, statements, errors)."""

import pytest

from repro.errors import FormulaSyntaxError
from repro.formula import parse
from repro.formula.nodes import (
    Assign,
    BinaryOp,
    Default,
    FieldAssign,
    FieldRef,
    FuncCall,
    ListExpr,
    Literal,
    Select,
    UnaryOp,
)


class TestPrecedence:
    def test_mul_over_add(self):
        (expr,) = parse("1 + 2 * 3").statements
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_list_over_mul(self):
        (expr,) = parse("1:2 * 3").statements
        assert expr.op == "*"
        assert isinstance(expr.left, ListExpr)

    def test_comparison_over_and(self):
        (expr,) = parse("a = 1 & b = 2").statements
        assert expr.op == "&"
        assert expr.left.op == "=" and expr.right.op == "="

    def test_and_over_or(self):
        (expr,) = parse("a | b & c").statements
        assert expr.op == "|"
        assert expr.right.op == "&"

    def test_parentheses_override(self):
        (expr,) = parse("(1 + 2) * 3").statements
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_binds_tightest(self):
        (expr,) = parse("!a & b").statements
        assert expr.op == "&"
        assert isinstance(expr.left, UnaryOp)

    def test_diamond_is_not_equal(self):
        (expr,) = parse("a <> b").statements
        assert expr.op == "!="


class TestStatements:
    def test_select(self):
        (stmt,) = parse('SELECT Form = "Memo"').statements
        assert isinstance(stmt, Select)

    def test_assignment(self):
        (stmt,) = parse("total := 1 + 2").statements
        assert isinstance(stmt, Assign) and stmt.name == "total"

    def test_field_assignment(self):
        (stmt,) = parse('FIELD Status := "done"').statements
        assert isinstance(stmt, FieldAssign) and stmt.name == "Status"

    def test_default(self):
        (stmt,) = parse('DEFAULT Color := "red"').statements
        assert isinstance(stmt, Default)

    def test_rem_dropped(self):
        statements = parse('REM "note to self"; 42').statements
        assert len(statements) == 1
        assert isinstance(statements[0], Literal)

    def test_multi_statement(self):
        statements = parse("x := 1; y := 2; x + y").statements
        assert len(statements) == 3

    def test_trailing_semicolon_ok(self):
        assert len(parse("1;").statements) == 1

    def test_empty_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse("")
        with pytest.raises(FormulaSyntaxError):
            parse('REM "only a comment"')


class TestFunctionCalls:
    def test_args_split_on_semicolon(self):
        (call,) = parse('@Left("abc"; 2)').statements
        assert isinstance(call, FuncCall)
        assert call.name == "@left" and len(call.args) == 2

    def test_no_arg_call(self):
        (call,) = parse("@All").statements
        assert call.args == ()

    def test_empty_parens(self):
        (call,) = parse("@Now()").statements
        assert call.args == ()

    def test_nested_calls(self):
        (call,) = parse("@Sum(@Min(1; 2); @Max(3; 4))").statements
        assert all(isinstance(arg, FuncCall) for arg in call.args)

    def test_statement_semicolons_not_confused_with_args(self):
        statements = parse("@Sum(1; 2); @Max(3; 4)").statements
        assert len(statements) == 2

    def test_missing_rparen_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse("@Sum(1; 2")

    def test_dangling_operator_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse("1 +")

    def test_field_ref(self):
        (expr,) = parse("Subject").statements
        assert isinstance(expr, FieldRef) and expr.name == "Subject"
