"""Tests for the database catalog task."""

import random

import pytest

from repro.core import NotesDatabase
from repro.replication import SimulatedNetwork
from repro.sim import VirtualClock
from repro.tools import replicas_of, update_catalog


@pytest.fixture
def world():
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    for name in ("s1", "s2"):
        network.add_server(name)
    db = NotesDatabase("app.nsf", clock=clock, rng=random.Random(1),
                       server="s1")
    network.server("s1").add_database(db)
    replica = db.new_replica("s2")
    network.server("s2").add_database(replica)
    other = NotesDatabase("other.nsf", clock=clock, rng=random.Random(2),
                          server="s1")
    network.server("s1").add_database(other)
    catalog = NotesDatabase("catalog.nsf", clock=clock,
                            rng=random.Random(3), server="s1")
    return clock, network, db, replica, other, catalog


class TestCatalog:
    def test_one_entry_per_replica(self, world):
        clock, network, db, replica, other, catalog = world
        count = update_catalog(catalog, network)
        assert count == 3  # app on s1, app on s2, other on s1

    def test_entry_contents(self, world):
        clock, network, db, replica, other, catalog = world
        db.create({"Subject": "x"})
        update_catalog(catalog, network)
        entry = next(
            doc for doc in catalog.all_documents()
            if doc.get("ReplicaId") == db.replica_id and doc.get("Server") == "s1"
        )
        assert entry.get("Title") == "app.nsf"
        assert entry.get("Documents") == 1
        assert entry.get("SizeBytes") > 0

    def test_refresh_updates_in_place(self, world):
        clock, network, db, replica, other, catalog = world
        update_catalog(catalog, network)
        before = len(catalog)
        db.create({"Subject": "more"})
        clock.advance(1)
        update_catalog(catalog, network)
        assert len(catalog) == before  # updated, not duplicated
        entry = next(
            doc for doc in catalog.all_documents()
            if doc.get("ReplicaId") == db.replica_id and doc.get("Server") == "s1"
        )
        assert entry.get("Documents") == 1

    def test_vanished_database_removed(self, world):
        clock, network, db, replica, other, catalog = world
        update_catalog(catalog, network)
        del network.server("s1").databases[other.replica_id]
        update_catalog(catalog, network)
        titles = [doc.get("Title") for doc in catalog.all_documents()]
        assert "other.nsf" not in titles

    def test_replicas_of(self, world):
        clock, network, db, replica, other, catalog = world
        update_catalog(catalog, network)
        assert replicas_of(catalog, db.replica_id) == ["s1", "s2"]
        assert replicas_of(catalog, other.replica_id) == ["s1"]
        assert replicas_of(catalog, "F" * 16) == []

    def test_catalog_is_viewable(self, world):
        from repro.views import SortOrder, View, ViewColumn

        clock, network, db, replica, other, catalog = world
        update_catalog(catalog, network)
        view = View(
            catalog, "ByServer",
            selection='SELECT Form = "Database"',
            columns=[
                ViewColumn(title="Server", item="Server", categorized=True),
                ViewColumn(title="Title", item="Title",
                           sort=SortOrder.ASCENDING),
            ],
        )
        assert len(view) == 3
