"""Crash-recovery tests: the WAL discipline actually holds."""

import pytest

from repro.storage import StorageEngine


def reopen(tmp_path, name="db", **kw):
    return StorageEngine(str(tmp_path / name), **kw)


class TestCrashRecovery:
    def test_committed_survive_crash(self, tmp_path):
        engine = reopen(tmp_path)
        engine.set(b"a", b"1")
        engine.set(b"b", b"2")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.get(b"a") == b"1"
        assert recovered.get(b"b") == b"2"
        recovered.close()

    def test_uncommitted_lost_on_crash(self, tmp_path):
        engine = reopen(tmp_path)
        engine.set(b"keep", b"yes")
        txn = engine.begin()
        engine.put(txn, b"lose", b"no")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.get(b"keep") == b"yes"
        assert recovered.get(b"lose") is None
        recovered.close()

    def test_aborted_txn_not_replayed(self, tmp_path):
        engine = reopen(tmp_path)
        txn = engine.begin()
        engine.put(txn, b"k", b"v")
        engine.abort(txn)
        engine.set(b"other", b"x")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.get(b"k") is None
        assert recovered.get(b"other") == b"x"
        recovered.close()

    def test_delete_survives_crash(self, tmp_path):
        engine = reopen(tmp_path)
        engine.set(b"k", b"v")
        engine.remove(b"k")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.get(b"k") is None
        recovered.close()

    def test_recovery_report_counts(self, tmp_path):
        engine = reopen(tmp_path)
        engine.set(b"a", b"1")
        engine.set(b"b", b"2")
        engine.remove(b"a")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        report = recovered.last_recovery
        assert report.committed_txns == 3
        assert report.puts_replayed == 2
        assert report.deletes_replayed == 1
        recovered.close()

    def test_loser_transaction_reported_and_ignored(self, tmp_path):
        """A flushed-but-uncommitted transaction is a 'loser': analysis
        reports it and redo skips its operations."""
        engine = reopen(tmp_path)
        engine.set(b"winner", b"w")
        txn = engine.begin()
        engine.put(txn, b"loser-key", b"l")
        engine._wal.flush()  # records hit disk, COMMIT never does
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        report = recovered.last_recovery
        assert report.losers == 1
        assert report.loser_txn_ids == [txn.txn_id]
        assert recovered.get(b"loser-key") is None
        assert recovered.get(b"winner") == b"w"
        recovered.close()

    def test_checkpoint_truncates_log(self, tmp_path):
        engine = reopen(tmp_path)
        for index in range(20):
            engine.set(f"k{index}".encode(), b"v")
        engine.checkpoint()
        assert engine._wal.end_lsn == 0
        engine.set(b"after", b"chk")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.last_recovery.records_scanned <= 3  # only post-ckpt
        assert recovered.get(b"k7") == b"v"
        assert recovered.get(b"after") == b"chk"
        recovered.close()

    def test_multiple_crash_cycles(self, tmp_path):
        expected = {}
        for cycle in range(5):
            engine = reopen(tmp_path)
            for key, value in expected.items():
                assert engine.get(key) == value, f"cycle {cycle}"
            key = f"cycle-{cycle}".encode()
            engine.set(key, str(cycle).encode() * 10)
            expected[key] = str(cycle).encode() * 10
            if cycle % 2 == 0:
                engine.checkpoint()
            engine.simulate_crash()
        final = reopen(tmp_path)
        for key, value in expected.items():
            assert final.get(key) == value
        final.close()

    def test_update_before_crash_keeps_latest(self, tmp_path):
        engine = reopen(tmp_path)
        engine.set(b"k", b"old")
        engine.checkpoint()
        engine.set(b"k", b"new")
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.get(b"k") == b"new"
        recovered.close()

    def test_large_value_recovery(self, tmp_path):
        blob = b"\x42" * 30_000
        engine = reopen(tmp_path)
        engine.set(b"blob", blob)
        engine.simulate_crash()
        recovered = reopen(tmp_path)
        assert recovered.get(b"blob") == blob
        recovered.close()

    def test_clean_close_then_open_has_no_log_work(self, tmp_path):
        engine = reopen(tmp_path)
        engine.set(b"k", b"v")
        engine.close()
        recovered = reopen(tmp_path)
        assert recovered.last_recovery.records_scanned == 0
        assert recovered.get(b"k") == b"v"
        recovered.close()
