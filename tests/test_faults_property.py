"""Chaos properties: convergence and determinism under injected faults.

Hypothesis draws a fault-plan seed, per-link fault rates, a crash
schedule and a random edit workload; scheduled replication then runs
through the fault phase, the plan is healed, and the replicas must
converge with no document lost. A falsifying run prints the drawn seed
and rates, which replay the exact fault schedule (``FaultPlan`` draws
everything from SHA-256-derived RNGs).

Each property runs twice: a reduced-example fast lane in the default
job, and a ``slow``-marked lane with the full example budget
(``pytest -m slow``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runners import build_deployment
from repro.replication import ReplicationScheduler, ReplicationTopology, converged
from repro.sim import FaultPlan, LinkFaultProfile

SERVERS = ["srv0", "srv1", "srv2"]

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # replica index
        st.sampled_from(["create", "update", "delete"]),
        st.integers(min_value=0, max_value=10_000),  # payload / victim pick
    ),
    min_size=1,
    max_size=30,
)

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "drop": st.floats(min_value=0.0, max_value=0.5),
        "flap": st.floats(min_value=0.0, max_value=0.2),
        "abort": st.floats(min_value=0.0, max_value=0.4),
        "crashes": st.booleans(),
        "ops": operations,
    }
)


def apply_ops(databases, clock, ops):
    """Apply the drawn workload; returns (created, deleted) UNID sets."""
    created: set = set()
    deleted: set = set()
    for replica_index, op, payload in ops:
        db = databases[replica_index % len(databases)]
        clock.advance(1)
        unids = db.unids()
        if op == "create" or not unids:
            doc = db.create({"S": f"v{payload}", "N": payload},
                            author=f"u{replica_index}")
            created.add(doc.unid)
        elif op == "update":
            db.update(unids[payload % len(unids)], {"S": f"e{payload}"},
                      author=f"u{replica_index}")
        else:
            victim = unids[payload % len(unids)]
            db.delete(victim, author=f"u{replica_index}")
            deleted.add(victim)
    return created, deleted


def run_scenario(seed, drop, flap, abort, crashes, ops, fault_rounds=8):
    """One chaos run: workload -> faulty rounds -> heal -> convergence.

    Returns (deployment, scheduler, plan, created, deleted).
    """
    deployment = build_deployment(3, seed=1009)
    created, deleted = apply_ops(deployment.databases, deployment.clock, ops)
    plan = deployment.network.install_faults(FaultPlan(
        seed,
        deployment.clock,
        LinkFaultProfile(
            drop_probability=drop,
            flap_probability=flap,
            flap_duration=(1.0, 6.0),
            abort_probability=abort,
            abort_after=(1, 4),
        ),
    ))
    if crashes:
        horizon = deployment.clock.now + fault_rounds
        plan.schedule_crashes(SERVERS, horizon=horizon,
                              mean_interval=4.0, outage=(1.0, 3.0))
    topology = ReplicationTopology.mesh(SERVERS)
    scheduler = ReplicationScheduler(deployment.network, topology)
    for _ in range(fault_rounds):
        deployment.clock.advance(1.0)
        scheduler.run_round()
    # Heal: stop injecting and let every flap/crash window expire.
    plan.deactivate()
    deployment.clock.advance(1_000.0)
    scheduler.rounds_to_convergence(deployment.databases, max_rounds=64)
    return deployment, scheduler, plan, created, deleted


def check_convergence_and_no_loss(scn):
    deployment, scheduler, plan, created, deleted = run_scenario(**scn)
    assert converged(deployment.databases)
    survivors = {
        doc.unid for doc in deployment.databases[0].all_documents()
    }
    # Nothing created and never deleted may be lost; deleted documents
    # may only survive through the edited-past-the-deletion rule, never
    # reappear as duplicates (UNID keying makes duplication structural).
    assert created - deleted <= survivors
    # Whenever the plan actually killed an attempt (an armed abort may
    # never fire), the retry machinery must have seen the failure.
    if {event.kind for event in plan.trace} & {"drop", "flap", "abort"}:
        assert scheduler.total.edges_failed > 0


@given(scn=scenario)
@settings(max_examples=15, deadline=None)
def test_faulty_replication_converges_after_heal(scn):
    check_convergence_and_no_loss(scn)


@pytest.mark.slow
@given(scn=scenario)
@settings(max_examples=150, deadline=None)
def test_faulty_replication_converges_after_heal_full_budget(scn):
    check_convergence_and_no_loss(scn)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    ops=operations,
)
@settings(max_examples=10, deadline=None)
def test_identical_seed_replays_identical_run(seed, ops):
    """One FaultPlan seed => identical fault schedule, retry trace and
    final converged state, run for run."""
    outcomes = []
    for _ in range(2):
        deployment, scheduler, plan, _, _ = run_scenario(
            seed=seed, drop=0.35, flap=0.15, abort=0.3, crashes=True,
            ops=ops,
        )
        health = {
            edge: (h.state, h.attempts, h.successes, h.failures,
                   h.retries, h.skips, h.deferrals, h.probes)
            for edge, h in scheduler.edge_health.items()
        }
        outcomes.append((
            plan.trace,
            health,
            scheduler.total.edges_failed,
            scheduler.total.edges_retried,
            sorted(db.state_fingerprint() for db in deployment.databases),
        ))
    assert outcomes[0] == outcomes[1]
