"""Tests for design elements as notes and application refresh."""

import pytest

from repro.agents import Agent, AgentTrigger
from repro.design import Application, agent_to_items, view_to_items
from repro.design.elements import agent_from_doc, view_params_from_doc
from repro.errors import ViewError
from repro.replication import Replicator, converged
from repro.sim import EventScheduler
from repro.views import SortOrder, ViewColumn


@pytest.fixture
def app(db):
    return Application(db)


def people_columns():
    return [ViewColumn(title="Name", item="Name", sort=SortOrder.ASCENDING)]


class TestSerialization:
    def test_view_roundtrip(self, db, app):
        app.save_view("People", 'SELECT Form = "Person"', people_columns(),
                      hierarchical=True)
        design_doc = next(
            doc for doc in db.all_documents()
            if doc.get("Form") == "$DesignView"
        )
        params = view_params_from_doc(design_doc)
        assert params["name"] == "People"
        assert params["selection"] == 'SELECT Form = "Person"'
        assert params["hierarchical"] is True
        assert params["columns"][0].sort == SortOrder.ASCENDING

    def test_agent_roundtrip(self, db, app):
        original = Agent(name="stamp", trigger=AgentTrigger.ON_CREATE,
                         selection='SELECT Form = "X"',
                         formula='FIELD T := 1', scan="all")
        app.save_agent(original)
        design_doc = next(
            doc for doc in db.all_documents()
            if doc.get("Form") == "$DesignAgent"
        )
        rebuilt = agent_from_doc(design_doc)
        assert rebuilt.name == "stamp"
        assert rebuilt.trigger == AgentTrigger.ON_CREATE
        assert rebuilt.formula == 'FIELD T := 1'
        assert rebuilt.scan == "all"

    def test_python_agent_not_serializable(self):
        agent = Agent(name="py", action=lambda d, db: None)
        with pytest.raises(ViewError):
            agent_to_items(agent)

    def test_wrong_form_rejected(self, db):
        doc = db.create({"Form": "Memo"})
        with pytest.raises(ViewError):
            view_params_from_doc(doc)
        with pytest.raises(ViewError):
            agent_from_doc(doc)


class TestApplication:
    def test_save_view_is_live(self, db, app):
        app.save_view("People", 'SELECT Form = "Person"', people_columns())
        db.create({"Form": "Person", "Name": "zoe"})
        db.create({"Form": "Person", "Name": "ann"})
        assert [e.values[0] for e in app.view("People").entries()] == [
            "ann", "zoe",
        ]

    def test_design_notes_invisible_in_data_views(self, db, app):
        app.save_view("All", "SELECT @All", people_columns())
        db.create({"Form": "Person", "Name": "x"})
        assert len(app.view("All")) == 1

    def test_save_view_replaces(self, db, app):
        app.save_view("People", 'SELECT Form = "Person"', people_columns())
        db.create({"Form": "Person", "Name": "a"})
        db.create({"Form": "Person", "Name": "b"})
        app.save_view(
            "People", 'SELECT Form = "Person"',
            [ViewColumn(title="Name", item="Name", sort=SortOrder.DESCENDING)],
        )
        assert [e.values[0] for e in app.view("People").entries()] == ["b", "a"]
        # still exactly one design note for the view
        count = sum(
            1 for doc in db.all_documents()
            if doc.get("Form") == "$DesignView"
        )
        assert count == 1

    def test_unknown_view_rejected(self, app):
        with pytest.raises(ViewError):
            app.view("ghost")

    def test_saved_agent_fires(self, db, app):
        app.save_agent(Agent(name="greet", trigger=AgentTrigger.ON_CREATE,
                             selection='SELECT Form = "Person"',
                             formula='FIELD Greeted := 1'))
        doc = db.create({"Form": "Person", "Name": "x"})
        assert db.get(doc.unid).get("Greeted") == 1

    def test_scheduled_agent_needs_events(self, db):
        app = Application(db)
        with pytest.raises(ViewError):
            app.save_agent(Agent(name="cron", trigger=AgentTrigger.SCHEDULED,
                                 formula='FIELD X := 1', interval=5))

    def test_scheduled_agent_with_events(self, db, clock):
        events = EventScheduler(clock)
        app = Application(db, events=events)
        app.save_agent(Agent(name="cron", trigger=AgentTrigger.SCHEDULED,
                             formula='FIELD Ticked := 1', interval=5,
                             scan="all"))
        doc = db.create({"Subject": "x"})
        events.run_until(6)
        assert db.get(doc.unid).get("Ticked") == 1


class TestAclAsDesignNote:
    def test_save_acl_activates_locally(self, db):
        from repro.security import AccessControlList, AclLevel

        app = Application(db)
        acl = AccessControlList(default_level=AclLevel.READER,
                                groups={"Staff": ["bob/Acme"]})
        acl.add("alice/Acme", AclLevel.MANAGER, roles=["Admin"])
        acl.add("Staff", AclLevel.EDITOR)
        acl.add("designer", AclLevel.MANAGER)
        app.save_acl(acl)
        assert db.acl is not None
        assert db.acl.level_of("alice/Acme") == AclLevel.MANAGER
        assert db.acl.level_of("bob/Acme") == AclLevel.EDITOR
        assert db.acl.level_of("stranger") == AclLevel.READER
        assert db.acl.roles_of("alice/Acme") == {"Admin"}

    def test_acl_replicates_and_takes_effect(self, pair, clock):
        from repro.errors import AccessDenied
        from repro.security import AccessControlList, AclLevel

        a, b = pair
        app_a = Application(a)
        acl = AccessControlList(default_level=AclLevel.READER)
        acl.add("writer/Acme", AclLevel.EDITOR)
        acl.add("designer", AclLevel.MANAGER)
        app_a.save_acl(acl)
        clock.advance(1)
        Replicator().replicate(a, b)
        Application(b)  # opening the replica applies the replicated ACL
        assert b.acl is not None
        b.create({"S": "allowed"}, author="writer/Acme")
        with pytest.raises(AccessDenied):
            b.create({"S": "denied"}, author="reader/Acme")

    def test_acl_update_reaches_open_replica(self, pair, clock):
        from repro.security import AccessControlList, AclLevel

        a, b = pair
        app_a = Application(a)
        first = AccessControlList(default_level=AclLevel.READER)
        first.add("designer", AclLevel.MANAGER)
        app_a.save_acl(first)
        clock.advance(1)
        Replicator().replicate(a, b)
        app_b = Application(b)
        assert b.acl.level_of("x") == AclLevel.READER
        clock.advance(1)
        second = AccessControlList(default_level=AclLevel.NO_ACCESS)
        second.add("designer", AclLevel.MANAGER)
        app_a.save_acl(second)
        clock.advance(1)
        Replicator().replicate(a, b)
        assert b.acl.level_of("x") == AclLevel.NO_ACCESS

    def test_single_acl_note(self, db):
        from repro.security import AccessControlList, AclLevel

        app = Application(db)
        first = AccessControlList(default_level=AclLevel.READER)
        first.add("designer", AclLevel.MANAGER)
        app.save_acl(first)
        second = AccessControlList(default_level=AclLevel.EDITOR)
        second.add("designer", AclLevel.MANAGER)
        app.save_acl(second)
        count = sum(
            1 for doc in db.all_documents()
            if doc.get("Form") == "$DesignACL"
        )
        assert count == 1


class TestDesignReplication:
    def test_application_replicates_with_data(self, pair, clock):
        a, b = pair
        app_a = Application(a)
        app_a.save_view("People", 'SELECT Form = "Person"', people_columns())
        app_a.save_agent(Agent(name="greet", trigger=AgentTrigger.ON_CREATE,
                               selection='SELECT Form = "Person"',
                               formula='FIELD Greeted := 1'))
        a.create({"Form": "Person", "Name": "ann"})
        clock.advance(1)
        Replicator().replicate(a, b)
        app_b = Application(b)
        assert app_b.view_names == ["People"]
        assert app_b.agent_names == ["greet"]
        assert len(app_b.view("People")) == 1
        doc = b.create({"Form": "Person", "Name": "bee"})
        assert b.get(doc.unid).get("Greeted") == 1

    def test_design_change_refreshes_open_replica(self, pair, clock):
        a, b = pair
        app_a = Application(a)
        app_a.save_view("People", 'SELECT Form = "Person"', people_columns())
        clock.advance(1)
        Replicator().replicate(a, b)
        app_b = Application(b)  # opened BEFORE the design change
        b.create({"Form": "Person", "Name": "bee"})
        b.create({"Form": "Memo", "Name": "not a person"})
        assert len(app_b.view("People")) == 1
        clock.advance(1)
        app_a.save_view("People", "SELECT @All", people_columns())
        clock.advance(1)
        Replicator().replicate(a, b)
        # the replicated design note refreshed the live view
        assert len(app_b.view("People")) == 2

    def test_concurrent_design_edits_conflict_like_data(self, pair, clock):
        a, b = pair
        app_a = Application(a)
        app_a.save_view("V", 'SELECT Form = "X"', people_columns())
        clock.advance(1)
        Replicator().replicate(a, b)
        app_b = Application(b)
        clock.advance(1)
        app_a.save_view("V", 'SELECT Form = "A"', people_columns())
        clock.advance(1)
        app_b.save_view("V", 'SELECT Form = "B"', people_columns())
        clock.advance(1)
        Replicator().replicate(a, b)
        clock.advance(1)
        Replicator().replicate(a, b)
        assert converged([a, b])
        # both replicas show the same (winning) design
        assert (app_a.view("V").selection_source
                == app_b.view("V").selection_source)
