"""Property-based storage tests: pages behave like dicts, the engine's
committed state always survives a crash."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.storage import SlottedPage, StorageEngine

small_bytes = st.binary(max_size=300)
keys = st.binary(min_size=1, max_size=24)


class PageMachine(RuleBasedStateMachine):
    """A slotted page is a dict[slot -> bytes] with stable slot numbers."""

    def __init__(self):
        super().__init__()
        self.page = SlottedPage()
        self.shadow: dict[int, bytes] = {}

    @rule(data=small_bytes)
    def insert(self, data):
        if not self.page.fits(len(data)):
            return
        slot = self.page.insert(data)
        assert slot not in self.shadow
        self.shadow[slot] = data

    @rule(data=st.data())
    def delete_one(self, data):
        if not self.shadow:
            return
        slot = data.draw(st.sampled_from(sorted(self.shadow)))
        self.page.delete(slot)
        del self.shadow[slot]

    @rule(data=st.data(), new=small_bytes)
    def update_one(self, data, new):
        if not self.shadow:
            return
        slot = data.draw(st.sampled_from(sorted(self.shadow)))
        grow = len(new) - len(self.shadow[slot])
        if grow > 0 and not self.page.fits(len(new)):
            return
        self.page.update(slot, new)
        self.shadow[slot] = new

    @rule()
    def compact(self):
        self.page.compact()

    @invariant()
    def contents_agree(self):
        assert set(self.page.slots()) == set(self.shadow)
        for slot, data in self.shadow.items():
            assert self.page.get(slot) == data


TestPageMachine = PageMachine.TestCase
TestPageMachine.settings = settings(max_examples=30, stateful_step_count=50)


@given(
    ops=st.lists(
        st.tuples(keys, st.one_of(st.none(), small_bytes)),
        min_size=1,
        max_size=40,
    ),
    crash_after=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_committed_state_survives_crash_at_any_point(tmp_path_factory, ops, crash_after):
    """Apply ops (value=None means delete), crash after `crash_after` of
    them, recover: the surviving state must equal the committed prefix."""
    base = tmp_path_factory.mktemp("fuzz")
    path = str(base / "db")
    engine = StorageEngine(path)
    shadow: dict[bytes, bytes] = {}
    for index, (key, value) in enumerate(ops):
        if index == crash_after:
            break
        if value is None:
            if key in engine:
                engine.remove(key)
            shadow.pop(key, None)
        else:
            engine.set(key, value)
            shadow[key] = value
    engine.simulate_crash()
    recovered = StorageEngine(path)
    try:
        assert {k: recovered.get(k) for k in recovered.keys()} == shadow
    finally:
        recovered.close()


@given(
    ops=st.lists(st.tuples(keys, small_bytes), min_size=1, max_size=30),
    checkpoint_at=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=30, deadline=None)
def test_checkpoint_position_never_affects_recovery(
    tmp_path_factory, ops, checkpoint_at
):
    base = tmp_path_factory.mktemp("ckpt")
    path = str(base / "db")
    engine = StorageEngine(path)
    shadow: dict[bytes, bytes] = {}
    for index, (key, value) in enumerate(ops):
        if index == checkpoint_at:
            engine.checkpoint()
        engine.set(key, value)
        shadow[key] = value
    engine.simulate_crash()
    recovered = StorageEngine(path)
    try:
        for key, value in shadow.items():
            assert recovered.get(key) == value
        assert len(recovered) == len(shadow)
    finally:
        recovered.close()


@given(st.lists(st.tuples(keys, small_bytes), max_size=30))
@settings(max_examples=30, deadline=None)
def test_abort_leaves_no_trace(tmp_path_factory, pairs):
    base = tmp_path_factory.mktemp("abort")
    engine = StorageEngine(str(base / "db"))
    try:
        engine.set(b"anchor", b"stays")
        txn = engine.begin()
        for key, value in pairs:
            engine.put(txn, key, value)
        engine.abort(txn)
        assert len(engine) == 1
        assert engine.get(b"anchor") == b"stays"
    finally:
        engine.close()
