"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.bench.runners import build_deployment
from repro.core import NotesDatabase
from repro.sim import EventScheduler, VirtualClock


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def events(clock) -> EventScheduler:
    return EventScheduler(clock)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def db(clock, rng) -> NotesDatabase:
    return NotesDatabase("test.nsf", clock=clock, rng=rng, server="alpha")


@pytest.fixture
def pair(clock):
    """Two replicas of one database on two servers (no network)."""
    a = NotesDatabase(
        "pair.nsf", clock=clock, rng=random.Random(1), server="alpha"
    )
    b = a.new_replica("beta")
    return a, b


@pytest.fixture
def deployment():
    return build_deployment(3)
