"""Tests for the admin tools: archiving and compaction."""

import random

import pytest

from repro.core import NotesDatabase
from repro.errors import DatabaseError
from repro.replication import Replicator
from repro.storage import StorageEngine
from repro.tools import archive_documents, compact_engine


@pytest.fixture
def archive_db(clock):
    return NotesDatabase("archive.nsf", clock=clock, rng=random.Random(99),
                         server="alpha")


class TestArchive:
    def test_old_documents_move(self, db, archive_db, clock):
        old = db.create({"Subject": "ancient"})
        clock.advance(1000)
        fresh = db.create({"Subject": "new"})
        result = archive_documents(db, archive_db, not_modified_since=500.0)
        assert result.archived == 1
        assert old.unid in archive_db and old.unid not in db
        assert fresh.unid in db
        assert archive_db.get(old.unid).get("Subject") == "ancient"

    def test_envelope_preserved(self, db, archive_db, clock):
        doc = db.create({"Subject": "v1"})
        db.update(doc.unid, {"Subject": "v2"})
        clock.advance(1000)
        archive_documents(db, archive_db, not_modified_since=500.0)
        copy = archive_db.get(doc.unid)
        assert copy.seq == doc.seq
        assert copy.revisions == doc.revisions

    def test_selection_formula_restricts(self, db, archive_db, clock):
        db.create({"Form": "Memo", "Subject": "m"})
        keep = db.create({"Form": "Order", "Subject": "o"})
        clock.advance(1000)
        result = archive_documents(
            db, archive_db, not_modified_since=500.0,
            selection='SELECT Form = "Memo"',
        )
        assert result.archived == 1
        assert keep.unid in db

    def test_archiving_leaves_stub_for_replication(self, pair, archive_db, clock):
        a, b = pair
        doc = a.create({"Subject": "x"})
        clock.advance(1)
        Replicator().replicate(a, b)
        clock.advance(1000)
        archive_documents(a, archive_db, not_modified_since=500.0)
        clock.advance(1)
        Replicator().replicate(a, b)
        assert doc.unid not in b  # the archive delete replicated

    def test_archive_must_not_be_replica(self, pair):
        a, b = pair
        with pytest.raises(DatabaseError):
            archive_documents(a, b, not_modified_since=0.0)

    def test_thread_integrity_kept(self, db, archive_db, clock):
        topic = db.create({"Subject": "topic"})
        clock.advance(10)
        response = db.create({"Subject": "re"}, parent=topic.unid)
        clock.advance(1000)
        # keep the topic fresh; the response is old but its parent stays
        db.update(topic.unid, {"Subject": "still active"})
        result = archive_documents(db, archive_db, not_modified_since=500.0)
        assert result.archived == 0
        assert response.unid in db

    def test_whole_thread_archives_together(self, db, archive_db, clock):
        topic = db.create({"Subject": "topic"})
        clock.advance(10)
        db.create({"Subject": "re"}, parent=topic.unid)
        clock.advance(1000)
        result = archive_documents(db, archive_db, not_modified_since=500.0)
        assert result.archived == 2
        assert len(archive_db) == 2

    def test_tear_threads_when_disabled(self, db, archive_db, clock):
        topic = db.create({"Subject": "topic"})
        clock.advance(10)
        old_response = db.create({"Subject": "re"}, parent=topic.unid)
        clock.advance(1000)
        db.update(topic.unid, {"Subject": "active"})
        result = archive_documents(
            db, archive_db, not_modified_since=500.0,
            keep_responses_with_parents=False,
        )
        assert result.archived == 1
        assert old_response.unid in archive_db


class TestCompact:
    def test_preserves_all_data(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "db"))
        expected = {}
        for index in range(200):
            key = f"k{index}".encode()
            value = (f"v{index}" * 20).encode()
            engine.set(key, value)
            expected[key] = value
        for index in range(0, 200, 2):
            engine.remove(f"k{index}".encode())
            del expected[f"k{index}".encode()]
        result = compact_engine(engine)
        assert result.keys == 100
        assert {k: engine.get(k) for k in engine.keys()} == expected
        engine.close()

    def test_reclaims_space(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "db"))
        for index in range(300):
            engine.set(f"k{index}".encode(), b"x" * 800)
        for index in range(280):
            engine.remove(f"k{index}".encode())
        result = compact_engine(engine)
        assert result.pages_after < result.pages_before
        assert result.reclaimed_bytes > 0
        engine.close()

    def test_engine_usable_after_compaction(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "db"))
        engine.set(b"before", b"1")
        compact_engine(engine)
        engine.set(b"after", b"2")
        assert engine.get(b"before") == b"1"
        assert engine.get(b"after") == b"2"
        engine.close()

    def test_durable_across_crash_after_compaction(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "db"))
        engine.set(b"k", b"v")
        compact_engine(engine)
        engine.set(b"post", b"compact")
        engine.simulate_crash()
        recovered = StorageEngine(str(tmp_path / "db"))
        assert recovered.get(b"k") == b"v"
        assert recovered.get(b"post") == b"compact"
        recovered.close()

    def test_compact_empty_engine(self, tmp_path):
        engine = StorageEngine(str(tmp_path / "db"))
        result = compact_engine(engine)
        assert result.keys == 0
        engine.set(b"k", b"v")
        assert engine.get(b"k") == b"v"
        engine.close()

    def test_database_survives_compaction(self, tmp_path, clock):
        engine = StorageEngine(str(tmp_path / "nsf"))
        db = NotesDatabase("c.nsf", clock=clock, rng=random.Random(1),
                          engine=engine)
        doc = db.create({"Subject": "content"})
        for index in range(50):
            trash = db.create({"Subject": f"temp {index}"})
            db.delete(trash.unid)
        compact_engine(engine)
        engine.close()
        engine2 = StorageEngine(str(tmp_path / "nsf"))
        reloaded = NotesDatabase("c.nsf", clock=clock, rng=random.Random(2),
                                 engine=engine2)
        assert reloaded.get(doc.unid).get("Subject") == "content"
        assert len(reloaded.stubs) == 50
        engine2.close()
