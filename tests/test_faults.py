"""Tests for deterministic fault injection and the retry machinery.

Covers the :class:`FaultPlan` itself (replayable drops, flaps, aborts,
crash windows), resumable replication exchanges (mid-pass cursor
checkpoints, resume-after-abort, the all-or-nothing ablation), the
scheduler's per-edge circuit breaker, mail retry backoff with
dead-lettering, and the cluster replicator's resumable drains.
"""

import pytest

from repro.bench.runners import build_deployment, populate
from repro.cluster import ClusterReplicator
from repro.core.stats import DEGRADED, HEALTHY, SUSPENDED, LinkHealth
from repro.errors import LinkFailure, ReplicationError, SimulationError
from repro.mail import Directory, MailRouter, make_memo
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    SimulatedNetwork,
    converged,
)
from repro.sim import FaultPlan, LinkFaultProfile, VirtualClock, derive_rng


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(42, "link", "x<->y")
        b = derive_rng(42, "link", "x<->y")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_subject_different_stream(self):
        a = derive_rng(42, "link", "x<->y")
        b = derive_rng(42, "link", "x<->z")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestFaultPlan:
    def test_profile_validation(self):
        with pytest.raises(SimulationError):
            LinkFaultProfile(drop_probability=1.5)
        with pytest.raises(SimulationError):
            LinkFaultProfile(abort_after=(0, 3))

    def test_drop_raises_and_traces(self, clock):
        plan = FaultPlan(1, clock, LinkFaultProfile(drop_probability=1.0))
        with pytest.raises(LinkFailure):
            plan.begin_attempt("a", "b")
        assert [e.kind for e in plan.trace] == ["drop"]
        assert plan.trace[0].subject == "a<->b"

    def test_flap_takes_link_down_then_self_heals(self, clock):
        plan = FaultPlan(
            2, clock,
            LinkFaultProfile(flap_probability=1.0, flap_duration=(5.0, 5.0)),
        )
        with pytest.raises(LinkFailure):
            plan.begin_attempt("a", "b")
        assert not plan.available("a", "b")
        clock.advance(4.9)
        assert not plan.available("a", "b")
        clock.advance(0.2)
        assert plan.available("a", "b")

    def test_abort_budget_allows_n_transfers_then_fires(self, clock):
        plan = FaultPlan(
            3, clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(3, 3)),
        )
        plan.begin_attempt("a", "b")
        for _ in range(3):
            plan.on_transfer("a", "b")
        with pytest.raises(LinkFailure):
            plan.on_transfer("a", "b")
        assert [e.kind for e in plan.trace] == ["abort-armed", "abort"]

    def test_next_attempt_clears_stale_abort_budget(self, clock):
        plan = FaultPlan(
            3, clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(1, 1)),
        )
        plan.begin_attempt("a", "b")
        plan.on_transfer("a", "b")  # spends the budget down to zero
        plan.begin_attempt("a", "b")  # re-arms fresh, no instant abort
        plan.on_transfer("a", "b")

    def test_crash_window_downs_server_on_clock(self, clock):
        plan = FaultPlan(4, clock)
        plan.crash("srv1", at=10.0, duration=5.0)
        assert plan.server_up("srv1")
        clock.advance(10.0)
        assert not plan.server_up("srv1")
        assert not plan.available("srv0", "srv1")
        clock.advance(5.0)
        assert plan.server_up("srv1")
        assert [e.kind for e in plan.trace] == ["crash", "restart"]

    def test_schedule_crashes_is_seed_deterministic(self, clock):
        one = FaultPlan(7, clock)
        two = FaultPlan(7, clock)
        other = FaultPlan(8, clock)
        for plan in (one, two, other):
            plan.schedule_crashes(["s0", "s1"], horizon=500.0,
                                  mean_interval=60.0, outage=(5.0, 20.0))
        assert one.trace == two.trace
        assert one.trace != other.trace

    def test_identical_seeds_replay_identical_fault_schedule(self):
        traces = []
        for _ in range(2):
            clock = VirtualClock()
            plan = FaultPlan(
                99, clock,
                LinkFaultProfile(drop_probability=0.4, flap_probability=0.2,
                                 abort_probability=0.3),
            )
            for _ in range(40):
                clock.advance(1.0)
                try:
                    plan.begin_attempt("a", "b")
                    for _ in range(4):
                        plan.on_transfer("a", "b")
                except LinkFailure:
                    pass
            traces.append(plan.trace)
        assert traces[0] == traces[1]

    def test_deactivate_stops_injection_keeps_trace(self, clock):
        plan = FaultPlan(5, clock, LinkFaultProfile(drop_probability=1.0))
        with pytest.raises(LinkFailure):
            plan.begin_attempt("a", "b")
        plan.deactivate()
        plan.begin_attempt("a", "b")  # no longer raises
        assert len(plan.trace) == 1


@pytest.fixture
def faulty_pair():
    """Two replicas over a network, source populated with 30 docs."""
    deployment = build_deployment(2, seed=11)
    source, target = deployment.databases
    populate(source, 30, deployment.rng, body_bytes=64)
    deployment.clock.advance(1)
    return deployment, source, target


class TestResumableExchange:
    def test_cursor_checkpoints_per_batch(self, faulty_pair):
        deployment, source, target = faulty_pair
        rep = Replicator(network=deployment.network, batch_size=10)
        stats = rep.pull(target, source)
        assert stats.docs_transferred == 30
        assert stats.cursor_checkpoints == 3
        assert (
            target.replication_seq[(source.server, "receive")]
            == source.update_seq
        )

    def test_aborted_pull_resumes_from_cursor(self, faulty_pair):
        deployment, source, target = faulty_pair
        plan = deployment.network.install_faults(FaultPlan(
            0, deployment.clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(5, 5)),
        ))
        rep = Replicator(network=deployment.network, batch_size=4)
        with pytest.raises(LinkFailure):
            rep.pull(target, source)
        # 5 transfers completed before the abort; the cursor checkpointed
        # after the first full batch of 4.
        assert len(target) == 5
        assert target.replication_seq[(source.server, "receive")] > 0
        plan.deactivate()
        stats = rep.pull(target, source)
        # Resume re-examines at most one batch past the cursor and ships
        # only what is still missing — never the whole database again.
        assert stats.docs_transferred == 25
        assert stats.docs_examined <= 25 + rep.batch_size
        assert converged([source, target])

    def test_all_or_nothing_ablation_wastes_the_aborted_exchange(
        self, faulty_pair
    ):
        deployment, source, target = faulty_pair
        plan = deployment.network.install_faults(FaultPlan(
            0, deployment.clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(5, 5)),
        ))
        rep = Replicator(network=deployment.network, resumable=False)
        with pytest.raises(LinkFailure):
            rep.pull(target, source)
        # Nothing installed, no cursor recorded: the transfer was wasted.
        assert len(target) == 0
        assert (source.server, "receive") not in target.replication_seq
        plan.deactivate()
        stats = rep.pull(target, source)
        assert stats.docs_transferred == 30  # the full suffix, again
        assert converged([source, target])

    def test_interrupted_pass_still_counts_partial_work(self, faulty_pair):
        deployment, source, target = faulty_pair
        deployment.network.install_faults(FaultPlan(
            0, deployment.clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(5, 5)),
        ))
        rep = Replicator(network=deployment.network)
        from repro.replication import ReplicationStats

        stats = ReplicationStats()
        with pytest.raises(LinkFailure):
            rep.pull(target, source, into=stats)
        assert stats.docs_transferred == 5
        assert stats.bytes_transferred > 0


class TestSchedulerHealth:
    def _world(self, drop_probability=1.0, seed=1):
        deployment = build_deployment(2, seed=21)
        populate(deployment.origin, 10, deployment.rng, body_bytes=64)
        deployment.clock.advance(1)
        plan = deployment.network.install_faults(FaultPlan(
            seed, deployment.clock,
            LinkFaultProfile(drop_probability=drop_probability),
        ))
        topology = ReplicationTopology.mesh(["srv0", "srv1"])
        scheduler = ReplicationScheduler(deployment.network, topology)
        return deployment, plan, scheduler

    def test_failures_degrade_then_open_the_breaker(self):
        deployment, _, scheduler = self._world()
        edge = None
        for _ in range(scheduler.failure_threshold):
            # March past every backoff window so no attempt is deferred.
            deployment.clock.advance(scheduler.backoff_cap * 2)
            scheduler.run_round()
            edge = next(iter(scheduler.edge_health.values()))
        assert edge.state == SUSPENDED
        assert edge.consecutive_failures == scheduler.failure_threshold
        assert scheduler.total.edges_failed == scheduler.failure_threshold

    def test_backoff_defers_attempts_until_deadline(self):
        deployment, _, scheduler = self._world()
        scheduler.run_round()
        edge = next(iter(scheduler.edge_health.values()))
        assert edge.state == DEGRADED
        assert edge.next_attempt_at > deployment.clock.now
        stats = scheduler.run_round()  # deadline not reached yet
        assert stats.edges_deferred == 1
        assert stats.edges_attempted == 0

    def test_probe_success_closes_the_breaker(self):
        deployment, plan, scheduler = self._world()
        for _ in range(scheduler.failure_threshold):
            deployment.clock.advance(scheduler.backoff_cap * 2)
            scheduler.run_round()
        plan.deactivate()  # the fault clears
        deployment.clock.advance(scheduler.backoff_cap * 2)
        stats = scheduler.run_round()
        edge = next(iter(scheduler.edge_health.values()))
        assert edge.state == HEALTHY
        assert edge.consecutive_failures == 0
        assert stats.edges_retried == 1
        assert edge.probes == 1
        assert converged(deployment.databases)

    def test_unreachable_edges_are_counted_not_silent(self):
        deployment, _, scheduler = self._world(drop_probability=0.0)
        deployment.network.partition("srv0", "srv1")
        stats = scheduler.run_round()
        assert stats.edges_skipped == 1
        assert stats.edges_attempted == 0
        edge = next(iter(scheduler.edge_health.values()))
        assert edge.skips == 1

    def test_convergence_despite_heavy_drop_rate(self):
        deployment, _, scheduler = self._world(drop_probability=0.3, seed=3)
        rounds = scheduler.rounds_to_convergence(
            deployment.databases, max_rounds=64
        )
        assert rounds >= 1
        assert converged(deployment.databases)

    def test_quiet_edges_skip_as_noop_without_a_pass(self):
        deployment, _, scheduler = self._world(drop_probability=0.0)
        scheduler.rounds_to_convergence(deployment.databases)
        scheduler.run_round()  # echo round: cursors pass the installs
        stats = scheduler.run_round()  # now provably quiet
        assert stats.noop_pairs == 1
        assert stats.docs_scanned == 0
        assert stats.docs_examined == 0

    def test_identical_seed_identical_retry_trace(self):
        outcomes = []
        for _ in range(2):
            deployment, plan, scheduler = self._world(
                drop_probability=0.5, seed=17
            )
            scheduler.rounds_to_convergence(
                deployment.databases, max_rounds=64
            )
            edge = next(iter(scheduler.edge_health.values()))
            outcomes.append((
                plan.trace,
                edge.attempts, edge.failures, edge.retries,
                [db.state_fingerprint() for db in deployment.databases],
            ))
        assert outcomes[0] == outcomes[1]


class TestLinkHealthUnit:
    def test_suspended_delay_doubles_per_probe_failure(self):
        health = LinkHealth()
        kwargs = dict(backoff_base=1.0, backoff_cap=100.0,
                      failure_threshold=2, probe_interval=4.0, jitter=0.0)
        assert health.record_failure(0.0, "x", **kwargs) == 1.0
        assert health.state == DEGRADED
        assert health.record_failure(0.0, "x", **kwargs) == 4.0
        assert health.state == SUSPENDED
        assert health.record_failure(0.0, "x", **kwargs) == 8.0

    def test_jitter_stretches_delay(self):
        health = LinkHealth()
        delay = health.record_failure(
            0.0, "x", backoff_base=2.0, backoff_cap=100.0,
            failure_threshold=9, probe_interval=4.0, jitter=0.5,
        )
        assert delay == pytest.approx(3.0)


@pytest.fixture
def faulty_mail():
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    for name in ("hq", "emea"):
        network.add_server(name)
    directory = Directory(clock=clock)
    directory.register_person("alice/Acme", "hq")
    directory.register_person("bob/Acme", "emea")
    router = MailRouter(network, directory, max_attempts=3)
    router.add_route("hq", "emea")
    return clock, network, router


class TestMailRetry:
    def test_transfer_failure_holds_with_backoff(self, faulty_mail):
        clock, network, router = faulty_mail
        network.install_faults(FaultPlan(
            1, clock, LinkFaultProfile(drop_probability=1.0),
        ))
        router.submit(make_memo("alice/Acme", "bob/Acme", "hi"), "hq")
        router.deliver_all()
        assert router.stats.transfer_failures == 1
        assert router.pending() == 1
        held = router.mailbox("hq").get(router.mailbox("hq").unids()[0])
        assert held.get("$RetryAfter") > clock.now
        assert held.get("$RouteAttempts") == 1
        # Before the deadline the memo is not even attempted.
        router.route_step()
        assert router.stats.transfer_failures == 1

    def test_retry_after_backoff_delivers_when_fault_clears(self, faulty_mail):
        clock, network, router = faulty_mail
        plan = network.install_faults(FaultPlan(
            1, clock, LinkFaultProfile(drop_probability=1.0),
        ))
        router.submit(make_memo("alice/Acme", "bob/Acme", "hi"), "hq")
        router.deliver_all()
        plan.deactivate()
        clock.advance(router.retry_cap * 2)
        stats = router.deliver_all()
        assert stats.delivered == 1
        assert stats.retries >= 1
        assert stats.dead_lettered == 0

    def test_exhausted_attempts_dead_letter_with_report(self, faulty_mail):
        clock, network, router = faulty_mail
        network.install_faults(FaultPlan(
            1, clock, LinkFaultProfile(drop_probability=1.0),
        ))
        router.submit(make_memo("alice/Acme", "bob/Acme", "doomed"), "hq")
        for _ in range(router.max_attempts + 1):
            router.deliver_all()
            clock.advance(router.retry_cap * 2)
        assert router.stats.dead_lettered == 1
        dead = router.dead_letter_box("hq")
        report = dead.get(dead.unids()[0])
        assert report.get("Form") == "DeliveryFailure"
        assert report.get("FailedRecipients") == ["bob/Acme"]
        assert router.stats.bounced == 1  # NDR went back to alice
        inbox = router.mail_file("alice/Acme")
        forms = [inbox.get(unid).get("Form") for unid in inbox.unids()]
        assert "NonDelivery" in forms

    def test_backoff_grows_and_is_capped(self, faulty_mail):
        _, _, router = faulty_mail
        assert router._backoff(1) >= router.retry_base
        assert router._backoff(12) <= router.retry_cap * (
            1.0 + router.retry_jitter
        )


class TestClusterResumableDrain:
    def _cluster(self):
        deployment = build_deployment(2, seed=31)
        a, b = deployment.databases
        cluster = ClusterReplicator(deployment.network)
        cluster.attach(a)
        cluster.attach(b)
        return deployment, a, b, cluster

    def test_live_push_failure_stalls_the_link(self):
        deployment, a, b, cluster = self._cluster()
        deployment.network.install_faults(FaultPlan(
            1, deployment.clock, LinkFaultProfile(drop_probability=1.0),
        ))
        a.create({"S": "doomed push"})
        assert cluster.stats.interrupted == 1
        assert len(b) == 0
        assert cluster.backlog_size == 1

    def test_interrupted_drain_resumes_not_restarts(self):
        deployment, a, b, cluster = self._cluster()
        deployment.network.partition("srv0", "srv1")
        for index in range(10):
            a.create({"S": f"offline {index}"})
        deployment.network.partition("srv0", "srv1", partitioned=False)
        plan = deployment.network.install_faults(FaultPlan(
            1, deployment.clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(4, 4)),
        ))
        first = cluster.catch_up()
        assert first == 4  # the abort killed the drain after 4 pushes
        assert cluster.stats.interrupted == 1
        assert len(b) == 4
        plan.deactivate()
        second = cluster.catch_up()
        assert second == 6  # only the remainder — the cursor held
        assert converged([a, b])
        assert cluster.backlog_size == 0

    def test_pending_events_survive_an_interrupted_drain(self):
        deployment, a, b, cluster = self._cluster()
        doc = a.create({"S": "keep"})
        victim = a.create({"S": "soft"})
        assert len(b) == 2
        deployment.network.partition("srv0", "srv1")
        a.update(doc.unid, {"S": "edited"})
        a.soft_delete(victim.unid)  # un-journaled: rides the pending table
        deployment.network.partition("srv0", "srv1", partitioned=False)
        plan = deployment.network.install_faults(FaultPlan(
            1, deployment.clock,
            LinkFaultProfile(abort_probability=1.0, abort_after=(1, 1)),
        ))
        cluster.catch_up()  # pushes the edit, dies before the soft delete
        assert cluster.stats.interrupted == 1
        plan.deactivate()
        cluster.catch_up()
        assert b.try_get(victim.unid) is None  # the soft delete arrived
        assert b.get(doc.unid).get("S") == "edited"


class TestConvergedFastPath:
    def test_fingerprint_short_circuit(self, faulty_pair):
        deployment, source, target = faulty_pair
        rep = Replicator(network=deployment.network)
        rep.replicate(source, target)
        assert converged([source, target])
        assert source.state_fingerprint() == target.state_fingerprint()

    def test_trash_divergence_does_not_break_convergence(self, faulty_pair):
        deployment, source, target = faulty_pair
        rep = Replicator(network=deployment.network)
        rep.replicate(source, target)
        # A soft delete replicates as a deletion; the trash entry itself
        # is local-only, so fingerprints diverge while the replicas are
        # still converged — the fast path must fall back, not misreport.
        source.soft_delete(source.unids()[0])
        rep.replicate(source, target)
        assert converged([source, target]) == (
            {d.unid for d in source.all_documents()}
            == {d.unid for d in target.all_documents()}
        )
