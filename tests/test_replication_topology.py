"""Tests for topologies, the scheduler, and network behaviour."""

import pytest

from repro.bench.runners import build_deployment, populate
from repro.errors import ReplicationError
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    SimulatedNetwork,
    converged,
)
from repro.sim import VirtualClock


class TestTopologyBuilders:
    def test_ring(self):
        topology = ReplicationTopology.ring(["a", "b", "c", "d"])
        assert len(topology.connections) == 4
        assert set(topology.neighbours("a")) == {"b", "d"}

    def test_two_server_ring_has_one_edge(self):
        assert len(ReplicationTopology.ring(["a", "b"]).connections) == 1

    def test_hub_spoke(self):
        topology = ReplicationTopology.hub_spoke("hub", ["s1", "s2", "s3"])
        assert len(topology.connections) == 3
        assert set(topology.neighbours("hub")) == {"s1", "s2", "s3"}
        assert topology.neighbours("s1") == ["hub"]

    def test_mesh(self):
        topology = ReplicationTopology.mesh(["a", "b", "c", "d"])
        assert len(topology.connections) == 6

    def test_chain(self):
        topology = ReplicationTopology.chain(["a", "b", "c"])
        assert len(topology.connections) == 2

    def test_diameters(self):
        assert ReplicationTopology.mesh(["a", "b", "c", "d"]).diameter() == 1
        assert ReplicationTopology.hub_spoke("h", ["a", "b", "c"]).diameter() == 2
        assert ReplicationTopology.chain(list("abcde")).diameter() == 4

    def test_self_connection_rejected(self):
        topology = ReplicationTopology()
        with pytest.raises(ReplicationError):
            topology.connect("a", "a")

    def test_too_small_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicationTopology.ring(["only"])
        with pytest.raises(ReplicationError):
            ReplicationTopology.hub_spoke("h", [])


class TestNetwork:
    def test_transfer_accounts_stats(self):
        network = SimulatedNetwork(VirtualClock())
        network.add_server("a")
        network.add_server("b")
        network.transfer("a", "b", 1000)
        assert network.stats.bytes_sent == 1000
        assert network.stats.messages == 1
        assert network.stats.by_link[("a", "b")] == (1000, 1)

    def test_transfer_duration_model(self):
        network = SimulatedNetwork(VirtualClock())
        network.add_server("a")
        network.add_server("b")
        network.set_link("a", "b", latency=0.5, bandwidth=1000)
        assert network.transfer("a", "b", 2000) == pytest.approx(0.5 + 2.0)

    def test_partition_blocks(self):
        network = SimulatedNetwork(VirtualClock())
        network.add_server("a")
        network.add_server("b")
        network.partition("a", "b")
        assert not network.is_reachable("a", "b")
        with pytest.raises(ReplicationError):
            network.transfer("a", "b", 10)
        network.partition("a", "b", partitioned=False)
        assert network.is_reachable("a", "b")

    def test_down_server_unreachable(self):
        network = SimulatedNetwork(VirtualClock())
        network.add_server("a")
        network.add_server("b")
        network.server("b").up = False
        assert not network.is_reachable("a", "b")

    def test_duplicate_server_rejected(self):
        network = SimulatedNetwork(VirtualClock())
        network.add_server("a")
        with pytest.raises(ReplicationError):
            network.add_server("a")

    def test_unknown_server_rejected(self):
        network = SimulatedNetwork(VirtualClock())
        with pytest.raises(ReplicationError):
            network.server("ghost")


class TestSchedulerConvergence:
    @pytest.mark.parametrize("shape,n", [("ring", 5), ("hub_spoke", 5), ("mesh", 4)])
    def test_all_topologies_converge(self, shape, n):
        deployment = build_deployment(n)
        names = [f"srv{i}" for i in range(n)]
        # seed changes on several replicas
        for index, db in enumerate(deployment.databases):
            db.create({"S": f"origin {index}"})
        if shape == "ring":
            topology = ReplicationTopology.ring(names)
        elif shape == "mesh":
            topology = ReplicationTopology.mesh(names)
        else:
            topology = ReplicationTopology.hub_spoke(names[0], names[1:])
        scheduler = ReplicationScheduler(deployment.network, topology)
        rounds = scheduler.rounds_to_convergence(deployment.databases)
        assert rounds <= 2 * len(names)
        assert all(len(db) == n for db in deployment.databases)

    def test_partition_heals(self):
        deployment = build_deployment(3)
        a, b, c = deployment.databases
        a.create({"S": "seed"})
        names = ["srv0", "srv1", "srv2"]
        topology = ReplicationTopology.chain(names)
        deployment.network.partition("srv1", "srv2")
        scheduler = ReplicationScheduler(deployment.network, topology)
        deployment.clock.advance(1)
        scheduler.run_round()
        assert len(b) == 1 and len(c) == 0  # partition blocked the tail
        deployment.network.partition("srv1", "srv2", partitioned=False)
        rounds = scheduler.rounds_to_convergence(deployment.databases)
        assert rounds <= 2

    def test_event_scheduler_attachment(self):
        from repro.sim import EventScheduler

        deployment = build_deployment(2)
        a, b = deployment.databases
        a.create({"S": "x"})
        topology = ReplicationTopology.ring(["srv0", "srv1"], interval=60.0)
        scheduler = ReplicationScheduler(deployment.network, topology)
        events = EventScheduler(deployment.clock)
        scheduler.attach(events)
        events.run_until(59.0)
        assert len(b) == 0
        events.run_until(61.0)
        assert len(b) == 1

    def test_convergence_failure_raises(self):
        deployment = build_deployment(2)
        a, b = deployment.databases
        a.create({"S": "unreachable"})
        deployment.network.partition("srv0", "srv1")
        topology = ReplicationTopology.ring(["srv0", "srv1"])
        scheduler = ReplicationScheduler(deployment.network, topology)
        with pytest.raises(ReplicationError):
            scheduler.rounds_to_convergence(deployment.databases, max_rounds=3)
