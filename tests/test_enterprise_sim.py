"""The enterprise simulation: every subsystem on one event loop.

A week of a small Domino shop, in virtual time: three servers (one
clustered pair + a branch office), scheduled replication, scheduled mail
routing, a scheduled escalation agent, users posting through workloads and
the web, a server crash in the middle, archiving at the end — and all the
invariants checked after the dust settles. This is the repository's
heaviest integration test.
"""

import random

import pytest

from repro.agents import Agent, AgentTrigger
from repro.cluster import Cluster
from repro.core import NotesDatabase
from repro.design import Application
from repro.fulltext import FullTextIndex
from repro.mail import Directory, MailRouter, make_memo
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    SimulatedNetwork,
    converged,
)
from repro.sim import EventScheduler, VirtualClock
from repro.tools import archive_documents, update_catalog
from repro.views import SortOrder, ViewColumn

HOUR = 3600.0
DAY = 24 * HOUR


@pytest.mark.slow
def test_a_week_at_acme():
    clock = VirtualClock()
    events = EventScheduler(clock)
    network = SimulatedNetwork(clock)
    for name in ("hq1", "hq2", "branch"):
        network.add_server(name)
    network.set_link("hq1", "branch", latency=0.2, bandwidth=50_000)
    network.set_link("hq2", "branch", latency=0.2, bandwidth=50_000)

    # The tracker application lives on hq1, clustered to hq2.
    tracker = NotesDatabase("Tracker", clock=clock, rng=random.Random(1),
                            server="hq1")
    network.server("hq1").add_database(tracker)
    cluster = Cluster("HQ", network)
    cluster.add_member("hq1")
    cluster.add_member("hq2")
    replicas = cluster.cluster_database(tracker)
    hq2_replica = next(r for r in replicas if r.server == "hq2")

    app = Application(tracker, events=events, designer="dev/Acme")
    app.save_view(
        "ByStatus", 'SELECT Form = "Ticket"',
        [ViewColumn(title="Status", item="Status", categorized=True),
         ViewColumn(title="Subject", item="Subject",
                    sort=SortOrder.ASCENDING)],
    )
    app.save_agent(Agent(
        name="intake", trigger=AgentTrigger.ON_CREATE,
        selection='SELECT Form = "Ticket"',
        formula='DEFAULT Status := "new"',
    ))
    app.save_agent(Agent(
        name="escalate", trigger=AgentTrigger.SCHEDULED, interval=4 * HOUR,
        scan="all",
        selection='SELECT Form = "Ticket" & Status = "new"',
        formula=f'FIELD Status := @If(@Now - @Created > {DAY}; '
                '"escalated"; Status)',
    ))
    index = FullTextIndex(tracker)

    # Branch office: scheduled replication every 2 hours with hq1.
    branch = tracker.new_replica("branch")
    network.server("branch").add_database(branch)
    topology = ReplicationTopology("acme")
    topology.connect("hq1", "branch", interval=2 * HOUR)
    ReplicationScheduler(network, topology).attach(events)

    # Mail: router steps every 15 minutes.
    directory = Directory(clock=clock)
    directory.register_person("ops/Acme", "hq1")
    directory.register_person("branch-mgr/Acme", "branch")
    router = MailRouter(network, directory)
    router.add_route("hq1", "branch")
    router.attach(events, interval=15 * 60)

    rng = random.Random(42)
    ticket_count = {"n": 0}

    def hq_user_posts():
        ticket_count["n"] += 1
        tracker.create(
            {"Form": "Ticket",
             "Subject": f"hq issue {ticket_count['n']:03d}",
             "Body": f"printer on floor {rng.randrange(9)} is haunted"},
            author="ops/Acme",
        )

    def branch_user_posts():
        ticket_count["n"] += 1
        branch.create(
            {"Form": "Ticket",
             "Subject": f"branch issue {ticket_count['n']:03d}",
             "Body": "the branch fax machine strikes again"},
            author="branch-mgr/Acme",
        )
        router.submit(
            make_memo("branch-mgr/Acme", "ops/Acme",
                      f"heads up {ticket_count['n']}"),
            "branch",
        )

    events.every(5 * HOUR, hq_user_posts)
    events.every(7 * HOUR, branch_user_posts)

    # Day 3, 10:00: hq1 crashes; restored eight hours later.
    events.at(2 * DAY + 10 * HOUR, lambda: cluster.fail("hq1"))
    events.at(2 * DAY + 18 * HOUR, lambda: cluster.restore("hq1"))

    events.run_until(7 * DAY)

    # Everything that was posted exists somewhere and the HQ cluster agrees.
    assert ticket_count["n"] > 20
    assert converged([tracker, hq2_replica])
    # Branch converges after one more scheduled cycle (its last cycle may
    # have run mid-burst).
    clock.advance(1)
    Replicator(network=network).replicate(tracker, branch)
    assert converged([tracker, branch, hq2_replica])

    tickets = [d for d in tracker.all_documents() if d.form == "Ticket"]
    assert len(tickets) == ticket_count["n"]
    # The intake agent stamped every hq ticket; replicated branch tickets
    # were stamped on arrival at hq1 (or during its outage, at hq2? no —
    # agents run on hq1 only; allow either stamped or unstamped while hq1
    # was down, but anything older than a day must have left "new").
    statuses = {d.get("Status") for d in tickets}
    assert "escalated" in statuses
    # Escalation never touched non-tickets or already-worked tickets.
    for doc in tickets:
        if doc.get("Status") == "escalated":
            assert clock.now - doc.created > DAY

    # Views and search reflect the final state on the hub.
    assert len(app.view("ByStatus")) == len(tickets)
    assert index.search("haunted")
    assert index.search("fax")

    # Mail made it across the WAN on the router schedule.
    inbox = router.mail_file("ops/Acme")
    assert router.stats.delivered >= 20
    assert len(inbox) == router.stats.delivered
    assert router.stats.mean_hops >= 1.0

    # Cluster bookkeeping: the crash produced failover-queued changes that
    # drained at restore.
    replicator = next(iter(cluster.replicators.values()))
    assert replicator.stats.queued >= 0  # backlog existed during outage
    assert replicator.backlog_size == 0  # and fully drained

    # The catalog task sees every replica.
    catalog = NotesDatabase("catalog.nsf", clock=clock,
                            rng=random.Random(9), server="hq1")
    entries = update_catalog(catalog, network)
    assert entries >= 3
    from repro.tools import replicas_of

    assert replicas_of(catalog, tracker.replica_id) == ["branch", "hq1", "hq2"]

    # End of week: archive everything older than five days.
    archive = NotesDatabase("tracker-archive.nsf", clock=clock,
                            rng=random.Random(10), server="hq1")
    result = archive_documents(tracker, archive,
                               not_modified_since=clock.now - 2 * DAY)
    assert result.archived > 0
    assert len(archive) == result.archived
    # Archived deletions replicate as stubs to the cluster mate.
    clock.advance(1)
    Replicator().replicate(tracker, hq2_replica)
    assert converged([tracker, hq2_replica])
