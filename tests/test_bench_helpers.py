"""Tests for the benchmark harness helpers."""

import random

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table


class TestTables:
    def test_alignment_and_formatting(self, capsys):
        text = print_table(
            "demo",
            ["name", "count", "ratio"],
            [["alpha", 12_345, 0.5], ["b", 7, 1234.5]],
            note="a note",
        )
        captured = capsys.readouterr().out
        assert text in captured
        assert "12,345" in text
        assert "0.5000" in text
        assert "1,235" in text or "1,234" in text
        assert "a note" in text
        lines = text.splitlines()
        header = next(line for line in lines if "name" in line)
        separator = lines[lines.index(header) + 1]
        assert len(separator) >= len(header.rstrip())

    def test_empty_rows(self):
        text = print_table("empty", ["a", "b"], [])
        assert "empty" in text

    def test_boolean_rendering(self):
        text = print_table("flags", ["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestDeployment:
    def test_replicas_share_family(self):
        deployment = build_deployment(4)
        ids = {db.replica_id for db in deployment.databases}
        assert len(ids) == 1
        assert len(deployment.network.servers) == 4
        assert deployment.origin is deployment.databases[0]

    def test_servers_hold_their_databases(self):
        deployment = build_deployment(3)
        for index, db in enumerate(deployment.databases):
            server = deployment.network.server(f"srv{index}")
            assert server.replica_of(db.replica_id) is db

    def test_deterministic_for_seed(self):
        a = build_deployment(2, seed=7)
        b = build_deployment(2, seed=7)
        populate(a.databases[0], 10, random.Random(1))
        populate(b.databases[0], 10, random.Random(1))
        subjects_a = sorted(d.get("Subject") for d in a.databases[0].all_documents())
        subjects_b = sorted(d.get("Subject") for d in b.databases[0].all_documents())
        assert subjects_a == subjects_b

    def test_populate_advances_clock(self):
        deployment = build_deployment(1)
        before = deployment.clock.now
        populate(deployment.origin, 8, deployment.rng, advance=0.5)
        assert deployment.clock.now == before + 4.0
        assert len(deployment.origin) == 8

    def test_populate_body_size(self):
        deployment = build_deployment(1)
        populate(deployment.origin, 3, deployment.rng, body_bytes=800)
        for doc in deployment.origin.all_documents():
            assert len(doc.get("Body")) > 400
