"""Tests for the update-sequence journal and its change-feed semantics.

The journal turns ``changed_since`` from a full-database scan into a
suffix read of a by-seq log (CouchDB ``_changes`` style). These tests pin
the semantics the replicator relies on: seq cutoffs and timestamp cutoffs
agree, multi-hop hub routing still counts an installed note as changed
*now*, ``clear_replication_history`` forces a full re-examination, and the
journal survives a storage-engine reopen.
"""

import random

import pytest

from repro.core import NotesDatabase
from repro.replication import Replicator, converged
from repro.sim import VirtualClock
from repro.storage import StorageEngine


@pytest.fixture
def rep():
    return Replicator()


class TestJournalBasics:
    def test_seqs_are_monotonic_across_write_kinds(self, db, clock):
        doc = db.create({"S": "a"})
        assert db.update_seq == 1
        clock.advance(1)
        db.update(doc.unid, {"S": "b"})
        assert db.update_seq == 2
        other = db.create({"S": "c"})
        assert db.update_seq == 3
        clock.advance(1)
        db.delete(other.unid)
        assert db.update_seq == 4

    def test_changed_since_seq_returns_exact_delta(self, db, clock):
        for index in range(20):
            db.create({"N": index})
            clock.advance(0.1)
        mark = db.update_seq
        clock.advance(1)
        changed = random.Random(3).sample(db.unids(), 5)
        for unid in changed:
            db.update(unid, {"S": "edited"})
        docs, stubs = db.changed_since_seq(mark)
        assert {d.unid for d in docs} == set(changed)
        assert stubs == []
        assert db.last_scan_cost <= len(changed)

    def test_repeated_edits_collapse_to_one_candidate(self, db, clock):
        doc = db.create({"S": "v0"})
        mark = db.update_seq
        for version in range(10):
            clock.advance(1)
            db.update(doc.unid, {"S": f"v{version + 1}"})
        docs, stubs = db.changed_since_seq(mark)
        assert [d.unid for d in docs] == [doc.unid]
        assert stubs == []

    def test_deletion_shows_up_as_stub(self, db, clock):
        doc = db.create({"S": "x"})
        mark = db.update_seq
        clock.advance(1)
        db.delete(doc.unid)
        docs, stubs = db.changed_since_seq(mark)
        assert docs == []
        assert [s.unid for s in stubs] == [doc.unid]

    def test_seq_and_timestamp_paths_agree(self, db, clock):
        rng = random.Random(11)
        for index in range(30):
            db.create({"N": index})
            clock.advance(0.2)
        mark_seq = db.update_seq
        mark_time = clock.now
        clock.advance(1)
        for unid in rng.sample(db.unids(), 8):
            db.update(unid, {"S": "new"})
        doomed = rng.sample([u for u in db.unids()], 3)
        for unid in doomed:
            db.delete(unid)

        def key(result):
            docs, stubs = result
            return ({d.unid for d in docs}, {s.unid for s in stubs})

        via_seq = key(db.changed_since_seq(mark_seq))
        via_time = key(db.changed_since(mark_time))
        via_scan = key(db.changed_since_scan(mark_time))
        assert via_seq == via_time == via_scan

    def test_compaction_preserves_the_feed(self, db, clock):
        doc = db.create({"S": "hot"})
        cold = db.create({"S": "cold"})
        mark = db.update_seq
        # Hammer one document until the journal compacts away the
        # superseded entries, then check the feed is still exact.
        for version in range(500):
            clock.advance(0.01)
            db.update(doc.unid, {"V": version})
        assert len(db._journal) < 500
        docs, stubs = db.changed_since_seq(mark)
        assert {d.unid for d in docs} == {doc.unid}
        assert stubs == []
        assert cold.unid in db

    def test_scan_cost_is_delta_not_database_size(self, db, clock):
        for index in range(2000):
            db.create({"N": index})
            clock.advance(0.001)
        mark = db.update_seq
        clock.advance(1)
        for unid in random.Random(5).sample(db.unids(), 10):
            db.update(unid, {"S": "touched"})
        db.changed_since_seq(mark)
        assert db.last_scan_cost <= 10
        db.changed_since_scan(0.0)
        assert db.last_scan_cost >= 2000


class TestReplicationSeqHistory:
    def test_second_pull_scans_nothing(self, pair, clock, rep):
        a, b = pair
        a.create({"S": "x"})
        clock.advance(1)
        rep.pull(b, a)
        clock.advance(1)
        stats = rep.pull(b, a)
        assert stats.docs_examined == 0
        assert stats.docs_scanned == 0
        assert b.replication_seq[(a.server, "receive")] == a.update_seq

    def test_installed_note_counts_as_changed_now(self, clock):
        """Multi-hop: a note a hub *receives* must flow onward even though
        its original modification time predates the spoke's cutoff."""
        a = NotesDatabase(
            "hub.nsf", clock=clock, rng=random.Random(1), server="alpha"
        )
        hub = a.new_replica("hub")
        c = a.new_replica("gamma")
        rep = Replicator()
        doc = a.create({"S": "routed"})
        clock.advance(1)
        rep.pull(c, hub)  # spoke establishes history before the doc arrives
        clock.advance(1)
        rep.pull(hub, a)
        clock.advance(1)
        stats = rep.pull(c, hub)
        assert stats.docs_transferred == 1
        assert doc.unid in c

    def test_clear_history_forces_full_reexamination(self, pair, clock, rep):
        a, b = pair
        for index in range(10):
            a.create({"N": index})
        clock.advance(1)
        rep.pull(b, a)
        clock.advance(1)
        b.clear_replication_history()
        assert b.replication_seq == {}
        stats = rep.pull(b, a)
        assert stats.docs_examined == 10  # everything re-examined
        assert stats.docs_transferred == 0  # ...but nothing re-shipped

    def test_timestamp_history_fallback_interop(self, pair, clock):
        """A history written by the pre-journal (scan) replicator still
        yields a correct incremental pass when the journal path takes over,
        and the pass upgrades the history to a seq cutoff."""
        a, b = pair
        old = a.create({"S": "old"})
        clock.advance(1)
        Replicator(journal=False).pull(b, a)
        assert b.replication_seq == {}  # scan replicator records no seqs
        clock.advance(1)
        fresh = a.create({"S": "fresh"})
        clock.advance(1)
        stats = Replicator(journal=True).pull(b, a)
        assert stats.docs_transferred == 1
        assert fresh.unid in b and old.unid in b
        assert b.replication_seq[(a.server, "receive")] == a.update_seq
        clock.advance(1)
        assert Replicator(journal=True).pull(b, a).docs_examined == 0

    def test_journal_and_scan_replicas_converge_identically(self):
        def run(journal: bool) -> str:
            clock = VirtualClock()
            base = NotesDatabase(
                "conv.nsf", clock=clock, rng=random.Random(99), server="a1"
            )
            other = base.new_replica("a2")
            rng = random.Random(42)
            rep = Replicator(journal=journal)
            for round_no in range(4):
                for index in range(5):
                    base.create({"N": f"{round_no}.{index}"})
                    clock.advance(0.3)
                if base.unids():
                    other_doc = rng.choice(base.unids())
                    base.update(other_doc, {"S": "touched"})
                clock.advance(1)
                rep.replicate(base, other)
                clock.advance(1)
            assert converged([base, other])
            return base.state_fingerprint()

        assert run(journal=True) == run(journal=False)


class TestAgentSeqTracking:
    def test_agent_sees_replicated_documents(self, pair, clock, rep):
        from repro.agents import Agent, AgentRunner

        a, b = pair
        runner = AgentRunner(b)
        seen = []
        agent = runner.add(
            Agent(name="inbox", action=lambda d, database: seen.append(d.unid))
        )
        doc = a.create({"S": "mail"})
        clock.advance(1)
        rep.pull(b, a)
        runner.run_agent(agent)
        assert seen == [doc.unid]
        clock.advance(1)
        runner.run_agent(agent)
        assert seen == [doc.unid]  # not reprocessed


class TestJournalPersistence:
    @pytest.fixture
    def store(self, tmp_path):
        def open_db(seed=1):
            engine = StorageEngine(str(tmp_path / "nsf"))
            clock = VirtualClock()
            db = NotesDatabase(
                "feed.nsf", clock=clock, rng=random.Random(seed), engine=engine
            )
            return engine, db

        return open_db

    def test_update_seq_survives_reopen(self, store):
        engine, db = store()
        doc = db.create({"S": "a"})
        db.clock.advance(1)
        db.update(doc.unid, {"S": "b"})
        db.create({"S": "c"})
        high_water = db.update_seq
        engine.close()
        _, reloaded = store(seed=2)
        assert reloaded.update_seq == high_water

    def test_feed_continues_across_reopen(self, store):
        engine, db = store()
        for index in range(5):
            db.create({"N": index})
            db.clock.advance(0.1)
        mark = db.update_seq
        db.clock.advance(1)
        changed = db.create({"S": "late"})
        engine.close()
        _, reloaded = store(seed=2)
        docs, stubs = reloaded.changed_since_seq(mark)
        assert [d.unid for d in docs] == [changed.unid]
        assert stubs == []

    def test_stub_seq_survives_reopen(self, store):
        engine, db = store()
        doc = db.create({"S": "x"})
        db.clock.advance(1)
        mark = db.update_seq
        db.delete(doc.unid)
        engine.close()
        _, reloaded = store(seed=2)
        docs, stubs = reloaded.changed_since_seq(mark)
        assert docs == []
        assert [s.unid for s in stubs] == [doc.unid]

    def test_fingerprint_stable_across_reopen(self, store):
        engine, db = store()
        for index in range(8):
            db.create({"N": index})
        db.delete(db.unids()[0])
        before = db.state_fingerprint()
        engine.close()
        _, reloaded = store(seed=2)
        assert reloaded.state_fingerprint() == before


class TestRollingFingerprint:
    def test_matches_recompute_through_mixed_workload(self, db, clock):
        rng = random.Random(7)
        for step in range(200):
            clock.advance(0.5)
            roll = rng.random()
            unids = db.unids()
            if roll < 0.45 or not unids:
                db.create({"N": step, "Body": f"body {step}"})
            elif roll < 0.70:
                db.update(rng.choice(unids), {"S": f"edit {step}"})
            elif roll < 0.80:
                db.delete(rng.choice(unids))
            elif roll < 0.88:
                db.soft_delete(rng.choice(unids))
            elif roll < 0.94 and db.trash:
                db.restore(rng.choice(db.trash))
            elif db.trash:
                db.empty_trash()
            else:
                db.purge_stubs(older_than=0.0)
            assert db.state_fingerprint() == db._fingerprint_recompute()

    def test_purge_and_cutoff_keep_fingerprint_incremental(self, db, clock):
        for index in range(10):
            db.create({"N": index})
            clock.advance(1)
        for unid in db.unids()[:3]:
            db.delete(unid)
        clock.advance(1000)
        db.purge_stubs(older_than=10.0)
        db.cutoff_delete(older_than=10.0)
        assert db.state_fingerprint() == db._fingerprint_recompute()
