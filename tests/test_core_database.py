"""Tests for NotesDatabase CRUD, stubs, trash, events, hierarchy."""

import pytest

from repro.core import ChangeKind, NotesDatabase
from repro.errors import DatabaseError, DocumentNotFound


class TestCrud:
    def test_create_assigns_identity(self, db, clock):
        doc = db.create({"Subject": "x"}, author="alice")
        assert len(doc.unid) == 32
        assert doc.seq == 1
        assert doc.note_id == 1
        assert doc.updated_by == ["alice"]
        assert doc.created == clock.now

    def test_note_ids_sequential(self, db):
        docs = [db.create({"S": str(i)}) for i in range(3)]
        assert [d.note_id for d in docs] == [1, 2, 3]

    def test_get_by_note_id(self, db):
        doc = db.create({"S": "x"})
        assert db.get_by_note_id(doc.note_id).unid == doc.unid
        with pytest.raises(DocumentNotFound):
            db.get_by_note_id(999)

    def test_update_bumps_seq_and_merges(self, db, clock):
        doc = db.create({"A": "1", "B": "2"})
        clock.advance(5)
        db.update(doc.unid, {"B": "changed", "C": "new"})
        fresh = db.get(doc.unid)
        assert fresh.seq == 2
        assert fresh.get("A") == "1"
        assert fresh.get("B") == "changed"
        assert fresh.get("C") == "new"
        assert fresh.modified == clock.now

    def test_update_remove_items(self, db):
        doc = db.create({"A": "1", "B": "2"})
        db.update(doc.unid, {}, remove_items=["B"])
        assert "B" not in db.get(doc.unid)

    def test_update_missing_rejected(self, db):
        with pytest.raises(DocumentNotFound):
            db.update("F" * 32, {"A": "x"})

    def test_item_times_stamped(self, db, clock):
        doc = db.create({"A": "1"})
        create_stamp = doc.item_times["A"]
        clock.advance(1)
        db.update(doc.unid, {"B": "2"})
        assert doc.item_times["A"] == create_stamp
        assert doc.item_times["B"] > create_stamp

    def test_len_and_unids(self, db):
        created = {db.create({"S": str(i)}).unid for i in range(4)}
        assert len(db) == 4
        assert set(db.unids()) == created

    def test_contains(self, db):
        doc = db.create({"S": "x"})
        assert doc.unid in db
        assert ("0" * 32) not in db


class TestDeletionStubs:
    def test_delete_leaves_stub(self, db, clock):
        doc = db.create({"S": "x"})
        clock.advance(2)
        stub = db.delete(doc.unid, author="bob")
        assert doc.unid not in db
        assert stub.seq == doc.seq + 1
        assert stub.deleted_by == "bob"
        assert db.stubs[doc.unid] == stub

    def test_get_after_delete_raises(self, db):
        doc = db.create({"S": "x"})
        db.delete(doc.unid)
        with pytest.raises(DocumentNotFound):
            db.get(doc.unid)

    def test_purge_removes_old_stubs(self, db, clock):
        doc = db.create({"S": "x"})
        clock.advance(1)
        db.delete(doc.unid)
        clock.advance(100)
        young = db.create({"S": "y"})
        db.delete(young.unid)
        purged = db.purge_stubs(older_than=50.0)
        assert purged == 1
        assert doc.unid not in db.stubs
        assert young.unid in db.stubs

    def test_changed_since_includes_stubs(self, db, clock):
        doc = db.create({"S": "x"})
        clock.advance(10)
        db.delete(doc.unid)
        docs, stubs = db.changed_since(5.0)
        assert docs == [] and len(stubs) == 1

    def test_changed_since_uses_local_time(self, db, clock):
        """A replicator-installed doc counts as changed now, not at its own
        modified time — the property multi-hop replication depends on."""
        from repro.core import Document

        old = Document("D" * 32, seq=3, seq_time=(1.0, 1), created=1.0, modified=1.0)
        clock.advance(100)
        db.raw_put(old)
        docs, _ = db.changed_since(50.0)
        assert [d.unid for d in docs] == ["D" * 32]


class TestTrash:
    def test_soft_delete_hides(self, db):
        doc = db.create({"S": "x"})
        db.soft_delete(doc.unid)
        assert doc.unid not in db
        assert len(db) == 0
        assert db.trash == [doc.unid]
        assert db.try_get(doc.unid) is None

    def test_restore(self, db):
        doc = db.create({"S": "x"})
        db.soft_delete(doc.unid)
        db.restore(doc.unid)
        assert doc.unid in db

    def test_restore_not_trashed_rejected(self, db):
        doc = db.create({"S": "x"})
        with pytest.raises(DatabaseError):
            db.restore(doc.unid)

    def test_empty_trash_hard_deletes(self, db):
        docs = [db.create({"S": str(i)}) for i in range(3)]
        db.soft_delete(docs[0].unid)
        db.soft_delete(docs[1].unid)
        assert db.empty_trash() == 2
        assert len(db.stubs) == 2
        assert len(db) == 1


class TestHierarchy:
    def test_responses_sorted_by_creation(self, db, clock):
        topic = db.create({"S": "topic"})
        first = db.create({"S": "r1"}, parent=topic.unid)
        clock.advance(1)
        second = db.create({"S": "r2"}, parent=topic.unid)
        assert [r.unid for r in db.responses(topic.unid)] == [first.unid, second.unid]

    def test_descendants_depth_first(self, db, clock):
        topic = db.create({"S": "t"})
        child = db.create({"S": "c"}, parent=topic.unid)
        clock.advance(1)
        grandchild = db.create({"S": "g"}, parent=child.unid)
        sibling = db.create({"S": "s"}, parent=topic.unid)
        unids = [d.unid for d in db.descendants(topic.unid)]
        assert unids == [child.unid, grandchild.unid, sibling.unid]

    def test_unknown_parent_rejected(self, db):
        with pytest.raises(DocumentNotFound):
            db.create({"S": "orphan"}, parent="E" * 32)


class TestEvents:
    def test_event_sequence(self, db):
        seen = []
        db.subscribe(lambda kind, payload, old: seen.append(kind))
        doc = db.create({"S": "x"})
        db.update(doc.unid, {"S": "y"})
        db.delete(doc.unid)
        assert seen == [ChangeKind.CREATE, ChangeKind.UPDATE, ChangeKind.DELETE]

    def test_update_event_carries_old_copy(self, db):
        captured = {}

        def observer(kind, payload, old):
            if kind == ChangeKind.UPDATE:
                captured["old"] = old.get("S")
                captured["new"] = payload.get("S")

        doc = db.create({"S": "before"})
        db.subscribe(observer)
        db.update(doc.unid, {"S": "after"})
        assert captured == {"old": "before", "new": "after"}

    def test_unsubscribe(self, db):
        seen = []
        observer = lambda *a: seen.append(1)
        db.subscribe(observer)
        db.create({"S": "x"})
        db.unsubscribe(observer)
        db.create({"S": "y"})
        assert len(seen) == 1


class TestProfilesAndReplicas:
    def test_profile_get_or_create(self, db):
        profile = db.profile("settings", "alice")
        again = db.profile("settings", "alice")
        assert profile.unid == again.unid
        other = db.profile("settings", "bob")
        assert other.unid != profile.unid

    def test_new_replica_shares_replica_id(self, db):
        replica = db.new_replica("beta")
        assert replica.replica_id == db.replica_id
        assert replica.server == "beta"
        assert len(replica) == 0

    def test_replica_unids_do_not_collide(self, db):
        replica = db.new_replica("beta")
        mine = {db.create({"S": str(i)}).unid for i in range(50)}
        theirs = {replica.create({"S": str(i)}).unid for i in range(50)}
        assert not (mine & theirs)
