"""E9 — Security enforcement overhead.

Claims: ACL resolution is a per-user lookup whose cost grows with entry
count (groups and wildcards must be consulted on a resolution miss), and
reader-field filtering adds a modest per-document cost to view reads —
acceptable overhead for document-level security, which is the trade the
paper describes.
"""

from __future__ import annotations

import random
import time

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.core import ItemType
from repro.security import AccessControlList, AclLevel
from repro.views import View, ViewColumn


def build_acl(n_entries: int) -> AccessControlList:
    groups = {
        f"group{g}": [f"user{g * 10 + m}/Acme" for m in range(10)]
        for g in range(max(n_entries // 4, 1))
    }
    acl = AccessControlList(default_level=AclLevel.READER, groups=groups)
    for index in range(n_entries):
        if index % 4 == 0:
            acl.add(f"group{index // 4}", AclLevel.EDITOR)
        else:
            acl.add(f"direct{index}/Acme", AclLevel.AUTHOR)
    return acl


def resolution_cost(n_entries: int, probes: int = 500) -> tuple[float, float]:
    """(cold µs, cached µs) per resolve."""
    acl = build_acl(n_entries)
    rng = random.Random(n_entries)
    users = [f"user{rng.randrange(200)}/Acme" for _ in range(probes)]
    start = time.perf_counter()
    for user in users:
        acl.resolve(user)
        acl._cache.clear()  # defeat the cache: measure the real lookup
    cold = (time.perf_counter() - start) / probes * 1e6
    acl.resolve(users[0])
    start = time.perf_counter()
    for index in range(probes):
        acl.resolve(users[0])
    cached = (time.perf_counter() - start) / probes * 1e6
    return cold, cached


def view_filter_cost(restricted_pct: int) -> tuple[float, float, int]:
    deployment = build_deployment(1, seed=restricted_pct + 9)
    db = deployment.databases[0]
    db.acl = build_acl(16)
    populate(db, 400, deployment.rng, advance=0.0)
    rng = deployment.rng
    for unid in db.unids():
        if rng.randrange(100) < restricted_pct:
            db.get(unid).set("Access", ["group0"], ItemType.READERS)
    view = View(db, "All", selection='SELECT Form = "Memo"',
                columns=[ViewColumn(title="Subject", item="Subject")])

    start = time.perf_counter()
    unfiltered = sum(1 for _ in view.documents())
    plain_seconds = time.perf_counter() - start

    # user155/Acme is in no group: restricted documents vanish for them.
    start = time.perf_counter()
    visible = sum(1 for _ in view.documents(as_user="user155/Acme"))
    filtered_seconds = time.perf_counter() - start
    assert unfiltered == 400
    return plain_seconds, filtered_seconds, visible


def test_e09_resolution_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n_entries in (4, 32, 256):
            cold, cached = resolution_cost(n_entries)
            rows.append([n_entries, round(cold, 2), round(cached, 3)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E9a  ACL resolution cost vs entry count",
        ["ACL entries", "cold µs", "cached µs"],
        rows,
        note="cold cost grows with entries to consult; the cache flattens it",
    )
    cold_costs = [r[1] for r in rows]
    assert cold_costs[-1] > cold_costs[0]
    assert all(r[2] < r[1] for r in rows)  # cache always wins


def test_e09_reader_filter_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for restricted_pct in (0, 25, 75):
            plain, filtered, visible = view_filter_cost(restricted_pct)
            rows.append([
                f"{restricted_pct}%", visible,
                round(plain * 1000, 2), round(filtered * 1000, 2),
                round(filtered / 400 * 1e6, 1),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E9b  reader-field filtering of a 400-doc view read (user in no group)",
        ["restricted", "visible docs", "plain ms", "filtered ms",
         "filtered µs/doc"],
        rows,
        note="restricted documents disappear; cost is a bounded per-doc check",
    )
    visibles = [r[1] for r in rows]
    assert visibles[0] == 400
    assert visibles[2] < visibles[1] < visibles[0]
    # the per-document check stays bounded (well under a millisecond)
    assert all(r[4] < 500 for r in rows)


def test_e09_resolve_speed(benchmark):
    acl = build_acl(64)
    benchmark(lambda: acl.resolve("user42/Acme"))


def test_e09_read_check_speed(benchmark):
    deployment = build_deployment(1, seed=99)
    db = deployment.databases[0]
    acl = build_acl(16)
    populate(db, 10, deployment.rng, advance=0.0)
    doc = db.get(db.unids()[0])
    doc.set("Access", ["group0", "[Admin]"], ItemType.READERS)
    benchmark(lambda: acl.can_read("user5/Acme", doc))
