"""Benchmark smoke: a <60s sanity pass over the experiment shapes.

Runs shrunken versions of the headline experiment cells without the
pytest-benchmark timing machinery, so CI can assert the qualitative
claims (incremental beats full copy, the change feed examines the delta,
the cluster backlog drains) on every PR without paying for the full
sweeps. Run with::

    pytest benchmarks/bench_smoke.py -q
"""

from __future__ import annotations

from repro.bench.runners import (
    build_catchup_corpus,
    build_changefeed_db,
    build_deployment,
    catchup_view,
    populate,
)
from repro.cluster import ClusterReplicator
from repro.fulltext import FullTextIndex
from repro.replication import Replicator, converged


def test_smoke_incremental_beats_full_copy():
    deployment = build_deployment(2, seed=1)
    a, b = deployment.databases
    populate(a, 200, deployment.rng)
    deployment.clock.advance(1)
    rep = Replicator()
    rep.pull(b, a)
    deployment.clock.advance(1)
    for unid in deployment.rng.sample(a.unids(), 5):
        a.update(unid, {"Status": "edited"})
    deployment.clock.advance(1)
    incremental = rep.pull(b, a)
    full = rep.full_copy(b, a)
    assert incremental.docs_transferred == 5
    assert full.bytes_transferred > 10 * max(incremental.bytes_transferred, 1)
    assert converged([a, b])


def test_smoke_changefeed_examines_delta():
    db, mark_seq, mark_time = build_changefeed_db(5_000, 50)
    docs, stubs = db.changed_since_seq(mark_seq)
    assert len(docs) == 50 and not stubs
    assert db.last_scan_cost <= 50
    db.changed_since_scan(mark_time)
    assert db.last_scan_cost >= 5_000


def test_smoke_replication_pass_scans_delta_only():
    deployment = build_deployment(2, seed=13)
    a, b = deployment.databases
    populate(a, 500, deployment.rng, body_bytes=64)
    deployment.clock.advance(1)
    rep = Replicator()
    rep.pull(b, a)
    deployment.clock.advance(1)
    for unid in deployment.rng.sample(a.unids(), 10):
        a.update(unid, {"Status": "tick"})
    deployment.clock.advance(1)
    stats = rep.pull(b, a)
    assert stats.docs_transferred == 10
    assert stats.docs_scanned <= 10


def test_smoke_cluster_backlog_drains():
    deployment = build_deployment(3, seed=7)
    a, b, c = deployment.databases
    cluster = ClusterReplicator(deployment.network)
    for member in deployment.databases:
        cluster.attach(member)
    a.create({"S": "live"})
    assert len(b) == len(c) == 1
    deployment.network.partition(a.server, c.server)
    deployment.network.partition(b.server, c.server)
    for index in range(5):
        a.create({"S": f"offline {index}"})
    assert len(b) == 6 and len(c) == 1
    assert cluster.backlog_size >= 5
    deployment.network.partition(a.server, c.server, partitioned=False)
    deployment.network.partition(b.server, c.server, partitioned=False)
    cluster.catch_up()
    assert len(c) == 6
    assert cluster.backlog_size == 0
    # The drain came from the update journal, not a queued-event table.
    assert cluster.stats.replayed >= 5


def test_smoke_segment_saves_append_then_fold(tmp_path):
    """E15 shape: a checkpoint save appends one segment per delta; the
    single-segment ablation folds everything back down every save."""
    from repro.storage import SINGLE_SEGMENT

    engine, db = build_catchup_corpus(str(tmp_path / "segs"), 300, 10)
    try:
        view = catchup_view(db)  # warm load + top-up
        index = FullTextIndex(db, persist=True)
        view.save_index()
        index.save_checkpoint()
        view_stats = view.catch_up.segment_stats["entries"]
        ft_stats = index.catch_up.segment_stats["docs"]
        # The save appended the 10-doc delta as a second segment instead
        # of rewriting the 300-entry base.
        assert view_stats.segments == 2
        assert view_stats.records_appended <= 310  # base + the delta
        assert ft_stats.segments == 2
        assert view.catch_up.merges == index.catch_up.merges == 0

        db.clock.advance(1)
        for unid in db.rng.sample(db.unids(), 10):
            db.update(unid, {"Subject": "fold me"})
        view.merge_policy = SINGLE_SEGMENT
        index.merge_policy = SINGLE_SEGMENT
        view.save_index()
        index.save_checkpoint()
        assert view_stats.segments == 1
        assert ft_stats.segments == 1
        assert view.catch_up.merges > 0 and view_stats.bytes_folded > 0
        assert index.catch_up.merges > 0 and ft_stats.bytes_folded > 0
        index.close()
        view.close()
    finally:
        engine.close()


def test_smoke_catchup_rides_the_delta(tmp_path):
    """E14 shape: every seq-checkpointed consumer tops up from the journal."""
    engine, db = build_catchup_corpus(str(tmp_path / "smoke"), 300, 10)
    try:
        view = catchup_view(db, mode="manual", persist=False)
        baseline = catchup_view(
            db, mode="manual", persist=False, journal=False
        )
        db.clock.advance(1)
        for unid in db.rng.sample(db.unids(), 10):
            db.update(unid, {"Subject": "smoke edit"})
        assert view.refresh() == "topup"
        assert view.rebuilds == 1  # the constructor's, none since
        assert baseline.refresh() == "rebuild"
        assert view.all_unids() == baseline.all_unids()

        warm = FullTextIndex(db, persist=True)
        assert warm.loaded_from_disk
        assert warm.catch_up.last_path == "topup"
        # Both deltas (the corpus's 10 and ours) replay; the 300-doc
        # base segment does not.
        assert warm.catch_up.notes_replayed <= 20
        assert len(warm.search("smoke")) == 10
        warm.close()
        view.close()
        baseline.close()
    finally:
        engine.close()


def test_smoke_faulty_replication_resumes_from_cursor():
    """E16 shape: under an identical seeded fault plan the resumable
    replicator converges at the fault-free wire cost while the
    all-or-nothing ablation re-ships interrupted exchanges."""
    from benchmarks.bench_e16_faults import run_cell

    res = run_cell(0.3, resumable=True)
    abl = run_cell(0.3, resumable=False)
    assert res[6]  # converged despite drops and mid-exchange aborts
    assert res[5] > 0  # cursors actually checkpointed mid-pass
    assert abl[1] > res[1]  # the ablation paid for its restarts
    assert run_cell(0.3, resumable=True) == res  # seed => same run
