"""E5 — Incremental view-index maintenance vs. full rebuild.

Claim: keeping the view index up to date from change events costs O(delta ·
log n), while a rebuild costs O(n log n); so for small deltas the
incremental path wins by orders of magnitude and the gap grows with
database size.
"""

from __future__ import annotations

import time

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.views import SortOrder, View, ViewColumn


def make_view(db, mode, journal=True):
    return View(
        db,
        "bench",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Categories", item="Categories", categorized=True),
            ViewColumn(title="Subject", item="Subject", sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
        mode=mode,
        journal=journal,
    )


def run_cell(n_docs: int, delta: int):
    deployment = build_deployment(1, seed=n_docs)
    db = deployment.databases[0]
    populate(db, n_docs, deployment.rng, advance=0.0)
    incremental_view = make_view(db, "auto")
    # journal=False keeps this the genuine rebuild baseline — with the
    # journal on, refresh() would top up from changed_since_seq (E14).
    manual_view = make_view(db, "manual", journal=False)
    unids = db.unids()

    start = time.perf_counter()
    for index in range(delta):
        db.update(unids[index], {"Subject": f"moved {index}"})
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    manual_view.refresh()
    rebuild_seconds = time.perf_counter() - start
    assert incremental_view.all_unids() == manual_view.all_unids()
    return incremental_seconds, rebuild_seconds


def test_e05_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (500, 2000):
            for delta in (1, 20):
                incremental, rebuild = run_cell(n_docs, delta)
                rows.append([
                    n_docs, delta,
                    round(incremental * 1000, 3), round(rebuild * 1000, 3),
                    round(rebuild / max(incremental, 1e-9), 1),
                ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E5  view maintenance: incremental vs rebuild (ms)",
        ["docs", "delta", "incremental ms", "rebuild ms", "rebuild/incr"],
        rows,
        note="incremental scales with delta; rebuild scales with db size",
    )

    def cell(n, d):
        return next(r for r in rows if r[0] == n and r[1] == d)

    assert all(r[4] > 2 for r in rows), "incremental must win everywhere"
    # rebuild grows with n at fixed delta; ratio grows with n
    assert cell(2000, 1)[3] > cell(500, 1)[3]
    assert cell(2000, 1)[4] > cell(500, 1)[4]


def test_e05_warm_open_table(benchmark, tmp_path):
    """View-open cost: rebuild (cold) vs loading the persisted index (warm)
    — why the NSF stored view indexes."""
    import random

    from repro.core import NotesDatabase
    from repro.sim import VirtualClock
    from repro.storage import StorageEngine

    rows = []

    def persisted_view(db, persist):
        return View(
            db, "Persisted",
            selection='SELECT Form = "Memo"',
            columns=[
                ViewColumn(title="Categories", item="Categories",
                           categorized=True),
                ViewColumn(title="Subject", item="Subject",
                           sort=SortOrder.ASCENDING),
            ],
            persist=persist,
        )

    def sweep():
        import gc

        rows.clear()
        for n_docs in (500, 2000):
            path = str(tmp_path / f"warm{n_docs}")
            engine = StorageEngine(path)
            db = NotesDatabase("w.nsf", clock=VirtualClock(),
                               rng=random.Random(n_docs), engine=engine)
            populate(db, n_docs, random.Random(1), advance=0.0)

            gc.collect()
            cold_times = []
            for _ in range(3):
                view = persisted_view(db, persist=True)
                start = time.perf_counter()
                view.rebuild()
                cold_times.append(time.perf_counter() - start)
                expected = view.all_unids()
                view.close()
            engine.close()

            engine2 = StorageEngine(path)
            db2 = NotesDatabase("w.nsf", clock=VirtualClock(),
                                rng=random.Random(2), engine=engine2)
            gc.collect()
            warm_times = []
            for _ in range(3):
                start = time.perf_counter()
                warm = persisted_view(db2, persist=True)
                warm_times.append(time.perf_counter() - start)
                assert warm.loaded_from_disk
                assert warm.all_unids() == expected
                warm.db.unsubscribe(warm._on_change)  # detach without saving
            engine2.close()
            cold = min(cold_times)
            warm_seconds = min(warm_times)
            rows.append([
                n_docs, round(cold * 1000, 2), round(warm_seconds * 1000, 2),
                round(cold / max(warm_seconds, 1e-9), 1),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E5b  view open: cold rebuild vs persisted index load (ms)",
        ["docs", "cold open ms", "warm open ms", "cold/warm"],
        rows,
        note="a stored view index skips formula evaluation and sorting",
    )
    assert all(r[3] > 1.5 for r in rows)


def test_e05_incremental_update_speed(benchmark):
    deployment = build_deployment(1, seed=55)
    db = deployment.databases[0]
    populate(db, 1000, deployment.rng, advance=0.0)
    view = make_view(db, "auto")
    unids = db.unids()
    counter = {"i": 0}

    def one_update():
        counter["i"] += 1
        db.update(unids[counter["i"] % 1000],
                  {"Subject": f"s{counter['i']}"})

    benchmark(one_update)
    assert len(view) == 1000


def test_e05_rebuild_speed(benchmark):
    deployment = build_deployment(1, seed=56)
    db = deployment.databases[0]
    populate(db, 1000, deployment.rng, advance=0.0)
    view = make_view(db, "manual")
    benchmark(view.rebuild)
