"""E13 — Change-feed cost vs. database size (update-sequence journal).

Claim (paper shape): with a by-seq journal the cost of finding "what
changed since the last pass" is proportional to the *delta*, independent
of database size — the property CouchDB's ``_changes`` feed inherits from
Notes-style incremental replication. The pre-journal full scan (kept as
the ``journal=False`` ablation) pays O(database) per pass, so its line
grows linearly while the journal's stays flat.
"""

from __future__ import annotations

import time

from repro.bench.runners import build_changefeed_db, build_deployment, populate
from repro.bench.tables import print_table
from repro.replication import Replicator

N_CHANGES = 100


def run_cell(n_docs: int) -> tuple[int, float, int, float]:
    """(journal candidates, journal s, scan candidates, scan s) for one
    ``changed_since`` call on a database with ``N_CHANGES`` fresh edits."""
    db, mark_seq, mark_time = build_changefeed_db(n_docs, N_CHANGES)
    start = time.perf_counter()
    db.changed_since_seq(mark_seq)
    journal_seconds = time.perf_counter() - start
    journal_cost = db.last_scan_cost
    start = time.perf_counter()
    db.changed_since_scan(mark_time)
    scan_seconds = time.perf_counter() - start
    scan_cost = db.last_scan_cost
    return journal_cost, journal_seconds, scan_cost, scan_seconds


def test_e13_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (2_000, 10_000, 50_000):
            journal_cost, journal_s, scan_cost, scan_s = run_cell(n_docs)
            rows.append(
                [n_docs, journal_cost, f"{journal_s * 1e6:.0f}",
                 scan_cost, f"{scan_s * 1e6:.0f}",
                 round(scan_s / max(journal_s, 1e-9), 1)]
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"E13  changed_since cost vs database size ({N_CHANGES} changed docs)",
        ["docs", "journal cand", "journal us", "scan cand", "scan us",
         "scan/journal"],
        rows,
        note="journal examines the delta; the ablation scans the database",
    )
    by_size = {r[0]: r for r in rows}
    # The journal line is flat: candidates examined equal the change count
    # at every size — including the acceptance point (50k docs, 100
    # changes, <= ~100 candidates).
    assert all(r[1] <= N_CHANGES for r in rows)
    assert by_size[50_000][1] == by_size[2_000][1]
    # The ablation line is linear in database size.
    assert all(r[3] >= r[0] for r in rows)
    assert by_size[50_000][3] >= 20 * by_size[2_000][1]
    # At the largest size the suffix read is decisively faster.
    assert by_size[50_000][5] > 5


def test_e13_replication_pass_examines_delta(benchmark):
    """The same property measured end-to-end through a replication pass:
    ``docs_scanned`` tracks journal entries visited, not database size."""
    deployment = build_deployment(3, seed=131)
    a, b, c = deployment.databases
    populate(a, 2_000, deployment.rng, body_bytes=64, advance=0.001)
    deployment.clock.advance(1)
    journal_rep = Replicator(journal=True)
    scan_rep = Replicator(journal=False)
    journal_rep.pull(b, a)
    scan_rep.pull(c, a)
    deployment.clock.advance(1)

    def one_round():
        for unid in deployment.rng.sample(a.unids(), 20):
            a.update(unid, {"Status": "tick"})
        deployment.clock.advance(1)
        via_journal = journal_rep.pull(b, a)
        via_scan = scan_rep.pull(c, a)
        deployment.clock.advance(1)
        return via_journal, via_scan

    via_journal, via_scan = benchmark.pedantic(
        one_round, rounds=1, iterations=1
    )
    assert via_journal.docs_transferred == via_scan.docs_transferred == 20
    assert via_journal.docs_scanned <= 20
    assert via_scan.docs_scanned >= 2_000
