"""E16 — Convergence under an unreliable network (resumable exchanges).

Claim: with per-link journal-seq cursors checkpointed mid-exchange, the
work scheduled replication does to converge tracks what is actually
*missing* — an exchange killed by a drop or a mid-flight abort keeps
everything it already applied and resumes from its cursor, so the bytes
moved stay at the fault-free minimum at every drop probability. The
all-or-nothing ablation (``resumable=False``) discards an interrupted
exchange wholesale and restarts it from the old cursor, so it re-ships
the same suffix over and over: its bytes and rounds curves bend up
sharply as the drop probability rises.

Both arms run against the *identical* seeded :class:`FaultPlan`, so the
comparison isolates resumability from luck.
"""

from __future__ import annotations

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.errors import ReplicationError
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    converged,
)
from repro.sim import FaultPlan, LinkFaultProfile

DROP_PROBABILITIES = (0.0, 0.15, 0.3, 0.5)
N_DOCS = 200
N_SERVERS = 4
FAULT_SEED = 0xE16
MAX_ROUNDS = 1500
# Aborts are the headline fault: likely per attempt, with a budget well
# under the initial 200-doc suffix, so the big exchanges keep dying
# mid-flight and only a checkpointed cursor preserves their progress.
ABORT_PROBABILITY = 0.85
ABORT_AFTER = (16, 64)


def run_cell(drop_p: float, resumable: bool, seed: int = FAULT_SEED):
    """One convergence run; returns (rounds, bytes, transferred, scanned,
    failed_edges, checkpoints, converged?).

    ``rounds`` is ``MAX_ROUNDS`` when the run never converged.
    """
    deployment = build_deployment(N_SERVERS, seed=611)
    populate(deployment.origin, N_DOCS, deployment.rng, body_bytes=400)
    deployment.clock.advance(1)
    deployment.network.install_faults(FaultPlan(
        seed,
        deployment.clock,
        LinkFaultProfile(
            drop_probability=drop_p,
            abort_probability=ABORT_PROBABILITY,
            abort_after=ABORT_AFTER,
        ),
    ))
    servers = [f"srv{i}" for i in range(N_SERVERS)]
    replicator = Replicator(
        network=deployment.network, batch_size=16, resumable=resumable
    )
    scheduler = ReplicationScheduler(
        deployment.network, ReplicationTopology.mesh(servers), replicator
    )
    try:
        rounds = scheduler.rounds_to_convergence(
            deployment.databases, max_rounds=MAX_ROUNDS
        )
    except ReplicationError:
        rounds = MAX_ROUNDS
    total = scheduler.total
    return (
        rounds,
        deployment.network.stats.bytes_sent,
        total.docs_transferred,
        total.docs_scanned,
        total.edges_failed,
        total.cursor_checkpoints,
        converged(deployment.databases),
    )


def test_e16_table(benchmark):
    rows = []
    cells = {}

    def sweep():
        rows.clear()
        cells.clear()
        for drop_p in DROP_PROBABILITIES:
            res = run_cell(drop_p, resumable=True)
            abl = run_cell(drop_p, resumable=False)
            cells[drop_p] = (res, abl)
            rows.append([
                drop_p,
                res[0], res[1], res[3], res[5],
                abl[0] if abl[6] else f">{MAX_ROUNDS}",
                abl[1], abl[3],
                round(abl[1] / max(res[1], 1), 2),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"E16  convergence vs drop probability "
        f"({N_SERVERS}-server mesh, {N_DOCS} docs, aborts on)",
        ["drop p", "rounds", "bytes", "scanned", "ckpts",
         "abl rounds", "abl bytes", "abl scanned", "abl/res bytes"],
        rows,
        note="both arms replay the identical seeded fault plan; the "
             "ablation restarts interrupted exchanges from scratch",
    )
    base = cells[0.0][0]
    for drop_p in DROP_PROBABILITIES:
        res, _ = cells[drop_p]
        # The resumable replicator converges at every drop rate —
        # including the acceptance point p=0.3 — and its installs stay
        # at the logical minimum: each doc lands on each of the other
        # servers exactly once, however often exchanges were killed.
        assert res[6], f"resumable did not converge at p={drop_p}"
        assert res[2] == (N_SERVERS - 1) * N_DOCS
        # Cursor checkpoints keep the faulty runs' wire and journal cost
        # pinned near the fault-free minimum: no interrupted exchange
        # re-ships what it already applied or re-reads the full suffix.
        assert res[5] > 0
        assert res[1] <= 1.2 * base[1]
        assert res[3] <= 2 * base[3]
    res_03, abl_03 = cells[0.3]
    # The ablation thrashes at the acceptance point: several times the
    # rounds and well over the bytes of the resumable arm.
    assert abl_03[0] >= 3 * res_03[0]
    assert abl_03[1] >= 1.5 * res_03[1]


def test_e16_identical_seed_identical_run():
    """Acceptance: one fault-plan seed replays the identical schedule,
    transfer totals and final state."""
    assert run_cell(0.3, resumable=True) == run_cell(0.3, resumable=True)
