"""E14 — Seq-checkpointed catch-up: reopen/refresh cost rides the delta.

Claim: with every derived structure checkpointing the update seq it last
indexed, bringing a stale consumer current costs O(log n + changes) —
flat in database size, linear in the delta — while the ablation
(``journal=False``, the pre-checkpoint behaviour) pays O(database) to
rebuild. Measured on both consumers the checkpoint serves:

* a manual view refreshed after a 100-document delta (top-up vs rebuild)
* the full-text index reopened from its persisted checkpoint (re-tokenize
  the delta vs re-tokenize everything)
"""

from __future__ import annotations

import gc
import time

from repro.bench.runners import build_catchup_corpus, catchup_view
from repro.bench.tables import print_table
from repro.fulltext import FullTextIndex

DELTA = 100


def _timed(fn):
    """Time ``fn`` with the allocator settled — a collection triggered by
    the previous path's garbage must not be billed to this one."""
    gc.collect()
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_cell(tmp_path, n_docs: int):
    engine, db = build_catchup_corpus(
        str(tmp_path / f"catchup{n_docs}"), n_docs, DELTA
    )
    try:
        # -- view refresh: top-up vs rebuild on identical staleness ------
        topup_view = catchup_view(db, mode="manual", persist=False)
        rebuild_view = catchup_view(
            db, mode="manual", persist=False, journal=False
        )
        db.clock.advance(1)
        for unid in db.rng.sample(db.unids(), DELTA):
            db.update(unid, {"Subject": f"moved {db.rng.random():.4f}"})

        path, view_topup = _timed(topup_view.refresh)
        assert path == "topup", path

        path, view_rebuild = _timed(rebuild_view.refresh)
        assert path == "rebuild", path
        assert topup_view.all_unids() == rebuild_view.all_unids()

        # -- full-text reopen: checkpoint load + top-up vs full rebuild --
        warm, ft_topup = _timed(lambda: FullTextIndex(db, persist=True))
        assert warm.loaded_from_disk and warm.catch_up.last_path == "topup"

        cold, ft_rebuild = _timed(lambda: FullTextIndex(db))
        # postings_snapshot materializes the lazy base segment — done
        # after the clocks stop so the equivalence check isn't billed.
        assert warm.postings_snapshot() == cold.postings_snapshot()
        assert warm.document_count == cold.document_count
        warm.close()
        cold.close()
        return view_topup, view_rebuild, ft_topup, ft_rebuild
    finally:
        engine.close()


def test_e14_catchup_table(benchmark, tmp_path):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (5_000, 50_000):
            view_topup, view_rebuild, ft_topup, ft_rebuild = run_cell(
                tmp_path, n_docs
            )
            catchup = view_topup + ft_topup
            rebuild = view_rebuild + ft_rebuild
            rows.append([
                n_docs, DELTA,
                round(view_topup * 1000, 2), round(view_rebuild * 1000, 2),
                round(ft_topup * 1000, 2), round(ft_rebuild * 1000, 2),
                round(rebuild / max(catchup, 1e-9), 1),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E14  seq-checkpointed catch-up vs rebuild (ms), delta fixed at 100",
        ["docs", "delta", "view topup", "view rebuild",
         "ft reopen", "ft rebuild", "rebuild/catchup"],
        rows,
        note="catch-up rides the delta; the rebuild path pays the full "
             "database at every size",
    )

    def cell(n):
        return next(r for r in rows if r[0] == n)

    # The headline claim: >= 10x at 50k docs with a 100-doc delta.
    assert cell(50_000)[6] >= 10, rows
    # Rebuild cost is O(database): 10x corpus, clearly bigger bill.
    assert cell(50_000)[3] > cell(5_000)[3] * 3
    assert cell(50_000)[5] > cell(5_000)[5] * 3
    # Catch-up is O(changes): the view top-up must not scale with the
    # corpus (same delta, 10x documents, generous 8x slack for tree
    # depth and cache effects).
    assert cell(50_000)[2] < max(cell(5_000)[2], 0.05) * 8
