"""E10 — Mail routing: delivery hops/latency vs topology; group expansion.

Claims: delivery latency is proportional to route hops, so topology design
(connecting hubs) controls it; group expansion fans one submitted memo out
to many deliveries with per-recipient routing.
"""

from __future__ import annotations

from repro.bench.tables import print_table
from repro.mail import Directory, MailRouter, make_memo
from repro.replication import SimulatedNetwork
from repro.sim import VirtualClock


def build_mail_world(n_servers: int, shape: str):
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    names = [f"srv{i}" for i in range(n_servers)]
    for name in names:
        network.add_server(name)
        network.set_link(name, names[0], latency=0.05)
    directory = Directory(clock=clock)
    router = MailRouter(network, directory)
    if shape == "chain":
        for left, right in zip(names, names[1:]):
            router.add_route(left, right)
    else:  # hub
        for spoke in names[1:]:
            router.add_route(names[0], spoke)
    # two users per server
    users = []
    for index, name in enumerate(names):
        for sub in range(2):
            user = f"user{index}_{sub}/Acme"
            directory.register_person(user, name)
            users.append(user)
    directory.register_group("everyone", users)
    return clock, network, directory, router, names, users


def run_cell(n_servers: int, shape: str):
    clock, network, directory, router, names, users = build_mail_world(
        n_servers, shape
    )
    # spoke-to-spoke mail: from a user on srv1 to a user on the last server
    sender = users[2]  # first user of srv1
    router.submit(make_memo(sender, users[-1], "end to end"), names[1])
    stats = router.deliver_all()
    far_hops = stats.hop_counts[-1]
    # group blast from the same spoke
    router.submit(make_memo(sender, "everyone", "to all"), names[1])
    stats = router.deliver_all()
    return far_hops, stats.delivered, stats.transfers


def test_e10_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for shape in ("hub", "chain"):
            for n_servers in (4, 8):
                far_hops, delivered, transfers = run_cell(n_servers, shape)
                rows.append(
                    [shape, n_servers, far_hops, delivered, transfers]
                )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E10  mail routing: hops and group fan-out",
        ["topology", "servers", "hops to farthest", "delivered",
         "server transfers"],
        rows,
        note="hub keeps worst-case hops at 2; chain hops grow with length",
    )

    def cell(shape, n):
        return next(r for r in rows if r[0] == shape and r[1] == n)

    assert cell("hub", 8)[2] == 2  # spoke -> hub -> spoke
    assert cell("chain", 8)[2] == 6  # srv1 .. srv7
    assert cell("chain", 8)[2] > cell("chain", 4)[2]
    # the direct memo plus the group blast to every user (2 per server)
    assert cell("hub", 8)[3] == 1 + 16
    # the chain moves far more inter-server traffic for the same mail
    assert cell("chain", 8)[4] > cell("hub", 8)[4]


def test_e10_routing_speed(benchmark):
    clock, network, directory, router, names, users = build_mail_world(4, "hub")
    counter = {"i": 0}

    def send_one():
        counter["i"] += 1
        router.submit(
            make_memo(users[0], users[counter["i"] % len(users)],
                      f"msg {counter['i']}"),
            names[0],
        )
        router.deliver_all()

    benchmark(send_one)


def test_e10_group_expansion_speed(benchmark):
    clock, network, directory, router, names, users = build_mail_world(4, "hub")
    # nested group tower
    directory.register_group("inner", users[:4])
    directory.register_group("middle", ["inner"] + users[4:6])
    directory.register_group("outer", ["middle", "inner"])
    result = benchmark(lambda: directory.expand_recipients(["outer"]))
