"""E2 — Deletion stubs, purge intervals, and the resurrection anomaly.

Claim: deletion stubs let deletes replicate; purging a stub *before* every
replica has replicated the delete lets the stale copy flow back in
("resurrection"). The sweep varies the purge interval against a fixed
replication interval and counts resurrected documents.
"""

from __future__ import annotations

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.replication import Replicator


def run_cell(purge_interval: float, replication_interval: float) -> tuple[int, int]:
    """Returns (resurrected docs, surviving stubs) for one configuration."""
    deployment = build_deployment(2, seed=int(purge_interval) + 1)
    a, b = deployment.databases
    populate(a, 60, deployment.rng, advance=0.0)
    deployment.clock.advance(1)
    rep = Replicator()
    rep.replicate(a, b)
    # Delete a third of the documents on a.
    victims = a.unids()[:20]
    for unid in victims:
        deployment.clock.advance(0.1)
        a.delete(unid)
    clock = deployment.clock
    # Whichever of {next purge, next replication} comes first, runs first.
    if purge_interval < replication_interval:
        clock.advance(purge_interval)
        a.purge_stubs(older_than=clock.now)  # fired before the delete spread
        clock.advance(replication_interval - purge_interval)
        rep.replicate(a, b)
    else:
        clock.advance(replication_interval)
        rep.replicate(a, b)  # the delete reaches b first
        clock.advance(purge_interval - replication_interval + 1)
        a.purge_stubs(older_than=clock.now)
        b.purge_stubs(older_than=clock.now)
        clock.advance(1)
        rep.replicate(a, b)
    resurrected = sum(1 for unid in victims if unid in a)
    return resurrected, len(a.stubs)


def test_e02_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        replication_interval = 100.0
        for purge_interval in (10.0, 50.0, 200.0, 1000.0):
            resurrected, stubs = run_cell(purge_interval, replication_interval)
            rows.append(
                [purge_interval, replication_interval, resurrected, stubs]
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E2  purge interval vs replication interval (20 docs deleted)",
        ["purge ivl (s)", "repl ivl (s)", "resurrected", "stubs kept"],
        rows,
        note="purge < replication interval resurrects deleted documents",
    )
    early = [r for r in rows if r[0] < r[1]]
    patient = [r for r in rows if r[0] >= r[1]]
    assert all(r[2] > 0 for r in early), "early purge must resurrect"
    assert all(r[2] == 0 for r in patient), "patient purge must be safe"


def test_e02_stub_overhead(benchmark):
    """Timed: cost of carrying stubs through a replication pass."""
    deployment = build_deployment(2, seed=77)
    a, b = deployment.databases
    populate(a, 200, deployment.rng, advance=0.0)
    deployment.clock.advance(1)
    rep = Replicator()
    rep.replicate(a, b)
    for unid in a.unids()[:100]:
        a.delete(unid)
    deployment.clock.advance(1)

    def pass_with_stubs():
        deployment.clock.advance(1)
        return rep.replicate(a, b)

    benchmark(pass_with_stubs)
