"""E8 — Full-text indexing: incremental update vs rebuild; query latency.

Claims: adding one document to the inverted index costs ~the document's
token count, while the rebuild path re-tokenizes the corpus; query latency
is driven by posting-list sizes, not corpus scans.
"""

from __future__ import annotations

import time

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.fulltext import FullTextIndex


def build_corpus(n_docs: int):
    deployment = build_deployment(1, seed=n_docs + 8)
    db = deployment.databases[0]
    populate(db, n_docs, deployment.rng, body_bytes=600, advance=0.0)
    return deployment, db


def run_cell(n_docs: int):
    deployment, db = build_corpus(n_docs)
    index = FullTextIndex(db)

    start = time.perf_counter()
    db.create({"Subject": "fresh", "Body": "brand new budget forecast " * 20})
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    index.rebuild()
    rebuild_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(20):
        hits = index.search("budget AND forecast")
    query_seconds = (time.perf_counter() - start) / 20
    assert hits
    return incremental_seconds, rebuild_seconds, query_seconds


def test_e08_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (200, 800, 3200):
            incremental, rebuild, query = run_cell(n_docs)
            rows.append([
                n_docs,
                round(incremental * 1000, 3),
                round(rebuild * 1000, 1),
                round(query * 1000, 3),
                round(rebuild / max(incremental, 1e-9)),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E8  full-text index maintenance and query latency",
        ["docs", "add-one ms", "rebuild ms", "query ms", "rebuild/add"],
        rows,
        note="incremental cost is flat; rebuild cost grows with the corpus",
    )
    adds = [r[1] for r in rows]
    rebuilds = [r[2] for r in rows]
    assert rebuilds[-1] > rebuilds[0] * 8  # 16x corpus -> ~linear rebuild
    assert adds[-1] < adds[0] * 4  # add-one stays roughly flat
    assert all(r[4] > 50 for r in rows)


def test_e08_query_speed(benchmark):
    _, db = build_corpus(1000)
    index = FullTextIndex(db)
    queries = ["budget", "budget AND review", '"budget forecast"',
               "subject:release", "proposal OR inventory NOT sales"]
    counter = {"i": 0}

    def one_query():
        counter["i"] += 1
        return index.search(queries[counter["i"] % len(queries)])

    benchmark(one_query)


def test_e08_incremental_add_speed(benchmark):
    _, db = build_corpus(1000)
    FullTextIndex(db)
    counter = {"i": 0}

    def add_doc():
        counter["i"] += 1
        db.create({"Subject": f"memo {counter['i']}",
                   "Body": "status update with budget numbers " * 10})

    benchmark(add_doc)
