"""E1 — Incremental replication vs. whole-database copy.

Claim (paper shape): replication history + sequence numbers make the cost of
a replication pass proportional to the *delta*, not the database size; the
naive full-copy baseline ships everything every time, so the gap widens with
database size and narrows as the change ratio grows.
"""

from __future__ import annotations

import random

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.replication import Replicator


def run_cell(n_docs: int, change_pct: float) -> tuple[int, int, int]:
    """(doc-incremental, field-incremental, full-copy) bytes per pass.

    Changes touch a small ``Status`` item on documents with ~400-byte
    bodies, so field-level passes ship a fraction of even the document-
    incremental volume.
    """
    deployment = build_deployment(3, seed=n_docs * 7 + int(change_pct * 100))
    a, b, c = deployment.databases
    rng = deployment.rng
    populate(a, n_docs, rng)
    deployment.clock.advance(1)
    rep = Replicator()
    rep.pull(b, a)  # initial sync (not measured)
    rep.pull(c, a)
    deployment.clock.advance(1)
    n_changes = max(int(n_docs * change_pct), 0)
    for unid in rng.sample(a.unids(), n_changes):
        a.update(unid, {"Status": f"edited {rng.random():.4f}"})
    deployment.clock.advance(1)
    incremental = rep.pull(b, a).bytes_transferred
    field_incremental = Replicator(field_level=True).pull(c, a).bytes_transferred
    full = rep.full_copy(b, a).bytes_transferred
    return incremental, field_incremental, full


def test_e01_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (200, 800):
            for change_pct in (0.01, 0.10, 0.50):
                incremental, field_incremental, full = run_cell(
                    n_docs, change_pct
                )
                ratio = full / max(incremental, 1)
                rows.append(
                    [n_docs, f"{change_pct:.0%}", incremental,
                     field_incremental, full, round(ratio, 1)]
                )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E1  incremental replication vs full copy (bytes per pass)",
        ["docs", "changed", "doc-incr B", "field-incr B", "full-copy B",
         "full/doc-incr"],
        rows,
        note="field-level (R5) ships only changed items; full copy ships all",
    )
    # Shape assertions: incremental always wins; the ratio tracks the
    # inverse change rate (independent of size); the *absolute* savings
    # grow with database size; field-level beats whole-document transfer
    # on small-item edits.
    by_key = {(r[0], r[1]): r for r in rows}
    assert all(r[5] > 1.5 for r in rows)
    assert by_key[(800, "1%")][5] > by_key[(800, "10%")][5] > by_key[(800, "50%")][5]
    saved_small = by_key[(200, "1%")][4] - by_key[(200, "1%")][2]
    saved_large = by_key[(800, "1%")][4] - by_key[(800, "1%")][2]
    assert saved_large > 3 * saved_small
    assert all(r[3] < r[2] for r in rows if r[2] > 0)


def run_skew_cell(skew_seconds: float, versioning: str, edits: int = 30):
    """Two replicas with genuinely skewed clocks edit the same documents.

    Replica ``a``'s clock runs ``skew_seconds`` fast. ``a`` edits *first*
    in real time; ``b`` edits *later* in real time but its honest clock
    stamps a smaller time. Returns (lost updates, divergences seen), where
    "lost" counts b's later-in-reality edits that ended up neither winning
    nor preserved in a conflict note.
    """
    import random

    from repro.core import NotesDatabase
    from repro.sim import VirtualClock

    clock_a = VirtualClock(start=skew_seconds)  # the fast clock
    clock_b = VirtualClock()
    a = NotesDatabase("skew.nsf", clock=clock_a, rng=random.Random(17),
                      server="fast")
    b = NotesDatabase("skew.nsf", clock=clock_b, rng=random.Random(18),
                      replica_id=a.replica_id, server="honest")

    def tick(seconds: float) -> None:
        clock_a.advance(seconds)
        clock_b.advance(seconds)

    populate(a, edits, random.Random(19), advance=0.0)
    tick(1)
    rep = Replicator(versioning=versioning)
    rep.replicate(a, b)
    unids = a.unids()[:edits]
    for index, unid in enumerate(unids):  # a edits first (fast clock)
        tick(0.25)
        a.update(unid, {"Body": f"early {index}"}, author="alice")
    for index, unid in enumerate(unids):  # b edits later (honest clock)
        tick(0.25)
        b.update(unid, {"Body": f"good {index}"}, author="bob")
    tick(1)
    stats = rep.replicate(a, b)
    tick(1)
    rep.replicate(a, b)
    survivors = {doc.get("Body") for doc in a.all_documents()}
    lost = sum(
        1 for index in range(edits) if f"good {index}" not in survivors
    )
    return lost, stats.conflicts


def test_e01_timestamp_ablation(benchmark):
    """Ablation (DESIGN.md #1): replicate by modified-time instead of
    sequence numbers. Under clock skew the timestamp replicator silently
    discards the concurrent edits; the OID replicator surfaces every one
    as a conflict."""
    rows = []

    def sweep():
        rows.clear()
        for versioning in ("oid", "timestamp"):
            for skew in (0.0, 3600.0):
                lost, conflicts = run_skew_cell(skew, versioning)
                rows.append([versioning, skew, conflicts, lost])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E1b  versioning ablation under clock skew (30 concurrent edits)",
        ["versioning", "skew s", "divergences seen", "updates lost"],
        rows,
        note="timestamp replication cannot tell skew from recency",
    )

    def cell(versioning, skew):
        return next(r for r in rows if r[0] == versioning and r[1] == skew)

    # OID versioning: every divergence detected (counted once per pull
    # direction), later edit wins, earlier preserved — nothing lost.
    assert cell("oid", 3600.0)[2] >= 30
    assert cell("oid", 3600.0)[3] == 0
    # Timestamp versioning under skew: the fast clock's earlier edits look
    # newer, so every later (honest-clock) edit silently vanishes.
    assert cell("timestamp", 3600.0)[2] == 0
    assert cell("timestamp", 3600.0)[3] == 30
    # With synchronised clocks the timestamp scheme happens to pick the
    # genuinely later edit — silent LWW that loses nothing *here*.
    assert cell("timestamp", 0.0)[3] == 0


def test_e01_incremental_pass_speed(benchmark):
    """Timed micro-benchmark: one incremental pass over a 1%-changed DB."""
    deployment = build_deployment(2, seed=42)
    a, b = deployment.databases
    populate(a, 500, deployment.rng)
    deployment.clock.advance(1)
    rep = Replicator()
    rep.pull(b, a)

    def one_pass():
        deployment.clock.advance(1)
        for unid in deployment.rng.sample(a.unids(), 5):
            a.update(unid, {"Body": "tick"})
        deployment.clock.advance(1)
        return rep.pull(b, a)

    stats = benchmark(one_pass)
    assert stats.docs_transferred <= 10
