"""E7 — Transaction logging (the R5 feature) vs. force-at-commit.

Claims: (a) commit throughput with a write-ahead log beats forcing every
dirty page at commit — the sequential-log-write argument; (b) restart
recovery time scales with the log generated since the last checkpoint, so
more frequent checkpoints buy faster recovery.
"""

from __future__ import annotations

import time

from repro.bench.tables import print_table
from repro.storage import StorageEngine


# Modeled 1999-class disk: a random page write costs a seek (~8 ms); the
# log is written sequentially at ~15 MB/s. The benchmark host keeps its
# files on memory-backed storage where seeks are invisible, so the modeled
# column restores the physical effect the paper's claim rests on (see
# DESIGN.md, substitution table).
SEEK_MS = 8.0
LOG_MB_PER_S = 15.0


def commit_throughput(tmp_path, durability: str, n_txns: int = 100) -> dict:
    """Transactions update 10 scattered keys each (a typical note save
    touches the note, the note table, and several view-index pages): the
    force discipline must write every dirtied page at commit, the WAL
    discipline appends one sequential batch and flushes once."""
    import random

    engine = StorageEngine(str(tmp_path / f"tp-{durability}"),
                           durability=durability, pool_size=512)
    rng = random.Random(7)
    payload = b"x" * 600
    for index in range(400):
        engine.set(f"key-{index}".encode(), payload)
    if durability == "wal":
        engine.checkpoint()  # start the measured window with an empty log
    pages_before = engine._pages.page_writes
    log_before = engine._wal.end_lsn if engine._wal else 0
    start = time.perf_counter()
    for _ in range(n_txns):
        txn = engine.begin()
        for __ in range(10):
            key = f"key-{rng.randrange(400)}".encode()
            engine.put(txn, key, payload)
        engine.commit(txn)
    elapsed = time.perf_counter() - start
    log_bytes = (engine._wal.end_lsn if engine._wal else 0) - log_before
    if durability == "wal":
        # account the deferred page write-back a checkpoint would do
        engine.checkpoint()
    pages = engine._pages.page_writes - pages_before
    engine.close()
    modeled_ms = (
        pages * SEEK_MS + (log_bytes / (LOG_MB_PER_S * 1e6)) * 1000.0
    ) / n_txns
    return {
        "tps": n_txns / elapsed,
        "pages_per_commit": pages / n_txns,
        "log_bytes_per_commit": log_bytes / n_txns,
        "modeled_ms_per_commit": modeled_ms,
    }


def recovery_cost(tmp_path, txns_since_checkpoint: int, tag: str):
    engine = StorageEngine(str(tmp_path / f"rec-{tag}"))
    payload = b"y" * 400
    for index in range(50):
        engine.set(f"pre-{index}".encode(), payload)
    engine.checkpoint()
    for index in range(txns_since_checkpoint):
        engine.set(f"post-{index}".encode(), payload)
    engine.simulate_crash()
    start = time.perf_counter()
    recovered = StorageEngine(str(tmp_path / f"rec-{tag}"))
    elapsed = time.perf_counter() - start
    report = recovered.last_recovery
    assert recovered.get(b"post-0" if txns_since_checkpoint else b"pre-0")
    recovered.close()
    return elapsed, report.ops_replayed


def test_e07_commit_throughput_table(benchmark, tmp_path):
    rows = []

    def sweep():
        rows.clear()
        for durability in ("none", "wal", "force"):
            result = commit_throughput(tmp_path, durability)
            rows.append([
                durability,
                round(result["tps"]),
                round(result["pages_per_commit"], 1),
                round(result["log_bytes_per_commit"]),
                round(result["modeled_ms_per_commit"], 2),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E7a  commit cost by durability mode (10 updates per txn)",
        ["mode", "commits/s (tmpfs)", "page writes/commit", "log B/commit",
         "modeled ms/commit (disk)"],
        rows,
        note=f"modeled disk: {SEEK_MS} ms/page seek, "
             f"{LOG_MB_PER_S} MB/s sequential log — the 1999 physics the "
             "tmpfs timing column hides",
    )
    by_mode = {r[0]: r for r in rows}
    # Force writes every dirtied page at commit; WAL defers them and pays
    # sequential log bytes instead -> far cheaper on seek-bound disks.
    assert by_mode["force"][2] > 4 * by_mode["wal"][2]
    assert by_mode["wal"][4] < by_mode["force"][4] / 2
    assert by_mode["none"][1] >= by_mode["wal"][1]


def test_e07_recovery_scales_with_log(benchmark, tmp_path):
    rows = []

    def sweep():
        rows.clear()
        for txns in (0, 100, 400, 1600):
            seconds, replayed = recovery_cost(tmp_path, txns, tag=str(txns))
            rows.append([txns, replayed, round(seconds * 1000, 2)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E7b  restart recovery vs log since checkpoint",
        ["txns since ckpt", "ops replayed", "recovery ms"],
        rows,
        note="recovery work ~ log length; checkpoints bound restart time",
    )
    replayed = [r[1] for r in rows]
    assert replayed == sorted(replayed)
    assert rows[0][1] == 0  # checkpoint right before crash: nothing to redo
    assert rows[-1][2] > rows[0][2]


def test_e07_wal_commit_speed(benchmark, tmp_path):
    engine = StorageEngine(str(tmp_path / "speed-wal"))
    counter = {"i": 0}

    def one_commit():
        counter["i"] += 1
        engine.set(f"k{counter['i']}".encode(), b"v" * 256)

    benchmark(one_commit)
    engine.close()


def test_e07_force_commit_speed(benchmark, tmp_path):
    engine = StorageEngine(str(tmp_path / "speed-force"), durability="force")
    counter = {"i": 0}

    def one_commit():
        counter["i"] += 1
        engine.set(f"k{counter['i']}".encode(), b"v" * 256)

    benchmark(one_commit)
    engine.close()
