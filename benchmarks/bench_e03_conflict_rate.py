"""E3 — Conflict rate vs. update locality; what each policy loses.

Claim: conflicts arise when two replicas edit the *same* documents between
replications, so the smaller the working set both sides concentrate on, the
more documents diverge. The conflict-document policy preserves every losing
revision; the LWW ablation silently discards them; field-merge resolves the
disjoint-field share without any conflict documents.
"""

from __future__ import annotations

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.replication import ConflictPolicy, Replicator


def run_cell(working_set: int, policy: ConflictPolicy, edits_per_side: int = 30):
    deployment = build_deployment(2, seed=working_set + 1)
    a, b = deployment.databases
    rng = deployment.rng
    populate(a, 400, rng, advance=0.0)
    deployment.clock.advance(1)
    rep = Replicator(conflict_policy=policy)
    rep.replicate(a, b)
    hot = a.unids()[:working_set]
    for _ in range(edits_per_side):
        deployment.clock.advance(0.5)
        a.update(rng.choice(hot), {"Body": f"a{rng.random()}"}, author="alice")
        b.update(rng.choice(hot), {"Note": f"b{rng.random()}"}, author="bob")
    deployment.clock.advance(1)
    stats = rep.replicate(a, b)
    conflict_docs = sum(1 for d in a.all_documents() if d.is_conflict)
    return stats, conflict_docs


def test_e03_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for working_set in (400, 100, 25):
            for policy in (ConflictPolicy.CONFLICT_DOC, ConflictPolicy.MERGE,
                           ConflictPolicy.LWW):
                stats, conflict_docs = run_cell(working_set, policy)
                rows.append([
                    working_set, policy.value, stats.conflicts, stats.merges,
                    conflict_docs, stats.lost_updates,
                ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E3  conflicts vs update locality (400 docs, 30 edits/side)",
        ["working set", "policy", "divergences", "merged", "conflict docs",
         "lost updates"],
        rows,
        note="smaller working set -> hot spots -> conflicts; "
             "LWW loses what CONFLICT_DOC keeps",
    )

    def cell(working_set, policy):
        return next(
            r for r in rows if r[0] == working_set and r[1] == policy.value
        )

    # Tighter locality, more divergent documents.
    assert cell(25, ConflictPolicy.CONFLICT_DOC)[2] > cell(
        400, ConflictPolicy.CONFLICT_DOC)[2]
    # LWW never creates conflict documents but loses updates.
    assert cell(25, ConflictPolicy.LWW)[4] == 0
    assert cell(25, ConflictPolicy.LWW)[5] > 0
    # Disjoint-field edits (a touches Body, b touches Note): merge absorbs
    # the divergences without conflict documents.
    merge_row = cell(25, ConflictPolicy.MERGE)
    assert merge_row[3] > 0
    assert merge_row[4] < cell(25, ConflictPolicy.CONFLICT_DOC)[4]


def test_e03_conflict_resolution_speed(benchmark):
    """Timed: resolving one divergence into a conflict document."""
    from repro.replication.conflicts import resolve

    deployment = build_deployment(2, seed=3)
    a, b = deployment.databases
    doc = a.create({"S": "base"})
    deployment.clock.advance(1)
    Replicator().replicate(a, b)

    def one_conflict():
        deployment.clock.advance(1)
        a.update(doc.unid, {"S": f"a{deployment.clock.now}"})
        deployment.clock.advance(1)
        b.update(doc.unid, {"S": f"b{deployment.clock.now}"})
        return resolve(a, a.get(doc.unid), b.get(doc.unid).copy(),
                       ConflictPolicy.CONFLICT_DOC)

    outcome = benchmark(one_conflict)
    assert outcome.conflict_doc_unid is not None
