"""Benchmark harness configuration.

Each ``bench_eNN_*.py`` file regenerates one experiment from EXPERIMENTS.md:
it sweeps the experiment's parameter, prints the result table (the shape the
paper narrates), and asserts the qualitative claim so a regression in the
*shape* fails the bench run. Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_collection_modifyitems(config, items):
    # Keep experiment tables in E1..E12 order regardless of fs ordering.
    items.sort(key=lambda item: item.fspath.basename)
