"""E15 — Segment-stack checkpoints: close cost rides the delta too.

Claim: with derived structures persisted as a stack of immutable
segments, saving a checkpoint appends only the entries dirtied since the
last save — O(delta), flat in database size — where the pre-segment
layout rewrote the whole structure on every save. The ablation
(``SINGLE_SEGMENT``, which folds every append straight back into one
segment) restores exactly that rewrite-everything behaviour and its
O(database) bill. Measured on both stack consumers:

* a persisted view saving its sidecar after a 100-document delta
* the full-text index saving its checkpoint after the same delta

E14 made *reopen* ride the delta; this closes the other end of the
session. Together a reopen → work → close cycle touches O(changes), not
O(database), at both ends.
"""

from __future__ import annotations

import gc
import time

from repro.bench.runners import build_catchup_corpus, catchup_view
from repro.bench.tables import print_table
from repro.fulltext import FullTextIndex
from repro.storage import SINGLE_SEGMENT

DELTA = 100


def _timed(fn):
    gc.collect()
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _apply_delta(db):
    db.clock.advance(1)
    for unid in db.rng.sample(db.unids(), DELTA):
        db.update(unid, {"Subject": f"edited {db.rng.random():.4f}"})


def run_cell(tmp_path, n_docs: int):
    engine, db = build_catchup_corpus(
        str(tmp_path / f"segments{n_docs}"), n_docs, DELTA
    )
    try:
        view = catchup_view(db)  # warm load + top-up (auto mode)
        index = FullTextIndex(db, persist=True)
        assert view.loaded_from_disk and index.loaded_from_disk

        # -- segmented save: appends the delta as one new segment --------
        view_segmented = _timed(view.save_index)
        ft_segmented = _timed(index.save_checkpoint)
        view_stats = view.catch_up.segment_stats["entries"]
        ft_stats = index.catch_up.segment_stats["docs"]
        assert view_stats.segments == 2, view_stats
        assert ft_stats.segments == 2, ft_stats

        # -- ablation: fold everything back to one segment per save -----
        _apply_delta(db)
        view.merge_policy = SINGLE_SEGMENT
        index.merge_policy = SINGLE_SEGMENT
        view_ablation = _timed(view.save_index)
        ft_ablation = _timed(index.save_checkpoint)
        assert view_stats.segments == 1 and view.catch_up.merges > 0
        assert ft_stats.segments == 1 and index.catch_up.merges > 0

        index.close()
        view.close()
        return view_segmented, ft_segmented, view_ablation, ft_ablation
    finally:
        engine.close()


def test_e15_segment_save_table(benchmark, tmp_path):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (5_000, 50_000):
            view_seg, ft_seg, view_abl, ft_abl = run_cell(tmp_path, n_docs)
            segmented = view_seg + ft_seg
            ablation = view_abl + ft_abl
            rows.append([
                n_docs, DELTA,
                round(view_seg * 1000, 2), round(view_abl * 1000, 2),
                round(ft_seg * 1000, 2), round(ft_abl * 1000, 2),
                round(ablation / max(segmented, 1e-9), 1),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E15  segment-stack checkpoint save vs fold-everything ablation "
        "(ms), delta fixed at 100",
        ["docs", "delta", "view seg", "view fold-all",
         "ft seg", "ft fold-all", "fold-all/seg"],
        rows,
        note="a segmented save appends the delta; the single-segment "
             "ablation rewrites the whole structure at every size",
    )

    def cell(n):
        return next(r for r in rows if r[0] == n)

    # Headline: at 50k docs the fold-everything save costs >= 5x the
    # segmented one for the same 100-doc delta.
    assert cell(50_000)[6] >= 5, rows
    # The ablation is O(database): 10x the corpus, clearly bigger bill.
    assert cell(50_000)[3] > cell(5_000)[3] * 3, rows
    assert cell(50_000)[5] > cell(5_000)[5] * 3, rows
    # The segmented save is O(delta): flat within 2x across a 10x corpus
    # (1 ms floor keeps allocator noise out of the ratio).
    assert cell(50_000)[2] < max(cell(5_000)[2], 1.0) * 2, rows
    assert cell(50_000)[4] < max(cell(5_000)[4], 1.0) * 2, rows
