"""E12 — Selective replication and truncation shrink mobile replicas.

Claims: a selection formula on the replica cuts transferred volume roughly
in proportion to (1 - selectivity); rich-text truncation bounds per-document
cost for "summary" replicas — together these are what made laptop replicas
practical over dial-up.
"""

from __future__ import annotations

from repro.bench.runners import build_deployment
from repro.bench.tables import print_table
from repro.core import ItemType
from repro.replication import Replicator, SelectiveReplication


def build_source(n_docs: int = 300):
    deployment = build_deployment(2, seed=12)
    a, b = deployment.databases
    rng = deployment.rng
    for index in range(n_docs):
        deployment.clock.advance(0.1)
        doc = a.create({
            "Form": "Memo",
            "Project": f"proj{index % 10}",
            "Subject": f"doc {index}",
        })
        a.get(doc.unid).set("Body", "long rich text " * 400, ItemType.RICH_TEXT)
    deployment.clock.advance(1)
    return deployment, a, b


def run_cell(n_projects_wanted: int, truncate: bool):
    deployment, a, b = build_source()
    projects = ":".join(f'"proj{i}"' for i in range(n_projects_wanted))
    formula = f"SELECT Project = {projects}" if n_projects_wanted else "SELECT @All"
    selective = SelectiveReplication(
        formula, truncate_over=2_000 if truncate else None
    )
    stats = Replicator().pull(b, a, selective=selective)
    return stats.bytes_transferred, stats.docs_transferred, len(b)


def test_e12_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        baseline_bytes = None
        for n_projects in (0, 5, 1):  # 0 => everything
            for truncate in (False, True):
                nbytes, docs, replica_size = run_cell(n_projects, truncate)
                selectivity = "100%" if n_projects == 0 else f"{n_projects}0%"
                if baseline_bytes is None:
                    baseline_bytes = nbytes
                rows.append([
                    selectivity, "yes" if truncate else "no", docs,
                    replica_size, nbytes,
                    round(100 * nbytes / baseline_bytes, 1),
                ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E12  selective replication volume (300 docs, 10 projects)",
        ["selectivity", "truncated", "docs sent", "replica docs", "bytes",
         "% of full"],
        rows,
        note="volume tracks formula selectivity; truncation caps doc size",
    )

    def cell(selectivity, truncated):
        return next(
            r for r in rows if r[0] == selectivity and r[1] == truncated
        )

    assert cell("50%", "no")[4] < cell("100%", "no")[4] * 0.6
    assert cell("10%", "no")[4] < cell("100%", "no")[4] * 0.2
    assert cell("100%", "yes")[4] < cell("100%", "no")[4] * 0.5
    # replica really is partial
    assert cell("10%", "no")[3] == 30


def test_e12_selective_pass_speed(benchmark):
    deployment, a, b = build_source()
    selective = SelectiveReplication('SELECT Project = "proj3"')
    rep = Replicator()
    rep.pull(b, a, selective=selective)

    def incremental_pass():
        deployment.clock.advance(1)
        a.update(a.unids()[3], {"Subject": "tick"})
        deployment.clock.advance(1)
        return rep.pull(b, a, selective=selective)

    benchmark(incremental_pass)
