"""E4 — Replication topology: rounds to convergence and traffic.

Claim: a mesh converges in the fewest rounds (every pair talks directly) but
costs O(n²) connections; hub-and-spoke needs ~2 rounds (spoke→hub,
hub→spokes) with O(n) connections; a chain needs rounds proportional to its
diameter. Connection count is the administrative cost the paper highlights
for hub topologies.

To make rounds comparable, each round fires the edges in an adversarial
order (against the direction of propagation), so a chain cannot converge in
one lucky sequential sweep.
"""

from __future__ import annotations

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    converged,
)


def build_topology(shape: str, names: list[str]) -> ReplicationTopology:
    if shape == "mesh":
        return ReplicationTopology.mesh(names)
    if shape == "hub":
        return ReplicationTopology.hub_spoke(names[0], names[1:])
    if shape == "ring":
        return ReplicationTopology.ring(names)
    return ReplicationTopology.chain(names)


def run_cell(shape: str, n_servers: int):
    deployment = build_deployment(n_servers, seed=hash(shape) % 1000 + n_servers)
    # seed content on the LAST server so edge order works against the chain
    populate(deployment.databases[-1], 30, deployment.rng, advance=0.0)
    names = [f"srv{i}" for i in range(n_servers)]
    topology = build_topology(shape, names)
    # adversarial edge order: earliest-named pairs first
    topology.connections.sort(key=lambda c: (c.server_a, c.server_b))
    scheduler = ReplicationScheduler(deployment.network, topology)
    rounds = 0
    while not converged(deployment.databases):
        deployment.clock.advance(1)
        scheduler.run_round()
        rounds += 1
        if rounds > 64:
            raise AssertionError(f"{shape} did not converge")
    return rounds, len(topology.connections), deployment.network.stats.bytes_sent


def test_e04_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for shape in ("mesh", "hub", "ring", "chain"):
            for n_servers in (4, 8):
                rounds, connections, traffic = run_cell(shape, n_servers)
                rows.append([shape, n_servers, connections, rounds, traffic])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E4  topology vs rounds-to-convergence (30 docs seeded on last server)",
        ["topology", "servers", "connections", "rounds", "bytes"],
        rows,
        note="mesh: most connections, fewest rounds; chain: the reverse",
    )

    def cell(shape, n):
        return next(r for r in rows if r[0] == shape and r[1] == n)

    assert cell("mesh", 8)[3] <= cell("hub", 8)[3] <= cell("chain", 8)[3]
    assert cell("mesh", 8)[2] > cell("hub", 8)[2]
    assert cell("hub", 8)[3] <= 3
    assert cell("chain", 8)[3] >= 4  # ~diameter rounds against the grain


def test_e04_round_cost(benchmark):
    """Timed: one full scheduler round over an 8-server hub."""
    deployment = build_deployment(8, seed=404)
    populate(deployment.databases[0], 50, deployment.rng, advance=0.0)
    names = [f"srv{i}" for i in range(8)]
    scheduler = ReplicationScheduler(
        deployment.network, ReplicationTopology.hub_spoke(names[0], names[1:])
    )

    def one_round():
        deployment.clock.advance(1)
        return scheduler.run_round()

    benchmark(one_round)
