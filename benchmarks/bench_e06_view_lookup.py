"""E6 — View navigation is an index operation, not a scan.

Claim: opening a view at a key (GetDocumentByKey) is a B+tree descent —
node touches grow logarithmically with the database while a selection-scan
baseline grows linearly.
"""

from __future__ import annotations

import time

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table
from repro.formula import compile_formula
from repro.views import SortOrder, View, ViewColumn


def build_view(n_docs: int):
    deployment = build_deployment(1, seed=n_docs + 3)
    db = deployment.databases[0]
    populate(db, n_docs, deployment.rng, advance=0.0)
    view = View(
        db,
        "ByAmount",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Amount", item="Amount", sort=SortOrder.ASCENDING),
            ViewColumn(title="Subject", item="Subject"),
        ],
    )
    return db, view


def scan_baseline(db, amount: int):
    """What life is like without a view index: formula-scan everything."""
    formula = compile_formula(f"SELECT Form = \"Memo\" & Amount = {amount}")
    return [doc for doc in db.all_documents() if formula.select(doc)]


def run_cell(n_docs: int):
    db, view = build_view(n_docs)
    target = view._tree  # structural counters live on the B+tree
    probe_amounts = [db.get(unid).get("Amount") for unid in db.unids()[:20]]

    target.node_reads = 0
    start = time.perf_counter()
    for amount in probe_amounts:
        matches = view.documents_by_key(amount)
        assert matches
    lookup_seconds = (time.perf_counter() - start) / len(probe_amounts)
    node_touches = target.node_reads / len(probe_amounts)

    start = time.perf_counter()
    for amount in probe_amounts[:5]:
        assert scan_baseline(db, amount)
    scan_seconds = (time.perf_counter() - start) / 5
    return node_touches, lookup_seconds, scan_seconds, view._tree.height()


def test_e06_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n_docs in (250, 1000, 4000):
            node_touches, lookup_s, scan_s, height = run_cell(n_docs)
            rows.append([
                n_docs, height, round(node_touches, 1),
                round(lookup_s * 1e6, 1), round(scan_s * 1e6, 1),
                round(scan_s / max(lookup_s, 1e-12), 1),
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E6  view key lookup vs formula scan",
        ["docs", "tree height", "nodes/lookup", "lookup µs", "scan µs",
         "scan/lookup"],
        rows,
        note="lookup cost ~ tree height (log n); scan cost ~ n",
    )
    touches = [r[2] for r in rows]
    scans = [r[4] for r in rows]
    # node touches grow sub-linearly (log-ish): 16x docs < 4x touches
    assert touches[-1] < touches[0] * 4
    # the scan baseline grows roughly linearly: 16x docs > 4x time
    assert scans[-1] > scans[0] * 4
    assert all(r[5] > 5 for r in rows), "index must beat the scan"


def test_e06_lookup_speed(benchmark):
    db, view = build_view(2000)
    amounts = [db.get(unid).get("Amount") for unid in db.unids()[:50]]
    counter = {"i": 0}

    def one_lookup():
        counter["i"] += 1
        return view.documents_by_key(amounts[counter["i"] % 50])

    result = benchmark(one_lookup)
    assert result


def test_e06_navigation_speed(benchmark):
    from repro.views import ViewNavigator

    db, view = build_view(2000)

    def walk_a_page():
        navigator = ViewNavigator(view)
        navigator.first()
        return navigator.page(50)

    rows = benchmark(walk_a_page)
    assert len(rows) == 50
