"""E11 — Clustering: near-real-time replication, failover, catch-up.

Claims: the event-driven cluster replicator keeps member replicas current
after every change (staleness ~ per-change push, not a replication
schedule); when a member fails, opens fail over to surviving members and
missed changes are bounded by the outage and applied at catch-up.
"""

from __future__ import annotations

import random

from repro.bench.tables import print_table
from repro.cluster import Cluster
from repro.core import NotesDatabase
from repro.replication import (
    ReplicationScheduler,
    ReplicationTopology,
    Replicator,
    SimulatedNetwork,
    converged,
)
from repro.sim import VirtualClock


def build_cluster(n_members: int):
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    names = [f"c{i}" for i in range(n_members)]
    for name in names:
        network.add_server(name)
    db = NotesDatabase("app.nsf", clock=clock, rng=random.Random(77),
                       server=names[0])
    network.server(names[0]).add_database(db)
    cluster = Cluster("bench", network)
    for name in names:
        cluster.add_member(name)
    replicas = cluster.cluster_database(db)
    return clock, network, cluster, replicas, names


def staleness_comparison(n_changes: int = 50):
    """Max replica divergence: cluster push vs hourly scheduled replication."""
    clock, network, cluster, replicas, names = build_cluster(3)
    a = replicas[0]
    max_lag_cluster = 0
    for index in range(n_changes):
        clock.advance(60)
        a.create({"S": f"doc {index}"})
        lag = max(len(a) - len(r) for r in replicas[1:])
        max_lag_cluster = max(max_lag_cluster, lag)

    # scheduled baseline: same change stream, replicate every 30 changes
    clock2 = VirtualClock()
    network2 = SimulatedNetwork(clock2)
    for name in names:
        network2.add_server(name)
    db = NotesDatabase("sched.nsf", clock=clock2, rng=random.Random(5),
                       server=names[0])
    network2.server(names[0]).add_database(db)
    others = [db.new_replica(name) for name in names[1:]]
    rep = Replicator(network=network2)
    max_lag_sched = 0
    for index in range(n_changes):
        clock2.advance(60)
        db.create({"S": f"doc {index}"})
        if (index + 1) % 30 == 0:
            for other in others:
                rep.pull(other, db)
        lag = max(len(db) - len(other) for other in others)
        max_lag_sched = max(max_lag_sched, lag)
    return max_lag_cluster, max_lag_sched


def failover_run(outage_changes: int):
    clock, network, cluster, replicas, names = build_cluster(3)
    a, b, c = replicas
    replica_id = a.replica_id
    for index in range(10):
        clock.advance(1)
        a.create({"S": f"warm {index}"})
    cluster.fail(names[0])
    rng = random.Random(3)
    failed_over = 0
    for _ in range(10):
        result = cluster.open_database(replica_id, preferred=names[0], rng=rng)
        failed_over += result.failed_over
    for index in range(outage_changes):
        clock.advance(1)
        b.create({"S": f"while down {index}"})
    replicator = next(iter(cluster.replicators.values()))
    backlog = replicator.backlog_size
    drained = cluster.restore(names[0])
    return failed_over, backlog, drained, converged([a, b, c])


def test_e11_staleness_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        cluster_lag, scheduled_lag = staleness_comparison()
        rows.append(["cluster (event push)", cluster_lag])
        rows.append(["scheduled (every 30 changes)", scheduled_lag])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E11a  max replica staleness over 50 changes (docs behind)",
        ["replication style", "max docs behind"],
        rows,
        note="cluster replication is near-real-time; scheduling lags",
    )
    assert rows[0][1] == 0
    assert rows[1][1] >= 29


def test_e11_failover_table(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for outage_changes in (5, 50):
            failed_over, backlog, drained, ok = failover_run(outage_changes)
            rows.append([outage_changes, failed_over, backlog, drained, ok])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E11b  failover and catch-up after a member crash",
        ["changes during outage", "opens failed over", "backlog",
         "drained at restore", "converged after"],
        rows,
        note="missed changes are bounded by the outage and applied at restore",
    )
    for row in rows:
        assert row[1] == 10  # every open during the outage failed over
        assert row[2] >= row[0]  # backlog covers the outage (×2 targets? no: ≥)
        assert row[4] is True


def test_e11_push_speed(benchmark):
    clock, network, cluster, replicas, names = build_cluster(3)
    a = replicas[0]
    counter = {"i": 0}

    def one_change():
        counter["i"] += 1
        clock.advance(1)
        a.create({"S": f"x{counter['i']}"})

    benchmark(one_change)
    assert converged(replicas)
