"""Full-text search over a Notes database.

Plays the role of the external full-text engine Domino bundled: an inverted
index over the text items of every document, maintained incrementally from
database change events (with a rebuild path for the E8 comparison), and a
query language with boolean operators, quoted phrases and per-field scoping.
Results rank by tf–idf.
"""

from repro.fulltext.index import FullTextIndex, SearchHit
from repro.fulltext.query import parse_query
from repro.fulltext.tokenizer import STOPWORDS, tokenize

__all__ = [
    "FullTextIndex",
    "STOPWORDS",
    "SearchHit",
    "parse_query",
    "tokenize",
]
