"""Full-text query language.

Grammar::

    query   := or
    or      := and ('OR' and)*
    and     := not (('AND')? not)*          # juxtaposition = AND
    not     := 'NOT' not | atom
    atom    := '(' query ')' | FIELD ':' atom | PHRASE | TERM

Examples: ``replication AND conflict``, ``"deletion stub"``,
``subject:budget OR body:forecast``, ``meeting NOT cancelled``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import FullTextError

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<phrase>"[^"]*") |
        (?P<word>[^\s()"]+)
    )""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class Term:
    text: str
    field: str | None = None


@dataclass(frozen=True)
class Phrase:
    text: str
    field: str | None = None


@dataclass(frozen=True)
class And:
    parts: tuple


@dataclass(frozen=True)
class Or:
    parts: tuple


@dataclass(frozen=True)
class Not:
    part: object


def _lex(source: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(source):
        match = _TOKEN.match(source, pos)
        if match is None or match.end() == pos:
            remaining = source[pos:].strip()
            if not remaining:
                break
            raise FullTextError(f"cannot tokenize query at {remaining[:20]!r}")
        pos = match.end()
        for kind in ("lparen", "rparen", "phrase", "word"):
            text = match.group(kind)
            if text is not None:
                tokens.append(text)
                break
    return tokens


class _QueryParser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    @property
    def current(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def parse(self):
        node = self.parse_or()
        if self.current is not None:
            raise FullTextError(f"unexpected {self.current!r} in query")
        return node

    def parse_or(self):
        parts = [self.parse_and()]
        while self.current is not None and self.current.upper() == "OR":
            self.pos += 1
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self):
        parts = [self.parse_not()]
        while self.current is not None and self.current != ")" and self.current.upper() != "OR":
            if self.current.upper() == "AND":
                self.pos += 1
            parts.append(self.parse_not())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_not(self):
        if self.current is not None and self.current.upper() == "NOT":
            self.pos += 1
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self):
        token = self.current
        if token is None:
            raise FullTextError("query ended unexpectedly")
        if token == "(":
            self.pos += 1
            node = self.parse_or()
            if self.current != ")":
                raise FullTextError("missing ')' in query")
            self.pos += 1
            return node
        self.pos += 1
        if token.startswith('"'):
            return Phrase(token.strip('"'))
        if ":" in token and not token.startswith(":"):
            field, _, rest = token.partition(":")
            if not rest:
                # `field:"a phrase"` lexes as `field:` + the phrase token.
                nxt = self.current
                if nxt is not None and nxt.startswith('"'):
                    self.pos += 1
                    return Phrase(nxt.strip('"'), field=field)
                raise FullTextError(f"field scope {token!r} has no term")
            return Term(rest, field=field)
        return Term(token)


def parse_query(source: str):
    """Parse query text into a Term/Phrase/And/Or/Not tree."""
    tokens = _lex(source)
    if not tokens:
        raise FullTextError("empty query")
    return _QueryParser(tokens).parse()
