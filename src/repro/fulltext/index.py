"""The inverted full-text index.

Postings map ``term -> unid -> field -> [positions]``. The index subscribes
to database change events for incremental maintenance (``auto`` mode); the
``rebuild()`` path re-tokenizes the whole database and is the E8 baseline.

With ``persist=True`` the postings plus a seq checkpoint are written
through the storage engine. A reopened database loads the checkpoint as a
*frozen base segment* — one unparsed blob plus a term directory of
offsets — and re-tokenizes only the notes sequenced past the checkpoint.
Superseded base entries are masked by a tombstone set rather than edited
in place, and a term's postings are materialized (and cached) the first
time a query or a write actually touches them. That keeps the reopen cost
O(log n + changes): the O(index)-sized postings stay as bytes until asked
for — the same segment-plus-deletes discipline an LSM engine or Lucene
uses, and the full-text half of experiment E14.

Scoring is tf–idf: ``tf * log(N / df)`` summed over the positive terms of
the query. Phrases verify adjacent positions inside one field.
"""

from __future__ import annotations

import marshal
import math
from dataclasses import dataclass
from time import perf_counter

from repro.errors import FullTextError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.core.items import ItemType
from repro.core.stats import CatchUpStats
from repro.fulltext.query import And, Not, Or, Phrase, Term, parse_query
from repro.fulltext.tokenizer import stem, tokenize

_TEXT_TYPES = (ItemType.TEXT, ItemType.RICH_TEXT, ItemType.TEXT_LIST,
               ItemType.NAMES, ItemType.AUTHORS, ItemType.READERS)

#: Engine keys of the persisted checkpoint. The meta record is JSON; the
#: directories are marshal (term/unid -> (offset, length) into the blobs);
#: the blobs are concatenated per-term / per-document marshal records and
#: are never parsed wholesale on load.
_META_KEY = b"ftidx:checkpoint"
_TERM_DIR_KEY = b"ftidx:termdir"
_POSTINGS_KEY = b"ftidx:postings"
_DOC_DIR_KEY = b"ftidx:docdir"
_DOC_TERMS_KEY = b"ftidx:docterms"


@dataclass(frozen=True)
class SearchHit:
    unid: str
    score: float


class FullTextIndex:
    """An incrementally-maintained inverted index over one database."""

    #: Default per-field score multipliers: a hit in the Subject counts
    #: double — title matches rank above body mentions.
    DEFAULT_FIELD_WEIGHTS = {"subject": 2.0}

    def __init__(
        self,
        db: NotesDatabase,
        mode: str = "auto",
        field_weights: dict[str, float] | None = None,
        persist: bool = False,
        journal: bool = True,
    ) -> None:
        if mode not in ("auto", "manual"):
            raise FullTextError(f"mode must be 'auto' or 'manual', got {mode!r}")
        if persist and db.engine is None:
            raise FullTextError(
                "persist=True needs a database with a storage engine"
            )
        self.db = db
        self.mode = mode
        self.persist = persist
        self.journal = journal
        self.field_weights = (
            dict(self.DEFAULT_FIELD_WEIGHTS)
            if field_weights is None
            else {name.lower(): weight for name, weight in field_weights.items()}
        )
        # Live overlay: term -> unid -> field(lower) -> positions, plus
        # unid -> term set (for cheap removal).
        self._postings: dict[str, dict[str, dict[str, list[int]]]] = {}
        self._doc_terms: dict[str, set[str]] = {}
        # Frozen base segment from a loaded checkpoint: unparsed blobs +
        # offset directories, materialized per term / per doc on demand.
        # ``None`` means the blob exists in the engine but has not been
        # fetched yet — reopen reads only the directories; the postings
        # bytes come off disk the first time a term is actually read.
        # ``_dead`` masks base entries superseded since the checkpoint.
        self._base_blob: bytes | None = b""
        self._base_dir: dict[str, tuple[int, int]] = {}
        self._base_cache: dict[str, dict[str, dict[str, list[int]]]] = {}
        self._docterms_blob: bytes | None = b""
        self._docterms_dir: dict[str, tuple[int, int]] = {}
        self._dead: set[str] = set()
        # Per-term merge of overlay + base-minus-dead, invalidated on
        # writes that touch the term.
        self._merged_cache: dict[str, dict[str, dict[str, list[int]]]] = {}
        self._doc_count = 0
        self.rebuilds = 0
        self.incremental_ops = 0
        self.loaded_from_disk = False
        self.catch_up = CatchUpStats()
        # Journal checkpoint the postings reflect (see views/view.py for
        # the same scheme; trash rides along because soft deletes and
        # restores never journal).
        self._indexed_seq = -1
        self._indexed_purge_seq = 0
        self._indexed_journal_id = ""
        self._indexed_trash: set[str] = set()
        if mode == "auto":
            db.subscribe(self._on_change)
        if not (persist and self._try_load_checkpoint()):
            self.rebuild()

    # -- maintenance --------------------------------------------------------

    def close(self) -> None:
        if self.persist:
            self.save_checkpoint()
        if self.mode == "auto":
            self.db.unsubscribe(self._on_change)

    def rebuild(self) -> int:
        """Re-index every live document; returns the document count."""
        started = perf_counter()
        self._postings.clear()
        self._doc_terms.clear()
        self._drop_base()
        self._doc_count = 0
        for doc in self.db.all_documents():
            self._add(doc)
        self.rebuilds += 1
        self._mark_indexed()
        self.catch_up.record_rebuild(perf_counter() - started)
        return self._doc_count

    def _drop_base(self) -> None:
        self._base_blob = b""
        self._base_dir = {}
        self._base_cache.clear()
        self._docterms_blob = b""
        self._docterms_dir = {}
        self._dead.clear()
        self._merged_cache.clear()

    def refresh(self) -> str:
        """Manual-mode catch-up; reports which path ran.

        ``"noop"`` when already current, ``"topup"`` when the journal
        covers the gap (re-tokenizes only notes sequenced past the
        checkpoint), ``"rebuild"`` otherwise — the E8 baseline and the
        only path when ``journal=False``.
        """
        if self.mode != "manual" or (
            self.journal and self._indexed_seq == self.db.update_seq
            and self._indexed_purge_seq == self.db.purge_seq
            and self._indexed_journal_id == self.db.journal_id
            and self._indexed_trash == self.db._trash
        ):
            self.catch_up.record_noop()
            return "noop"
        if not self._catch_up_from_journal():
            self.rebuild()
        return self.catch_up.last_path

    def _mark_indexed(self) -> None:
        db = self.db
        self._indexed_seq = db.update_seq
        self._indexed_purge_seq = db.purge_seq
        self._indexed_journal_id = db.journal_id
        self._indexed_trash = set(db._trash)

    def _catch_up_from_journal(self) -> bool:
        """Re-tokenize only notes past the checkpoint; False -> rebuild."""
        db = self.db
        if not self.journal or self._indexed_journal_id != db.journal_id:
            return False
        if self._indexed_seq > db.update_seq:
            return False
        purges = db.purges_since(self._indexed_purge_seq)
        if purges is None:
            return False
        started = perf_counter()
        replayed = 0
        for _, unid in purges:
            self._remove(unid)
        docs, stubs = db.changed_since_seq(self._indexed_seq)
        for doc in docs:
            live = db.try_get(doc.unid)  # None when trashed meanwhile
            self._remove(doc.unid)
            if live is not None:
                self._add(live)
            replayed += 1
        for stub in stubs:
            self._remove(stub.unid)
            replayed += 1
        current_trash = set(db._trash)
        for unid in current_trash - self._indexed_trash:
            self._remove(unid)
            replayed += 1
        for unid in self._indexed_trash - current_trash:
            doc = db.try_get(unid)
            if doc is not None and not self._has_doc(unid):
                self._add(doc)
            replayed += 1
        self._mark_indexed()
        self.catch_up.record_topup(
            replayed, len(purges), perf_counter() - started
        )
        return True

    # -- checkpoint persistence -------------------------------------------

    def save_checkpoint(self) -> None:
        """Write postings + seq checkpoint through the storage engine.

        One transaction covers the meta record, both directories, and
        both blobs, so a crash never leaves a torn checkpoint: either the
        whole segment is readable or the previous one still is.
        """
        import json

        if self.db.engine is None:
            raise FullTextError("database has no storage engine")
        if self.mode == "auto":
            # Auto mode tracks every change, so the postings are current
            # as of now; a stale manual index keeps its true checkpoint.
            self._mark_indexed()
        term_parts: list[bytes] = []
        term_dir: dict[str, tuple[int, int]] = {}
        offset = 0
        for term in sorted(set(self._postings) | set(self._base_dir)):
            merged = self._merged(term)
            if not merged:
                continue
            record = marshal.dumps(merged)
            term_dir[term] = (offset, len(record))
            offset += len(record)
            term_parts.append(record)
        doc_parts: list[bytes] = []
        doc_dir: dict[str, tuple[int, int]] = {}
        offset = 0
        for unid in self._all_doc_unids():
            record = marshal.dumps(tuple(sorted(self._terms_of(unid))))
            doc_dir[unid] = (offset, len(record))
            offset += len(record)
            doc_parts.append(record)
        meta = json.dumps({
            "journal_id": self._indexed_journal_id,
            "indexed_seq": self._indexed_seq,
            "indexed_purge_seq": self._indexed_purge_seq,
            "trash": sorted(self._indexed_trash),
        }).encode()
        engine = self.db.engine
        txn = engine.begin()
        engine.put(txn, _META_KEY, meta)
        engine.put(txn, _TERM_DIR_KEY, marshal.dumps(term_dir))
        engine.put(txn, _POSTINGS_KEY, b"".join(term_parts))
        engine.put(txn, _DOC_DIR_KEY, marshal.dumps(doc_dir))
        engine.put(txn, _DOC_TERMS_KEY, b"".join(doc_parts))
        engine.commit(txn)

    def _try_load_checkpoint(self) -> bool:
        """Adopt the persisted segment and top up past its seq checkpoint.

        Parses only the meta record and the offset directories — the
        postings blob stays bytes until a term is touched. Returns False
        (caller rebuilds) when no checkpoint exists, the journal identity
        changed (pre-journal file or reseed), or the purge log no longer
        reaches back to the checkpoint.
        """
        import json

        engine = self.db.engine
        raw_meta = engine.get(_META_KEY)
        if raw_meta is None or not self.journal:
            return False
        meta = json.loads(raw_meta.decode())
        if meta.get("journal_id") != self.db.journal_id:
            return False
        if meta["indexed_seq"] > self.db.update_seq:
            return False
        if self.db.purges_since(meta["indexed_purge_seq"]) is None:
            return False
        self._base_dir = marshal.loads(engine.get(_TERM_DIR_KEY))
        self._docterms_dir = marshal.loads(engine.get(_DOC_DIR_KEY))
        # The blobs stay on disk; None marks them fetchable on demand.
        self._base_blob = None
        self._docterms_blob = None
        self._doc_count = len(self._docterms_dir)
        self._indexed_seq = meta["indexed_seq"]
        self._indexed_purge_seq = meta["indexed_purge_seq"]
        self._indexed_journal_id = meta["journal_id"]
        self._indexed_trash = set(meta.get("trash", ()))
        if not self._catch_up_from_journal():  # pragma: no cover
            return False  # validity pre-checked; cannot fail here
        self.loaded_from_disk = True
        return True

    # -- base segment access ----------------------------------------------

    def _postings_blob(self) -> bytes:
        if self._base_blob is None:
            self._base_blob = self.db.engine.get(_POSTINGS_KEY) or b""
        return self._base_blob

    def _doc_terms_blob(self) -> bytes:
        if self._docterms_blob is None:
            self._docterms_blob = self.db.engine.get(_DOC_TERMS_KEY) or b""
        return self._docterms_blob

    def _base_entry(self, term: str) -> dict[str, dict[str, list[int]]] | None:
        """Materialize (and cache) one term's base postings, dead included."""
        location = self._base_dir.get(term)
        if location is None:
            return None
        entry = self._base_cache.get(term)
        if entry is None:
            start, length = location
            entry = marshal.loads(self._postings_blob()[start:start + length])
            self._base_cache[term] = entry
        return entry

    def _merged(self, term: str) -> dict[str, dict[str, list[int]]]:
        """Overlay + base-minus-tombstones view of one term's postings.

        Terms absent from the base segment need no merging — the overlay
        dict is returned as-is (and never cached, so it is never mutated
        by :meth:`_supersede`). Cached merges are always freshly-built
        dicts this index owns.
        """
        if term not in self._base_dir:
            live = self._postings.get(term)
            return live if live is not None else {}
        merged = self._merged_cache.get(term)
        if merged is not None:
            return merged
        merged = {
            unid: fields
            for unid, fields in self._base_entry(term).items()
            if unid not in self._dead
        }
        live = self._postings.get(term)
        if live:
            merged.update(live)
        self._merged_cache[term] = merged
        return merged

    def _base_doc_terms(self, unid: str) -> tuple[str, ...]:
        location = self._docterms_dir.get(unid)
        if location is None:
            return ()
        start, length = location
        return marshal.loads(self._doc_terms_blob()[start:start + length])

    def _in_base(self, unid: str) -> bool:
        return unid in self._docterms_dir and unid not in self._dead

    def _has_doc(self, unid: str) -> bool:
        return unid in self._doc_terms or self._in_base(unid)

    def _terms_of(self, unid: str) -> set[str]:
        terms = self._doc_terms.get(unid)
        if terms is not None:
            return terms
        return set(self._base_doc_terms(unid))

    def _all_doc_unids(self) -> set[str]:
        return set(self._doc_terms) | {
            unid for unid in self._docterms_dir if unid not in self._dead
        }

    def _supersede(self, unid: str) -> None:
        """Tombstone a base document instead of editing the frozen segment.

        Already-materialized merges drop the unid directly — cheaper than
        parsing the doc's base term list, and a no-op at reopen catch-up
        time when no merge has been materialized yet.
        """
        self._dead.add(unid)
        for entry in self._merged_cache.values():
            entry.pop(unid, None)

    def _on_change(self, kind: ChangeKind, payload, old: Document | None) -> None:
        self.incremental_ops += 1
        if kind == ChangeKind.DELETE:
            self._remove(payload.unid)
        elif kind in (ChangeKind.CREATE, ChangeKind.RESTORE):
            self._add(payload)
        elif kind in (ChangeKind.UPDATE, ChangeKind.REPLACE):
            self._remove(payload.unid)
            self._add(payload)

    def _add(self, doc: Document) -> None:
        if self._in_base(doc.unid):
            self._supersede(doc.unid)
            self._doc_count -= 1
        terms: set[str] = set()
        for item in doc:
            if item.type not in _TEXT_TYPES:
                continue
            text = (
                " ".join(item.value) if isinstance(item.value, list) else item.value
            )
            field = item.name.lower()
            for position, token in enumerate(tokenize(text)):
                slot = (
                    self._postings.setdefault(token, {})
                    .setdefault(doc.unid, {})
                    .setdefault(field, [])
                )
                slot.append(position)
                terms.add(token)
        self._doc_terms[doc.unid] = terms
        for term in terms:
            self._merged_cache.pop(term, None)
        self._doc_count += 1

    def _remove(self, unid: str) -> None:
        terms = self._doc_terms.pop(unid, None)
        if terms is None:
            if self._in_base(unid):
                self._supersede(unid)
                self._doc_count -= 1
            return
        for term in terms:
            postings = self._postings.get(term)
            if postings is not None:
                postings.pop(unid, None)
                if not postings:
                    del self._postings[term]
            self._merged_cache.pop(term, None)
        if self._in_base(unid):  # overlay shadowed an older base entry
            self._supersede(unid)
        self._doc_count -= 1

    # -- stats ------------------------------------------------------------

    @property
    def term_count(self) -> int:
        """Distinct terms with at least one live posting.

        With a base segment loaded this materializes every base term
        (it must check for tombstone survivors), so it is a diagnostics
        property, not a hot path.
        """
        if not self._base_dir:
            return len(self._postings)
        terms = set(self._postings)
        for term in self._base_dir:
            if term not in terms and self._merged(term):
                terms.add(term)
        return len(terms)

    @property
    def document_count(self) -> int:
        return self._doc_count

    def postings_snapshot(self) -> dict[str, dict[str, dict[str, list[int]]]]:
        """Fully-materialized postings (overlay + base), for equivalence
        checks — forces every lazy term, so O(index)."""
        snapshot = {}
        for term in set(self._postings) | set(self._base_dir):
            merged = self._merged(term)
            if merged:
                snapshot[term] = merged
        return snapshot

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: int | None = None,
        as_user: str | None = None,
    ) -> list[SearchHit]:
        """Run ``query``; returns hits ranked by tf–idf, best first."""
        tree = parse_query(query)
        matched = self._eval(tree)
        scored = [
            SearchHit(unid, self._score(unid, tree))
            for unid in matched
            if unid in self.db
        ]
        if as_user is not None:
            scored = [
                hit
                for hit in scored
                if self.db._can_read(as_user, self.db.get(hit.unid))
            ]
        scored.sort(key=lambda hit: (-hit.score, hit.unid))
        return scored[:limit] if limit is not None else scored

    # -- boolean evaluation --------------------------------------------------

    def _universe(self) -> set[str]:
        return self._all_doc_unids()

    def _eval(self, node) -> set[str]:
        if isinstance(node, Term):
            return self._term_docs(node)
        if isinstance(node, Phrase):
            return self._phrase_docs(node)
        if isinstance(node, And):
            parts = [self._eval(part) for part in node.parts]
            result = parts[0]
            for part in parts[1:]:
                result &= part
            return result
        if isinstance(node, Or):
            result: set[str] = set()
            for part in node.parts:
                result |= self._eval(part)
            return result
        if isinstance(node, Not):
            return self._universe() - self._eval(node.part)
        raise FullTextError(f"cannot evaluate query node {node!r}")

    def _term_docs(self, term: Term) -> set[str]:
        postings = self._merged(stem(term.text.lower()))
        if term.field is None:
            return set(postings)
        field = term.field.lower()
        return {unid for unid, fields in postings.items() if field in fields}

    def _phrase_docs(self, phrase: Phrase) -> set[str]:
        words = tokenize(phrase.text)
        if not words:
            return set()
        if len(words) == 1:
            return self._term_docs(Term(words[0], field=phrase.field))
        candidates = None
        for word in words:
            docs = set(self._merged(word))
            candidates = docs if candidates is None else candidates & docs
        result = set()
        for unid in candidates or ():
            if self._phrase_in_doc(words, unid, phrase.field):
                result.add(unid)
        return result

    def _phrase_in_doc(self, words: list[str], unid: str, field: str | None) -> bool:
        fields = set()
        for word in words:
            entry = self._merged(word).get(unid, {})
            fields |= set(entry)
        if field is not None:
            fields &= {field.lower()}
        for candidate_field in fields:
            starts = self._merged(words[0]).get(unid, {}).get(
                candidate_field, []
            )
            for start in starts:
                if all(
                    (start + offset)
                    in self._merged(word).get(unid, {}).get(
                        candidate_field, []
                    )
                    for offset, word in enumerate(words[1:], 1)
                ):
                    return True
        return False

    # -- scoring ------------------------------------------------------------

    def _positive_terms(self, node) -> list[Term | Phrase]:
        if isinstance(node, (Term, Phrase)):
            return [node]
        if isinstance(node, (And, Or)):
            out = []
            for part in node.parts:
                out.extend(self._positive_terms(part))
            return out
        return []  # NOT subtrees do not contribute to relevance

    def _score(self, unid: str, tree) -> float:
        total = 0.0
        n_docs = max(self._doc_count, 1)
        for node in self._positive_terms(tree):
            words = (
                tokenize(node.text)
                if isinstance(node, Phrase)
                else [stem(node.text.lower())]
            )
            for word in words:
                postings = self._merged(word)
                if not postings or unid not in postings:
                    continue
                tf = sum(
                    len(positions) * self.field_weights.get(field, 1.0)
                    for field, positions in postings[unid].items()
                )
                idf = math.log(n_docs / len(postings)) + 1.0
                total += tf * idf
        return total
