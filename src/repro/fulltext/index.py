"""The inverted full-text index.

Postings map ``term -> unid -> field -> [positions]``. The index subscribes
to database change events for incremental maintenance (``auto`` mode); the
``rebuild()`` path re-tokenizes the whole database and is the E8 baseline.

Scoring is tf–idf: ``tf * log(N / df)`` summed over the positive terms of
the query. Phrases verify adjacent positions inside one field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FullTextError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.core.items import ItemType
from repro.fulltext.query import And, Not, Or, Phrase, Term, parse_query
from repro.fulltext.tokenizer import stem, tokenize

_TEXT_TYPES = (ItemType.TEXT, ItemType.RICH_TEXT, ItemType.TEXT_LIST,
               ItemType.NAMES, ItemType.AUTHORS, ItemType.READERS)


@dataclass(frozen=True)
class SearchHit:
    unid: str
    score: float


class FullTextIndex:
    """An incrementally-maintained inverted index over one database."""

    #: Default per-field score multipliers: a hit in the Subject counts
    #: double — title matches rank above body mentions.
    DEFAULT_FIELD_WEIGHTS = {"subject": 2.0}

    def __init__(
        self,
        db: NotesDatabase,
        mode: str = "auto",
        field_weights: dict[str, float] | None = None,
    ) -> None:
        if mode not in ("auto", "manual"):
            raise FullTextError(f"mode must be 'auto' or 'manual', got {mode!r}")
        self.db = db
        self.mode = mode
        self.field_weights = (
            dict(self.DEFAULT_FIELD_WEIGHTS)
            if field_weights is None
            else {name.lower(): weight for name, weight in field_weights.items()}
        )
        # term -> unid -> field(lower) -> positions
        self._postings: dict[str, dict[str, dict[str, list[int]]]] = {}
        # unid -> term set (for cheap removal)
        self._doc_terms: dict[str, set[str]] = {}
        self._doc_count = 0
        self.rebuilds = 0
        self.incremental_ops = 0
        if mode == "auto":
            db.subscribe(self._on_change)
        self.rebuild()

    # -- maintenance --------------------------------------------------------

    def close(self) -> None:
        if self.mode == "auto":
            self.db.unsubscribe(self._on_change)

    def rebuild(self) -> int:
        """Re-index every live document; returns the document count."""
        self._postings.clear()
        self._doc_terms.clear()
        self._doc_count = 0
        for doc in self.db.all_documents():
            self._add(doc)
        self.rebuilds += 1
        return self._doc_count

    def refresh(self) -> None:
        """Manual-mode catch-up (full rebuild, like the E8 baseline)."""
        if self.mode == "manual":
            self.rebuild()

    def _on_change(self, kind: ChangeKind, payload, old: Document | None) -> None:
        self.incremental_ops += 1
        if kind == ChangeKind.DELETE:
            self._remove(payload.unid)
        elif kind in (ChangeKind.CREATE, ChangeKind.RESTORE):
            self._add(payload)
        elif kind in (ChangeKind.UPDATE, ChangeKind.REPLACE):
            self._remove(payload.unid)
            self._add(payload)

    def _add(self, doc: Document) -> None:
        terms: set[str] = set()
        for item in doc:
            if item.type not in _TEXT_TYPES:
                continue
            text = (
                " ".join(item.value) if isinstance(item.value, list) else item.value
            )
            field = item.name.lower()
            for position, token in enumerate(tokenize(text)):
                slot = (
                    self._postings.setdefault(token, {})
                    .setdefault(doc.unid, {})
                    .setdefault(field, [])
                )
                slot.append(position)
                terms.add(token)
        self._doc_terms[doc.unid] = terms
        self._doc_count += 1

    def _remove(self, unid: str) -> None:
        terms = self._doc_terms.pop(unid, None)
        if terms is None:
            return
        for term in terms:
            postings = self._postings.get(term)
            if postings is not None:
                postings.pop(unid, None)
                if not postings:
                    del self._postings[term]
        self._doc_count -= 1

    # -- stats ------------------------------------------------------------

    @property
    def term_count(self) -> int:
        return len(self._postings)

    @property
    def document_count(self) -> int:
        return self._doc_count

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: int | None = None,
        as_user: str | None = None,
    ) -> list[SearchHit]:
        """Run ``query``; returns hits ranked by tf–idf, best first."""
        tree = parse_query(query)
        matched = self._eval(tree)
        scored = [
            SearchHit(unid, self._score(unid, tree))
            for unid in matched
            if unid in self.db
        ]
        if as_user is not None:
            scored = [
                hit
                for hit in scored
                if self.db._can_read(as_user, self.db.get(hit.unid))
            ]
        scored.sort(key=lambda hit: (-hit.score, hit.unid))
        return scored[:limit] if limit is not None else scored

    # -- boolean evaluation --------------------------------------------------

    def _universe(self) -> set[str]:
        return set(self._doc_terms)

    def _eval(self, node) -> set[str]:
        if isinstance(node, Term):
            return self._term_docs(node)
        if isinstance(node, Phrase):
            return self._phrase_docs(node)
        if isinstance(node, And):
            parts = [self._eval(part) for part in node.parts]
            result = parts[0]
            for part in parts[1:]:
                result &= part
            return result
        if isinstance(node, Or):
            result: set[str] = set()
            for part in node.parts:
                result |= self._eval(part)
            return result
        if isinstance(node, Not):
            return self._universe() - self._eval(node.part)
        raise FullTextError(f"cannot evaluate query node {node!r}")

    def _term_docs(self, term: Term) -> set[str]:
        postings = self._postings.get(stem(term.text.lower()), {})
        if term.field is None:
            return set(postings)
        field = term.field.lower()
        return {unid for unid, fields in postings.items() if field in fields}

    def _phrase_docs(self, phrase: Phrase) -> set[str]:
        words = tokenize(phrase.text)
        if not words:
            return set()
        if len(words) == 1:
            return self._term_docs(Term(words[0], field=phrase.field))
        candidates = None
        for word in words:
            docs = set(self._postings.get(word, {}))
            candidates = docs if candidates is None else candidates & docs
        result = set()
        for unid in candidates or ():
            if self._phrase_in_doc(words, unid, phrase.field):
                result.add(unid)
        return result

    def _phrase_in_doc(self, words: list[str], unid: str, field: str | None) -> bool:
        fields = set()
        for word in words:
            entry = self._postings.get(word, {}).get(unid, {})
            fields |= set(entry)
        if field is not None:
            fields &= {field.lower()}
        for candidate_field in fields:
            starts = self._postings.get(words[0], {}).get(unid, {}).get(
                candidate_field, []
            )
            for start in starts:
                if all(
                    (start + offset)
                    in self._postings.get(word, {}).get(unid, {}).get(
                        candidate_field, []
                    )
                    for offset, word in enumerate(words[1:], 1)
                ):
                    return True
        return False

    # -- scoring ------------------------------------------------------------

    def _positive_terms(self, node) -> list[Term | Phrase]:
        if isinstance(node, (Term, Phrase)):
            return [node]
        if isinstance(node, (And, Or)):
            out = []
            for part in node.parts:
                out.extend(self._positive_terms(part))
            return out
        return []  # NOT subtrees do not contribute to relevance

    def _score(self, unid: str, tree) -> float:
        total = 0.0
        n_docs = max(self._doc_count, 1)
        for node in self._positive_terms(tree):
            words = (
                tokenize(node.text)
                if isinstance(node, Phrase)
                else [stem(node.text.lower())]
            )
            for word in words:
                postings = self._postings.get(word)
                if not postings or unid not in postings:
                    continue
                tf = sum(
                    len(positions) * self.field_weights.get(field, 1.0)
                    for field, positions in postings[unid].items()
                )
                idf = math.log(n_docs / len(postings)) + 1.0
                total += tf * idf
        return total
