"""The inverted full-text index.

Postings map ``term -> unid -> field -> [positions]``. The index subscribes
to database change events for incremental maintenance (``auto`` mode); the
``rebuild()`` path re-tokenizes the whole database and is the E8 baseline.

With ``persist=True`` the postings plus a seq checkpoint are written
through the storage engine as a **stack of immutable segments**
(:class:`repro.storage.SegmentStack`): each ``save_checkpoint`` appends
the live overlay as a *new* segment — close cost O(delta), the other
half of what the seq journal did for reopen — and a merge policy folds
segments back together (smallest adjacent pair first) when their count
or dead ratio crosses a threshold, the LSM/Lucene amortization. Two
stacks ride in positional lockstep: ``ftidx:terms`` holds each segment's
term → postings records (every segment's record is live data for the
documents written in that segment) and ``ftidx:docs`` holds the
doc → terms table whose newest-wins positions arbitrate which segment's
postings for a document still count.

A reopened database loads only the meta record and the per-segment
offset directories; postings blobs stay unparsed bytes until a query
touches a term, and only notes sequenced past the checkpoint are
re-tokenized. That keeps reopen O(directories + changes) and close
O(delta) — both ends of the session now ride the delta (experiments E14
and E15).

Scoring is tf–idf: ``tf * log(N / df)`` summed over the positive terms of
the query. Phrases verify adjacent positions inside one field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

from repro.errors import FullTextError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.core.items import ItemType
from repro.core.stats import CatchUpStats
from repro.fulltext.query import And, Not, Or, Phrase, Term, parse_query
from repro.fulltext.tokenizer import stem, tokenize
from repro.storage.segments import MergePolicy, SegmentStack, SegmentStats

_TEXT_TYPES = (ItemType.TEXT, ItemType.RICH_TEXT, ItemType.TEXT_LIST,
               ItemType.NAMES, ItemType.AUTHORS, ItemType.READERS)

#: Engine keys of the persisted checkpoint. The meta record is JSON and
#: embeds both stacks' manifests; the per-segment directories and blobs
#: live under the stack namespaces and are managed by SegmentStack.
_META_KEY = b"ftidx:meta"
_TERMS_NS = b"ftidx:terms"
_DOCS_NS = b"ftidx:docs"


@dataclass(frozen=True)
class SearchHit:
    unid: str
    score: float


class FullTextIndex:
    """An incrementally-maintained inverted index over one database."""

    #: Default per-field score multipliers: a hit in the Subject counts
    #: double — title matches rank above body mentions.
    DEFAULT_FIELD_WEIGHTS = {"subject": 2.0}

    def __init__(
        self,
        db: NotesDatabase,
        mode: str = "auto",
        field_weights: dict[str, float] | None = None,
        persist: bool = False,
        journal: bool = True,
        merge_policy: MergePolicy | None = None,
    ) -> None:
        if mode not in ("auto", "manual"):
            raise FullTextError(f"mode must be 'auto' or 'manual', got {mode!r}")
        if persist and db.engine is None:
            raise FullTextError(
                "persist=True needs a database with a storage engine"
            )
        self.db = db
        self.mode = mode
        self.persist = persist
        self.journal = journal
        self.merge_policy = merge_policy or MergePolicy()
        self.field_weights = (
            dict(self.DEFAULT_FIELD_WEIGHTS)
            if field_weights is None
            else {name.lower(): weight for name, weight in field_weights.items()}
        )
        # Live overlay: term -> unid -> field(lower) -> positions, plus
        # unid -> term set (for cheap removal). Everything indexed since
        # the last segment append lives here; save_checkpoint freezes it
        # into a new segment.
        self._postings: dict[str, dict[str, dict[str, list[int]]]] = {}
        self._doc_terms: dict[str, set[str]] = {}
        # The frozen segment stacks (None until a checkpoint is loaded or
        # saved). ``_dead`` masks stack documents superseded or deleted
        # since the last append; it becomes the stack's tombstones at the
        # next save.
        self._terms_stack: SegmentStack | None = None
        self._docs_stack: SegmentStack | None = None
        self._dead: set[str] = set()
        # Per-term merge of overlay + stack-minus-dead, invalidated on
        # writes that touch the term.
        self._merged_cache: dict[str, dict[str, dict[str, list[int]]]] = {}
        self._doc_count = 0
        self.rebuilds = 0
        self.incremental_ops = 0
        self.loaded_from_disk = False
        self.catch_up = CatchUpStats()
        # Stats objects outlive stack reconstructions (rebuilds, reloads)
        # so the counters accumulate across the index's whole life.
        self._terms_stats = SegmentStats()
        self._docs_stats = SegmentStats()
        self.catch_up.segment_stats["terms"] = self._terms_stats
        self.catch_up.segment_stats["docs"] = self._docs_stats
        # Journal checkpoint the postings reflect (see views/view.py for
        # the same scheme; trash rides along because soft deletes and
        # restores never journal).
        self._indexed_seq = -1
        self._indexed_purge_seq = 0
        self._indexed_journal_id = ""
        self._indexed_trash: set[str] = set()
        if mode == "auto":
            db.subscribe(self._on_change)
        if persist:
            db.register_checkpointer(self.save_checkpoint)
        if not (persist and self._try_load_checkpoint()):
            self.rebuild()

    # -- maintenance --------------------------------------------------------

    def close(self) -> None:
        if self.persist:
            self.save_checkpoint()
            self.db.unregister_checkpointer(self.save_checkpoint)
        if self.mode == "auto":
            self.db.unsubscribe(self._on_change)

    def rebuild(self) -> int:
        """Re-index every live document; returns the document count."""
        started = perf_counter()
        self._postings.clear()
        self._doc_terms.clear()
        self._drop_base()
        self._doc_count = 0
        for doc in self.db.all_documents():
            self._add(doc)
        self.rebuilds += 1
        self._mark_indexed()
        self.catch_up.record_rebuild(perf_counter() - started)
        return self._doc_count

    def _drop_base(self) -> None:
        """Forget the loaded stacks; the next save rewrites from scratch
        (and deletes whatever segment keys the old meta still names)."""
        self._terms_stack = None
        self._docs_stack = None
        self._dead.clear()
        self._merged_cache.clear()

    def refresh(self) -> str:
        """Manual-mode catch-up; reports which path ran.

        ``"noop"`` when already current, ``"topup"`` when the journal
        covers the gap (re-tokenizes only notes sequenced past the
        checkpoint), ``"rebuild"`` otherwise — the E8 baseline and the
        only path when ``journal=False``.
        """
        if self.mode != "manual" or (
            self.journal and self._indexed_seq == self.db.update_seq
            and self._indexed_purge_seq == self.db.purge_seq
            and self._indexed_journal_id == self.db.journal_id
            and self._indexed_trash == self.db._trash
        ):
            self.catch_up.record_noop()
            return "noop"
        if not self._catch_up_from_journal():
            self.rebuild()
        return self.catch_up.last_path

    def _mark_indexed(self) -> None:
        db = self.db
        self._indexed_seq = db.update_seq
        self._indexed_purge_seq = db.purge_seq
        self._indexed_journal_id = db.journal_id
        self._indexed_trash = set(db._trash)

    def _catch_up_from_journal(self) -> bool:
        """Re-tokenize only notes past the checkpoint; False -> rebuild."""
        db = self.db
        if not self.journal or self._indexed_journal_id != db.journal_id:
            return False
        if self._indexed_seq > db.update_seq:
            return False
        purges = db.purges_since(self._indexed_purge_seq)
        if purges is None:
            return False
        started = perf_counter()
        replayed = 0
        for _, unid in purges:
            self._remove(unid)
        docs, stubs = db.changed_since_seq(self._indexed_seq)
        for doc in docs:
            live = db.try_get(doc.unid)  # None when trashed meanwhile
            self._remove(doc.unid)
            if live is not None:
                self._add(live)
            replayed += 1
        for stub in stubs:
            self._remove(stub.unid)
            replayed += 1
        current_trash = set(db._trash)
        for unid in current_trash - self._indexed_trash:
            self._remove(unid)
            replayed += 1
        for unid in self._indexed_trash - current_trash:
            doc = db.try_get(unid)
            if doc is not None and not self._has_doc(unid):
                self._add(doc)
            replayed += 1
        self._mark_indexed()
        self.catch_up.record_topup(
            replayed, len(purges), perf_counter() - started
        )
        return True

    # -- checkpoint persistence -------------------------------------------

    def _make_stacks(self) -> None:
        self._terms_stack = SegmentStack(
            self.db.engine, _TERMS_NS, policy=self.merge_policy,
            newest_wins=False, stats=self._terms_stats,
        )
        self._docs_stack = SegmentStack(
            self.db.engine, _DOCS_NS, policy=self.merge_policy,
            stats=self._docs_stats,
        )

    def _fold_combine(self, index: int, newer_doc_keys: set[str]):
        """Combine callback folding the terms stack in lockstep with a
        docs-stack fold at ``index``.

        A document's postings for a term must come from the segment that
        holds the document's live version: entries whose document was
        rewritten in the pair's newer segment (``newer_doc_keys``, the
        docs directory captured *before* the docs fold) or in a segment
        above the pair are dead and dropped here — folds are where the
        tombstone debt gets paid down.
        """
        docs = self._docs_stack

        def combine(term, older, newer):
            merged = {}
            for unid, fields in (older or {}).items():
                if unid not in newer_doc_keys and docs.position_of(unid) == index:
                    merged[unid] = fields
            for unid, fields in (newer or {}).items():
                if docs.position_of(unid) == index:
                    merged[unid] = fields
            return merged or None

        return combine

    def save_checkpoint(self) -> None:
        """Append the live overlay as a new segment + the seq checkpoint.

        One transaction covers the appended segment pair, any folds the
        merge policy demands, and the meta record naming them, so a crash
        never leaves a torn checkpoint: either the whole new stack state
        is readable or the previous one still is. Cost is O(overlay) —
        the delta since the last save — plus whatever the policy folds.
        """
        import json

        if self.db.engine is None:
            raise FullTextError("database has no storage engine")
        if self.mode == "auto":
            # Auto mode tracks every change, so the postings are current
            # as of now; a stale manual index keeps its true checkpoint.
            self._mark_indexed()
        engine = self.db.engine
        txn = engine.begin()
        if self._terms_stack is None:
            raw_meta = engine.get(_META_KEY)
            if raw_meta is not None:
                old_meta = json.loads(raw_meta.decode())
                SegmentStack.delete_manifest(
                    engine, txn, _TERMS_NS, old_meta.get("terms", {})
                )
                SegmentStack.delete_manifest(
                    engine, txn, _DOCS_NS, old_meta.get("docs", {})
                )
            self._make_stacks()
        # Honour runtime policy swaps (the E15 ablation flips a warm
        # index to SINGLE_SEGMENT between saves).
        self._terms_stack.policy = self.merge_policy
        self._docs_stack.policy = self.merge_policy
        folds: list[int] = []
        if self._doc_terms or self._dead:
            docs_records = {
                unid: tuple(sorted(terms))
                for unid, terms in self._doc_terms.items()
            }
            terms_records = {
                term: postings
                for term, postings in self._postings.items()
                if postings
            }
            self._docs_stack.append(txn, docs_records, remove=self._dead)
            self._terms_stack.append(txn, terms_records)
            folds = self._docs_stack.maintain(
                txn,
                mirror=lambda index, newer_keys: self._terms_stack.fold(
                    txn, index, self._fold_combine(index, newer_keys)
                ),
            )
            # The overlay now lives in the stack (append seeded the
            # record caches, so nothing re-parses on the next query).
            self._postings = {}
            self._doc_terms = {}
            self._dead = set()
        meta = json.dumps({
            "journal_id": self._indexed_journal_id,
            "indexed_seq": self._indexed_seq,
            "indexed_purge_seq": self._indexed_purge_seq,
            "trash": sorted(self._indexed_trash),
            "terms": self._terms_stack.manifest(),
            "docs": self._docs_stack.manifest(),
        }).encode()
        engine.put(txn, _META_KEY, meta)
        engine.commit(txn)
        self.catch_up.record_merge(len(folds))

    def _try_load_checkpoint(self) -> bool:
        """Adopt the persisted segments and top up past the checkpoint.

        Parses only the meta record and the per-segment offset
        directories — postings blobs stay bytes until a term is touched.
        Returns False (caller rebuilds) when no checkpoint exists, the
        journal identity changed (pre-journal file or reseed), the purge
        log no longer reaches back to the checkpoint, or the manifest
        names a segment the engine does not hold.
        """
        import json

        engine = self.db.engine
        raw_meta = engine.get(_META_KEY)
        if raw_meta is None or not self.journal:
            return False
        meta = json.loads(raw_meta.decode())
        if meta.get("journal_id") != self.db.journal_id:
            return False
        if meta["indexed_seq"] > self.db.update_seq:
            return False
        if self.db.purges_since(meta["indexed_purge_seq"]) is None:
            return False
        self._make_stacks()
        if not self._docs_stack.load(meta.get("docs", {})) or (
            not self._terms_stack.load(meta.get("terms", {}))
        ):
            self._drop_base()
            return False
        self._doc_count = self._docs_stack.live_count()
        self._indexed_seq = meta["indexed_seq"]
        self._indexed_purge_seq = meta["indexed_purge_seq"]
        self._indexed_journal_id = meta["journal_id"]
        self._indexed_trash = set(meta.get("trash", ()))
        if not self._catch_up_from_journal():  # pragma: no cover
            return False  # validity pre-checked; cannot fail here
        self.loaded_from_disk = True
        return True

    # -- segment stack access ----------------------------------------------

    def _merged(self, term: str) -> dict[str, dict[str, list[int]]]:
        """Overlay + stack-minus-dead view of one term's postings.

        Terms absent from every segment need no merging — the overlay
        dict is returned as-is (and never cached, so it is never mutated
        by :meth:`_supersede`). Cached merges are always freshly-built
        dicts this index owns. A stack entry counts only when its
        segment is the document's newest home (the docs stack
        arbitrates) and the document is not dead.
        """
        if self._terms_stack is None or term not in self._terms_stack:
            live = self._postings.get(term)
            return live if live is not None else {}
        merged = self._merged_cache.get(term)
        if merged is not None:
            return merged
        merged = {}
        for position, record in self._terms_stack.records(term):
            for unid, fields in record.items():
                if unid in self._dead or unid in self._doc_terms:
                    continue  # superseded since the last append
                if self._docs_stack.position_of(unid) != position:
                    continue  # a newer segment rewrote this document
                merged[unid] = fields
        live = self._postings.get(term)
        if live:
            merged.update(live)
        self._merged_cache[term] = merged
        return merged

    def _in_stack(self, unid: str) -> bool:
        return (
            self._docs_stack is not None
            and unid not in self._dead
            and self._docs_stack.position_of(unid) is not None
        )

    def _has_doc(self, unid: str) -> bool:
        return unid in self._doc_terms or self._in_stack(unid)

    def _terms_of(self, unid: str) -> set[str]:
        terms = self._doc_terms.get(unid)
        if terms is not None:
            return terms
        if not self._in_stack(unid):
            return set()
        record = self._docs_stack.get(unid)
        return set(record) if record else set()

    def _all_doc_unids(self) -> set[str]:
        unids = set(self._doc_terms)
        if self._docs_stack is not None:
            unids.update(
                unid
                for unid in self._docs_stack.live_keys()
                if unid not in self._dead
            )
        return unids

    def _supersede(self, unid: str) -> None:
        """Tombstone a stack document instead of editing frozen segments.

        Already-materialized merges drop the unid directly — cheaper than
        parsing the doc's stack term list, and a no-op at reopen catch-up
        time when no merge has been materialized yet.
        """
        self._dead.add(unid)
        for entry in self._merged_cache.values():
            entry.pop(unid, None)

    def _on_change(self, kind: ChangeKind, payload, old: Document | None) -> None:
        self.incremental_ops += 1
        if kind == ChangeKind.DELETE:
            self._remove(payload.unid)
        elif kind in (ChangeKind.CREATE, ChangeKind.RESTORE):
            self._add(payload)
        elif kind in (ChangeKind.UPDATE, ChangeKind.REPLACE):
            self._remove(payload.unid)
            self._add(payload)

    def _add(self, doc: Document) -> None:
        if self._in_stack(doc.unid):
            self._supersede(doc.unid)
            self._doc_count -= 1
        terms: set[str] = set()
        for item in doc:
            if item.type not in _TEXT_TYPES:
                continue
            text = (
                " ".join(item.value) if isinstance(item.value, list) else item.value
            )
            field = item.name.lower()
            for position, token in enumerate(tokenize(text)):
                slot = (
                    self._postings.setdefault(token, {})
                    .setdefault(doc.unid, {})
                    .setdefault(field, [])
                )
                slot.append(position)
                terms.add(token)
        self._doc_terms[doc.unid] = terms
        for term in terms:
            self._merged_cache.pop(term, None)
        self._doc_count += 1

    def _remove(self, unid: str) -> None:
        terms = self._doc_terms.pop(unid, None)
        if terms is None:
            if self._in_stack(unid):
                self._supersede(unid)
                self._doc_count -= 1
            return
        for term in terms:
            postings = self._postings.get(term)
            if postings is not None:
                postings.pop(unid, None)
                if not postings:
                    del self._postings[term]
            self._merged_cache.pop(term, None)
        if self._in_stack(unid):  # overlay shadowed an older stack entry
            self._supersede(unid)
        self._doc_count -= 1

    # -- stats ------------------------------------------------------------

    @property
    def term_count(self) -> int:
        """Distinct terms with at least one live posting.

        With segments loaded this materializes every stack term (it must
        check for tombstone survivors), so it is a diagnostics property,
        not a hot path.
        """
        if self._terms_stack is None:
            return len(self._postings)
        terms = set(self._postings)
        for term in self._terms_stack.keys():
            if term not in terms and self._merged(term):
                terms.add(term)
        return len(terms)

    @property
    def document_count(self) -> int:
        return self._doc_count

    def postings_snapshot(self) -> dict[str, dict[str, dict[str, list[int]]]]:
        """Fully-materialized postings (overlay + stack), for equivalence
        checks — forces every lazy term, so O(index)."""
        snapshot = {}
        terms = set(self._postings)
        if self._terms_stack is not None:
            terms.update(self._terms_stack.keys())
        for term in terms:
            merged = self._merged(term)
            if merged:
                snapshot[term] = merged
        return snapshot

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: int | None = None,
        as_user: str | None = None,
    ) -> list[SearchHit]:
        """Run ``query``; returns hits ranked by tf–idf, best first."""
        tree = parse_query(query)
        matched = self._eval(tree)
        scored = [
            SearchHit(unid, self._score(unid, tree))
            for unid in matched
            if unid in self.db
        ]
        if as_user is not None:
            scored = [
                hit
                for hit in scored
                if self.db._can_read(as_user, self.db.get(hit.unid))
            ]
        scored.sort(key=lambda hit: (-hit.score, hit.unid))
        return scored[:limit] if limit is not None else scored

    # -- boolean evaluation --------------------------------------------------

    def _universe(self) -> set[str]:
        return self._all_doc_unids()

    def _eval(self, node) -> set[str]:
        if isinstance(node, Term):
            return self._term_docs(node)
        if isinstance(node, Phrase):
            return self._phrase_docs(node)
        if isinstance(node, And):
            parts = [self._eval(part) for part in node.parts]
            result = parts[0]
            for part in parts[1:]:
                result &= part
            return result
        if isinstance(node, Or):
            result: set[str] = set()
            for part in node.parts:
                result |= self._eval(part)
            return result
        if isinstance(node, Not):
            return self._universe() - self._eval(node.part)
        raise FullTextError(f"cannot evaluate query node {node!r}")

    def _term_docs(self, term: Term) -> set[str]:
        postings = self._merged(stem(term.text.lower()))
        if term.field is None:
            return set(postings)
        field = term.field.lower()
        return {unid for unid, fields in postings.items() if field in fields}

    def _phrase_docs(self, phrase: Phrase) -> set[str]:
        words = tokenize(phrase.text)
        if not words:
            return set()
        if len(words) == 1:
            return self._term_docs(Term(words[0], field=phrase.field))
        candidates = None
        for word in words:
            docs = set(self._merged(word))
            candidates = docs if candidates is None else candidates & docs
        result = set()
        for unid in candidates or ():
            if self._phrase_in_doc(words, unid, phrase.field):
                result.add(unid)
        return result

    def _phrase_in_doc(self, words: list[str], unid: str, field: str | None) -> bool:
        fields = set()
        for word in words:
            entry = self._merged(word).get(unid, {})
            fields |= set(entry)
        if field is not None:
            fields &= {field.lower()}
        for candidate_field in fields:
            starts = self._merged(words[0]).get(unid, {}).get(
                candidate_field, []
            )
            for start in starts:
                if all(
                    (start + offset)
                    in self._merged(word).get(unid, {}).get(
                        candidate_field, []
                    )
                    for offset, word in enumerate(words[1:], 1)
                ):
                    return True
        return False

    # -- scoring ------------------------------------------------------------

    def _positive_terms(self, node) -> list[Term | Phrase]:
        if isinstance(node, (Term, Phrase)):
            return [node]
        if isinstance(node, (And, Or)):
            out = []
            for part in node.parts:
                out.extend(self._positive_terms(part))
            return out
        return []  # NOT subtrees do not contribute to relevance

    def _score(self, unid: str, tree) -> float:
        total = 0.0
        n_docs = max(self._doc_count, 1)
        for node in self._positive_terms(tree):
            words = (
                tokenize(node.text)
                if isinstance(node, Phrase)
                else [stem(node.text.lower())]
            )
            for word in words:
                postings = self._merged(word)
                if not postings or unid not in postings:
                    continue
                tf = sum(
                    len(positions) * self.field_weights.get(field, 1.0)
                    for field, positions in postings[unid].items()
                )
                idf = math.log(n_docs / len(postings)) + 1.0
                total += tf * idf
        return total
