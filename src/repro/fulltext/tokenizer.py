"""Tokenization for full-text indexing and querying.

Lowercased word tokens, digit runs kept, a small English stopword list, and
a light suffix-stripping stemmer so "replicates"/"replicated"/"replication"
meet at a common stem. The same pipeline runs at index and query time.
"""

from __future__ import annotations

import re

_WORD = re.compile(r"[a-z0-9]+")

STOPWORDS = frozenset(
    """a an and are as at be but by for from has have i in is it its of on or
    that the this to was were will with not no you your we our they he she"""
    .split()
)

_SUFFIXES = ("ingly", "edly", "ation", "ions", "ing", "ies", "ied", "ion",
             "es", "ed", "ly", "s")


def stem(word: str) -> str:
    """Very light suffix stripping; never shortens below three characters."""
    for suffix in _SUFFIXES:
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            base = word[: -len(suffix)]
            if suffix in ("ies", "ied"):
                base += "y"
            return base
    return word


def tokenize(text: str, stop: bool = True, do_stem: bool = True) -> list[str]:
    """Text -> token list. Stopwords dropped, stems applied, order kept."""
    tokens = []
    for match in _WORD.finditer(text.lower()):
        word = match.group()
        if stop and word in STOPWORDS:
            continue
        tokens.append(stem(word) if do_stem else word)
    return tokens
