"""Administration tools: archiving and storage compaction.

The nightly chores of a Domino administrator, expressed over the library:
``archive_documents`` moves aging documents into an archive database (with
deletion stubs left behind so the move replicates), and
``StorageEngine.compact``-style space reclamation lives in
:func:`compact_engine`.
"""

from repro.tools.archive import ArchiveResult, archive_documents
from repro.tools.catalog import replicas_of, update_catalog
from repro.tools.compact import CompactResult, compact_engine

__all__ = [
    "ArchiveResult",
    "CompactResult",
    "archive_documents",
    "compact_engine",
    "replicas_of",
    "update_catalog",
]
