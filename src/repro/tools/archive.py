"""Document archiving: move aging documents to an archive database.

Mirrors the Notes archive task: documents matching a cutoff (and optional
selection formula) are *copied* into the archive database preserving their
UNIDs and envelopes, then deleted from the source — leaving deletion stubs
so the removal replicates to the other replicas of the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DatabaseError
from repro.core.database import ChangeKind, NotesDatabase
from repro.formula import Formula, compile_formula


@dataclass
class ArchiveResult:
    """What one archive pass did."""

    examined: int = 0
    archived: int = 0
    skipped: int = 0
    bytes_moved: int = 0
    archived_unids: list[str] = field(default_factory=list)


def archive_documents(
    source: NotesDatabase,
    archive: NotesDatabase,
    not_modified_since: float,
    selection: str | None = None,
    keep_responses_with_parents: bool = True,
    author: str = "archiver",
) -> ArchiveResult:
    """Move documents idle since ``not_modified_since`` into ``archive``.

    Parameters
    ----------
    source / archive:
        The live database and its archive. They must be *different
        families* (an archive is not a replica: same-replica archiving
        would let replication pull the archived docs straight back).
    not_modified_since:
        Documents with ``modified`` strictly before this virtual time are
        candidates.
    selection:
        Optional selection formula further restricting candidates.
    keep_responses_with_parents:
        When True (the Notes default), a response whose parent stays is
        kept too, so threads are not torn apart mid-conversation.
    """
    if source.replica_id == archive.replica_id:
        raise DatabaseError(
            "archive target must not be a replica of the source"
        )
    formula: Formula | None = (
        compile_formula(selection) if selection is not None else None
    )
    result = ArchiveResult()
    candidates: set[str] = set()
    for doc in source.all_documents():
        result.examined += 1
        if doc.modified >= not_modified_since:
            continue
        if formula is not None and not formula.select(doc, db=source):
            continue
        candidates.add(doc.unid)
    if keep_responses_with_parents:
        # Iterate to a fixed point: keep any response whose parent stays.
        changed = True
        while changed:
            changed = False
            for unid in list(candidates):
                doc = source.get(unid)
                if (
                    doc.parent_unid is not None
                    and doc.parent_unid in source
                    and doc.parent_unid not in candidates
                ):
                    candidates.discard(unid)
                    changed = True
    for unid in sorted(candidates):
        doc = source.get(unid)
        archive.raw_put(doc.copy(), ChangeKind.REPLACE)
        result.bytes_moved += doc.size()
        source.delete(unid, author=author)
        result.archived += 1
        result.archived_unids.append(unid)
    result.skipped = result.examined - result.archived
    return result
