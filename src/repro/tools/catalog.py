"""The database catalog: a database describing the databases.

Mirrors ``catalog.nsf``: one document per (server, replica) pair with
title, replica id and size statistics, refreshed by the catalog task.
Being an ordinary database, the catalog itself can be viewed, searched and
replicated like anything else.
"""

from __future__ import annotations

from repro.core.database import NotesDatabase
from repro.replication.network import SimulatedNetwork

CATALOG_FORM = "Database"


def update_catalog(catalog: NotesDatabase, network: SimulatedNetwork) -> int:
    """Refresh ``catalog`` with one document per replica in ``network``.

    Existing entries are updated in place; entries whose database vanished
    are removed. Returns the number of live catalog entries.
    """
    seen: set[str] = set()
    existing = {
        (doc.get("Server"), doc.get("ReplicaId")): doc
        for doc in catalog.all_documents()
        if doc.get("Form") == CATALOG_FORM
    }
    for server_name in sorted(network.servers):
        server = network.server(server_name)
        for replica_id, db in sorted(server.databases.items()):
            key = (server_name, replica_id)
            items = {
                "Form": CATALOG_FORM,
                "Title": db.title,
                "Server": server_name,
                "ReplicaId": replica_id,
                "Documents": len(db),
                "DeletionStubs": len(db.stubs),
                "SizeBytes": sum(doc.size() for doc in db.all_documents()),
            }
            entry = existing.get(key)
            if entry is not None:
                catalog.update(entry.unid, items, author="catalog")
                seen.add(entry.unid)
            else:
                seen.add(catalog.create(items, author="catalog").unid)
    for key, doc in existing.items():
        if doc.unid not in seen:
            catalog.delete(doc.unid, author="catalog")
    return len(seen)


def replicas_of(catalog: NotesDatabase, replica_id: str) -> list[str]:
    """Servers carrying ``replica_id``, per the catalog's current state."""
    return sorted(
        doc.get("Server")
        for doc in catalog.all_documents()
        if doc.get("Form") == CATALOG_FORM
        and doc.get("ReplicaId") == replica_id
    )
