"""Storage compaction: rewrite the heap, dropping dead space.

The engine's no-steal redo design can orphan heap slots after crash
recovery, and deletes leave free space scattered across pages. Compaction —
the Domino admin's nightly ``compact`` task — rewrites every live record
into a fresh heap and atomically swaps the files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.storage.engine import StorageEngine


@dataclass
class CompactResult:
    """Space accounting for one compaction."""

    keys: int = 0
    pages_before: int = 0
    pages_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def reclaimed_bytes(self) -> int:
        return max(self.bytes_before - self.bytes_after, 0)


def compact_engine(engine: StorageEngine) -> CompactResult:
    """Rewrite ``engine``'s heap in place; returns space accounting.

    The engine remains open and usable afterwards; all keys and values are
    preserved. Uses a copy-compact: live records stream into a scratch
    engine, files swap, state reloads.
    """
    result = CompactResult(
        keys=len(engine),
        pages_before=engine._pages.page_count,
        bytes_before=os.path.getsize(engine._pages.path),
    )
    scratch_path = engine.path + ".compact"
    scratch = StorageEngine(scratch_path, durability="none")
    for key in engine.keys():
        scratch.set(key, engine.get(key))
    scratch._pool.flush_all()
    # Snapshot the scratch index: it becomes the engine's checkpoint.
    scratch_index = {
        "index": {key.hex(): locs for key, locs in scratch._index.items()},
        "free": scratch._free,
        "next_txn": engine._next_txn,
    }
    scratch._pages.close()

    # Swap page files; reset WAL and checkpoint to the compacted state.
    engine._pool.drop_all()
    engine._pages.close()
    os.replace(scratch_path + ".pages", engine.path + ".pages")
    for leftover in (scratch_path + ".wal", scratch_path + ".chk"):
        if os.path.exists(leftover):
            os.remove(leftover)

    import json

    with open(engine.path + ".chk", "w", encoding="utf-8") as out:
        json.dump(scratch_index, out)
    if engine._wal is not None:
        engine._wal.truncate()

    from repro.storage.pagedfile import PagedFile
    from repro.storage.bufferpool import BufferPool

    engine._pages = PagedFile(engine.path + ".pages")
    engine._pool = BufferPool(
        engine._pages,
        capacity=engine._pool.capacity,
        before_write=engine._wal.flush if engine._wal else None,
    )
    engine._index = {
        bytes.fromhex(key): [tuple(loc) for loc in locs]
        for key, locs in scratch_index["index"].items()
    }
    engine._free = {int(page): free for page, free in scratch_index["free"].items()}

    result.pages_after = engine._pages.page_count
    result.bytes_after = os.path.getsize(engine._pages.path)
    return result
