"""repro — a Notes/Domino-style groupware document database, in Python.

A from-scratch reproduction of the system described in C. Mohan's SIGMOD
1999 industrial paper *"A Database Perspective on Lotus Domino/Notes"*:
a semi-structured document store with multi-master replication (sequence
numbers, deletion stubs, conflict documents), incrementally-maintained
sorted/categorized views, an @-formula language, full-text search, the
seven-level ACL security model, document-based mail routing, Domino-style
clustering, agents, and a WAL-logged storage engine underneath.

Quickstart::

    from repro import NotesDatabase, Replicator, View, ViewColumn

    db = NotesDatabase("Team Discussion")
    doc = db.create({"Form": "MainTopic", "Subject": "Hello, world"})

    replica = db.new_replica("laptop")
    Replicator().replicate(db, replica)      # multi-master sync

See DESIGN.md for the architecture and EXPERIMENTS.md for the experiment
suite this library regenerates.
"""

from repro.agents import Agent, AgentRunner, AgentTrigger
from repro.calendar import BusyTimeIndex, book_meeting, find_free_slots
from repro.cluster import Cluster, ClusterReplicator
from repro.core import (
    ChangeKind,
    DeletionStub,
    Document,
    Item,
    ItemType,
    NotesDatabase,
    OriginatorId,
)
from repro.design import Application
from repro.formula import Formula, compile_formula
from repro.fulltext import FullTextIndex
from repro.mail import Directory, MailRouter, make_memo
from repro.replication import (
    ConflictPolicy,
    ReplicationScheduler,
    ReplicationStats,
    ReplicationTopology,
    Replicator,
    SelectiveReplication,
    SimulatedNetwork,
    converged,
)
from repro.security import AccessControlList, AclLevel, IdVault
from repro.sim import EventScheduler, VirtualClock
from repro.storage import BPlusTree, StorageEngine
from repro.views import (
    Folder,
    SortOrder,
    UnreadTracker,
    View,
    ViewColumn,
    ViewNavigator,
)
from repro.web import DominoWebServer

__version__ = "1.0.0"

__all__ = [
    "AccessControlList",
    "AclLevel",
    "Agent",
    "AgentRunner",
    "AgentTrigger",
    "Application",
    "BPlusTree",
    "BusyTimeIndex",
    "ChangeKind",
    "Cluster",
    "ClusterReplicator",
    "ConflictPolicy",
    "DeletionStub",
    "Directory",
    "Document",
    "DominoWebServer",
    "EventScheduler",
    "Folder",
    "Formula",
    "FullTextIndex",
    "IdVault",
    "Item",
    "ItemType",
    "MailRouter",
    "NotesDatabase",
    "OriginatorId",
    "ReplicationScheduler",
    "ReplicationStats",
    "ReplicationTopology",
    "Replicator",
    "SelectiveReplication",
    "SimulatedNetwork",
    "SortOrder",
    "StorageEngine",
    "UnreadTracker",
    "View",
    "ViewColumn",
    "ViewNavigator",
    "VirtualClock",
    "book_meeting",
    "compile_formula",
    "converged",
    "find_free_slots",
    "make_memo",
    "__version__",
]
