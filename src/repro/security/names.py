"""Hierarchical names, wildcard matching, and group expansion.

Notes names are hierarchical: canonical form ``CN=Alice Smith/OU=Sales/
O=Acme`` abbreviates to ``Alice Smith/Sales/Acme``. ACL entries and reader
fields may hold individual names, group names, or wildcard patterns such as
``*/Sales/Acme`` (anyone in the Sales organisational unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

_PREFIXES = ("CN=", "OU=", "O=", "C=")


def _strip_prefix(component: str) -> str:
    upper = component.upper()
    for prefix in _PREFIXES:
        if upper.startswith(prefix):
            return component[len(prefix):]
    return component


@dataclass(frozen=True)
class NotesName:
    """A parsed hierarchical name."""

    components: tuple[str, ...]

    @classmethod
    def parse(cls, raw: str) -> "NotesName":
        parts = [part.strip() for part in raw.split("/") if part.strip()]
        return cls(tuple(_strip_prefix(part) for part in parts))

    @property
    def common(self) -> str:
        """The common-name component (the leftmost)."""
        return self.components[0] if self.components else ""

    @property
    def abbreviated(self) -> str:
        return "/".join(self.components)

    @property
    def canonical(self) -> str:
        if not self.components:
            return ""
        labels = ["CN"] + ["OU"] * max(0, len(self.components) - 2) + (
            ["O"] if len(self.components) > 1 else []
        )
        return "/".join(
            f"{label}={part}" for label, part in zip(labels, self.components)
        )

    def matches(self, pattern: str) -> bool:
        """Whether this name matches an ACL pattern.

        Patterns are either plain names (case-insensitive component-wise
        comparison) or wildcards like ``*/Sales/Acme`` matching any name
        whose suffix components agree.
        """
        wanted = NotesName.parse(pattern)
        if wanted.components and wanted.components[0] == "*":
            suffix = wanted.components[1:]
            if len(suffix) > len(self.components):
                return False
            mine = self.components[len(self.components) - len(suffix):]
            return all(
                a.lower() == b.lower() for a, b in zip(mine, suffix)
            )
        if len(wanted.components) != len(self.components):
            return False
        return all(
            a.lower() == b.lower()
            for a, b in zip(self.components, wanted.components)
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.abbreviated


def name_matches(user: str, pattern: str) -> bool:
    """Convenience wrapper: does ``user`` match ``pattern``?"""
    return NotesName.parse(user).matches(pattern)


def expand_groups(
    names: Iterable[str], groups: Mapping[str, Iterable[str]], _depth: int = 0
) -> set[str]:
    """Flatten group names into member names (nested groups allowed).

    Cycles are tolerated: expansion is capped at a conservative depth.
    Non-group names pass through unchanged.
    """
    result: set[str] = set()
    if _depth > 16:
        return result
    for name in names:
        members = _lookup_group(name, groups)
        if members is None:
            result.add(name)
        else:
            result |= expand_groups(members, groups, _depth + 1)
    return result


def _lookup_group(name: str, groups: Mapping[str, Iterable[str]]):
    for group_name, members in groups.items():
        if group_name.lower() == name.lower():
            return members
    return None


def user_in_names(
    user: str,
    names: Iterable[str],
    groups: Mapping[str, Iterable[str]] | None = None,
    roles: Iterable[str] = (),
) -> bool:
    """Does ``user`` match any entry in ``names``?

    Entries may be user names, wildcard patterns, group names (resolved via
    ``groups``) or role names in brackets (``[Moderators]``) matched against
    the caller's resolved ACL ``roles``.
    """
    role_set = {role.strip("[]").lower() for role in roles}
    direct: list[str] = []
    for name in names:
        if name.startswith("[") and name.endswith("]"):
            if name.strip("[]").lower() in role_set:
                return True
        else:
            direct.append(name)
    expanded = expand_groups(direct, groups or {})
    return any(name_matches(user, pattern) for pattern in expanded)
