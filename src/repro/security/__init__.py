"""The Notes security model: ACLs, reader/author fields, signing, sealing.

Layered exactly as the paper describes: the database ACL gates what a user
may do to the database as a whole (seven levels from No Access to Manager,
plus roles); READERS/AUTHORS items refine access *per document*; signatures
authenticate who saved a note; sealing hides item values from anyone
without the key.

Signing and sealing here are functional stand-ins (HMAC digests and a
keystream XOR), not real cryptography — the database-visible behaviour
(tamper detection, opaque fields) is what the experiments need.
"""

from repro.security.acl import (
    AccessControlList,
    AclEntry,
    AclLevel,
)
from repro.security.names import (
    NotesName,
    expand_groups,
    name_matches,
)
from repro.security.sealing import seal_items, unseal_items
from repro.security.signing import IdVault, sign_document, verify_document

__all__ = [
    "AccessControlList",
    "AclEntry",
    "AclLevel",
    "IdVault",
    "NotesName",
    "expand_groups",
    "name_matches",
    "seal_items",
    "sign_document",
    "unseal_items",
    "verify_document",
]
