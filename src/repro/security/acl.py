"""Database access control lists.

Seven levels (No Access → Manager), per-entry roles and flags, group and
wildcard entries, and the Notes resolution rule: an exact entry for the user
wins outright; otherwise the user gets the *highest* level among matching
group/wildcard entries; otherwise the ``-Default-`` entry applies.

Document-level refinement (READERS/AUTHORS items) composes with the ACL:
an Editor still cannot read a document whose readers list excludes them,
and an Author can edit only documents they authored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Mapping

from repro.errors import SecurityError
from repro.core.document import Document
from repro.security.names import name_matches, user_in_names

DEFAULT_ENTRY = "-Default-"


class AclLevel(IntEnum):
    NO_ACCESS = 0
    DEPOSITOR = 1
    READER = 2
    AUTHOR = 3
    EDITOR = 4
    DESIGNER = 5
    MANAGER = 6


@dataclass
class AclEntry:
    """One ACL line: a name (user, group or wildcard) with level + options."""

    name: str
    level: AclLevel
    roles: set[str] = field(default_factory=set)
    can_delete_documents: bool = True
    can_create_documents: bool = True


class AccessControlList:
    """The ACL of one database (replicated with it in real Domino)."""

    def __init__(
        self,
        default_level: AclLevel = AclLevel.NO_ACCESS,
        groups: Mapping[str, Iterable[str]] | None = None,
    ) -> None:
        self._entries: dict[str, AclEntry] = {}
        self.groups: dict[str, list[str]] = {
            name: list(members) for name, members in (groups or {}).items()
        }
        # Resolution cache (user -> effective entry), invalidated on any
        # entry or group change — group/wildcard matching is too costly to
        # repeat per document access.
        self._cache: dict[str, AclEntry] = {}
        self.add(DEFAULT_ENTRY, default_level)

    # -- entry management --------------------------------------------------

    def add(
        self,
        name: str,
        level: AclLevel,
        roles: Iterable[str] = (),
        can_delete_documents: bool = True,
        can_create_documents: bool = True,
    ) -> AclEntry:
        """Add or replace the entry for ``name``."""
        entry = AclEntry(
            name=name,
            level=AclLevel(level),
            roles={role.strip("[]") for role in roles},
            can_delete_documents=can_delete_documents,
            can_create_documents=can_create_documents,
        )
        self._entries[name.lower()] = entry
        self._cache.clear()
        return entry

    def remove(self, name: str) -> None:
        if name.lower() == DEFAULT_ENTRY.lower():
            raise SecurityError("the -Default- entry cannot be removed")
        if name.lower() not in self._entries:
            raise SecurityError(f"no ACL entry {name!r}")
        del self._entries[name.lower()]
        self._cache.clear()

    def entries(self) -> list[AclEntry]:
        return list(self._entries.values())

    def define_group(self, name: str, members: Iterable[str]) -> None:
        self.groups[name] = list(members)
        self._cache.clear()

    # -- resolution ---------------------------------------------------------

    def resolve(self, user: str) -> AclEntry:
        """The effective entry for ``user`` under Notes precedence rules."""
        cached = self._cache.get(user.lower())
        if cached is not None:
            return cached
        entry = self._resolve_uncached(user)
        self._cache[user.lower()] = entry
        return entry

    def _resolve_uncached(self, user: str) -> AclEntry:
        exact = self._entries.get(user.lower())
        if exact is not None:
            return exact
        candidates: list[AclEntry] = []
        for entry in self._entries.values():
            if entry.name == DEFAULT_ENTRY:
                continue
            if self._entry_covers(entry, user):
                candidates.append(entry)
        if candidates:
            best = max(candidates, key=lambda e: e.level)
            # Union the roles of every matching entry at the winning level.
            roles = set()
            for entry in candidates:
                if entry.level == best.level:
                    roles |= entry.roles
            merged = AclEntry(
                name=best.name,
                level=best.level,
                roles=roles,
                can_delete_documents=best.can_delete_documents,
                can_create_documents=best.can_create_documents,
            )
            return merged
        return self._entries[DEFAULT_ENTRY.lower()]

    def _entry_covers(self, entry: AclEntry, user: str) -> bool:
        if entry.name in self.groups:
            return user_in_names(user, [entry.name], groups=self.groups)
        if "*" in entry.name:
            return name_matches(user, entry.name)
        return name_matches(user, entry.name)

    def level_of(self, user: str) -> AclLevel:
        return self.resolve(user).level

    def roles_of(self, user: str) -> set[str]:
        return set(self.resolve(user).roles)

    # -- permission checks (composed with document-level fields) ------------

    def can_read(self, user: str, doc: Document) -> bool:
        entry = self.resolve(user)
        if entry.level < AclLevel.READER:
            return False
        return self._passes_reader_fields(user, entry, doc)

    def can_create(self, user: str) -> bool:
        entry = self.resolve(user)
        if entry.level >= AclLevel.EDITOR:
            return True
        return entry.level >= AclLevel.AUTHOR and entry.can_create_documents

    def can_update(self, user: str, doc: Document) -> bool:
        entry = self.resolve(user)
        if entry.level < AclLevel.AUTHOR:
            return False
        if not self._passes_reader_fields(user, entry, doc):
            return False
        if entry.level >= AclLevel.EDITOR:
            return True
        # Authors may edit documents they authored: either named in an
        # AUTHORS item or recorded as the original creator.
        authors = doc.authors
        if authors and user_in_names(user, authors, self.groups, entry.roles):
            return True
        return bool(doc.updated_by) and name_matches(user, doc.updated_by[0])

    def can_delete(self, user: str, doc: Document) -> bool:
        entry = self.resolve(user)
        if not entry.can_delete_documents:
            return False
        return self.can_update(user, doc) or entry.level >= AclLevel.MANAGER

    def _passes_reader_fields(
        self, user: str, entry: AclEntry, doc: Document
    ) -> bool:
        readers = doc.readers
        if readers is None:
            return True
        # Authors named on the document implicitly retain read access.
        allowed = list(readers) + list(doc.authors)
        return user_in_names(user, allowed, self.groups, entry.roles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AccessControlList({len(self._entries)} entries)"
