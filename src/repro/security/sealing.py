"""Field sealing: hide item values from anyone without the key.

Stands in for Notes field encryption with "encryption keys" distributed to
authorised users. The transform is a deterministic keystream XOR — **not
cryptography** — chosen so the experiments see the real behaviour: sealed
items are opaque, survive replication byte-for-byte, and unseal only with
the right key.
"""

from __future__ import annotations

import hashlib

from repro.errors import SecurityError
from repro.core.document import Document
from repro.core.items import ItemType

SEALED_PREFIX = "$Sealed."
KEYCHECK_SUFFIX = ".check"


def _keystream(key: str, length: int) -> bytes:
    blocks = []
    counter = 0
    seed = key.encode()
    while sum(len(block) for block in blocks) < length:
        blocks.append(hashlib.sha256(seed + counter.to_bytes(4, "little")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, key: str) -> bytes:
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def _key_check(key: str) -> str:
    return hashlib.sha256(b"check:" + key.encode()).hexdigest()[:16]


def seal_items(doc: Document, names: list[str], key: str) -> None:
    """Replace each named item with an opaque ``$Sealed.<name>`` pair."""
    import json

    for name in names:
        item = doc.item(name)
        if item is None:
            raise SecurityError(f"cannot seal missing item {name!r}")
        payload = json.dumps([item.type.value, item.value]).encode()
        cipher = _xor(payload, key).hex()
        doc.remove_item(name)
        doc.set(SEALED_PREFIX + name, cipher)
        doc.set(SEALED_PREFIX + name + KEYCHECK_SUFFIX, _key_check(key))


def sealed_item_names(doc: Document) -> list[str]:
    """Names of items currently sealed inside ``doc``."""
    return [
        name[len(SEALED_PREFIX):]
        for name in doc.item_names
        if name.startswith(SEALED_PREFIX) and not name.endswith(KEYCHECK_SUFFIX)
    ]


def unseal_items(doc: Document, key: str, names: list[str] | None = None) -> list[str]:
    """Restore sealed items using ``key``; returns the names restored.

    Raises :class:`SecurityError` when the key does not match.
    """
    import json

    targets = names if names is not None else sealed_item_names(doc)
    restored = []
    for name in targets:
        cipher_name = SEALED_PREFIX + name
        check_name = cipher_name + KEYCHECK_SUFFIX
        cipher = doc.get(cipher_name)
        if cipher is None:
            raise SecurityError(f"item {name!r} is not sealed")
        if doc.get(check_name) != _key_check(key):
            raise SecurityError(f"wrong key for sealed item {name!r}")
        payload = _xor(bytes.fromhex(cipher), key)
        type_value, value = json.loads(payload.decode())
        doc.remove_item(cipher_name)
        if check_name in doc:
            doc.remove_item(check_name)
        doc.set(name, value, ItemType(type_value))
        restored.append(name)
    return restored
