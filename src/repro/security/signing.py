"""Document signing: tamper-evident author attestation.

Real Notes signs with the RSA key in the user's ID file. Here an
:class:`IdVault` holds a per-user secret and signatures are HMAC digests
over a canonical serialization of the signed items — the database-visible
contract (verify detects any item change or signer mismatch) is identical.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets

from repro.errors import SecurityError
from repro.core.document import Document

SIGNATURE_ITEM = "$Signature"
SIGNER_ITEM = "$Signer"


class IdVault:
    """Holds the signing secret for each registered user."""

    def __init__(self) -> None:
        self._secrets: dict[str, bytes] = {}

    def register(self, user: str, secret: bytes | None = None) -> bytes:
        """Create (or install) the secret for ``user``; returns it."""
        if secret is None:
            secret = secrets.token_bytes(32)
        self._secrets[user.lower()] = secret
        return secret

    def secret_for(self, user: str) -> bytes:
        try:
            return self._secrets[user.lower()]
        except KeyError:
            raise SecurityError(f"no ID registered for {user!r}") from None

    def __contains__(self, user: str) -> bool:
        return user.lower() in self._secrets


def _canonical_payload(doc: Document) -> bytes:
    """Stable bytes over every non-signature item, sorted by name."""
    body = {
        item.name: [item.type.value, item.value]
        for item in doc
        if item.name not in (SIGNATURE_ITEM, SIGNER_ITEM)
    }
    return json.dumps(body, sort_keys=True).encode()


def sign_document(doc: Document, user: str, vault: IdVault) -> str:
    """Sign ``doc`` as ``user``; stores $Signer/$Signature items in place.

    Returns the signature hex digest.
    """
    secret = vault.secret_for(user)
    digest = hmac.new(
        secret, user.lower().encode() + b"\x00" + _canonical_payload(doc),
        hashlib.sha256,
    ).hexdigest()
    doc.set(SIGNER_ITEM, user)
    doc.set(SIGNATURE_ITEM, digest)
    return digest


def verify_document(doc: Document, vault: IdVault) -> bool:
    """Whether the stored signature matches the current items and signer."""
    signer = doc.get(SIGNER_ITEM)
    signature = doc.get(SIGNATURE_ITEM)
    if not signer or not signature:
        return False
    if signer not in vault:
        return False
    expected = hmac.new(
        vault.secret_for(signer),
        signer.lower().encode() + b"\x00" + _canonical_payload(doc),
        hashlib.sha256,
    ).hexdigest()
    return hmac.compare_digest(expected, signature)
