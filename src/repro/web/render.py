"""HTML rendering of databases, views and documents.

Deliberately plain, well-formed HTML — the shape Domino generated: a view
becomes a table with category rows and document links, a document becomes a
definition list of its items (hidden ``$`` items omitted).
"""

from __future__ import annotations

from html import escape

from repro.core.database import NotesDatabase
from repro.core.document import Document
from repro.views.view import CategoryRow, DocumentRow, View


def _fmt_cell(value) -> str:
    if isinstance(value, list):
        return escape(", ".join(str(element) for element in value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return escape(str(value))


def render_view(
    view: View,
    db_path: str,
    start: int = 1,
    count: int = 30,
    as_user: str | None = None,
) -> str:
    """Render a window of ``view`` as an HTML table with document links."""
    rows = view.rows(as_user=as_user)
    window = rows[max(start - 1, 0) : max(start - 1, 0) + count]
    parts = [
        f"<h1>{escape(view.name)}</h1>",
        f'<table class="view" data-total="{len(view)}">',
        "<tr>"
        + "".join(f"<th>{escape(c.title)}</th>" for c in view.columns)
        + "</tr>",
    ]
    for row in window:
        if isinstance(row, CategoryRow):
            parts.append(
                f'<tr class="category" data-level="{row.level}">'
                f'<td colspan="{len(view.columns)}">'
                f"{_fmt_cell(row.value)} ({row.count})</td></tr>"
            )
        elif isinstance(row, DocumentRow):
            cells = "".join(
                f'<td style="padding-left:{row.level}em">{_fmt_cell(v)}</td>'
                if index == 0
                else f"<td>{_fmt_cell(v)}</td>"
                for index, v in enumerate(row.values)
            )
            href = f"/{db_path}/{view.name}/{row.unid}?OpenDocument"
            parts.append(f'<tr class="doc"><td><a href="{href}">&#9656;</a></td>{cells}</tr>')
    parts.append("</table>")
    next_start = start + count
    if next_start <= len(rows):
        parts.append(
            f'<a class="next" href="/{db_path}/{view.name}'
            f"?OpenView&Start={next_start}&Count={count}\">Next</a>"
        )
    return "\n".join(parts)


def _doc_title(doc: Document) -> str:
    for item in ("Subject", "Name", "Title"):
        value = doc.get(item)
        if value:
            return str(value)
    return doc.unid


def render_document(doc: Document, db_path: str, view_name: str = "0") -> str:
    """Render one document as HTML (hidden ``$`` items omitted)."""
    parts = [
        f"<h1>{escape(_doc_title(doc))}</h1>",
        f'<div class="meta">form={escape(str(doc.form))} '
        f"rev={doc.seq} by {escape(', '.join(doc.updated_by))}</div>",
        "<dl>",
    ]
    for item in doc:
        if item.name.startswith("$"):
            continue
        parts.append(f"<dt>{escape(item.name)}</dt><dd>{_fmt_cell(item.value)}</dd>")
    parts.append("</dl>")
    if doc.parent_unid:
        parts.append(
            f'<a class="parent" href="/{db_path}/{view_name}/'
            f'{doc.parent_unid}?OpenDocument">parent document</a>'
        )
    return "\n".join(parts)


def render_database(db: NotesDatabase, db_path: str, view_names: list[str]) -> str:
    """Render the database landing page: title + its views."""
    parts = [
        f"<h1>{escape(db.title)}</h1>",
        f'<div class="meta">{len(db)} documents, replica '
        f"{escape(db.replica_id)} on {escape(db.server)}</div>",
        "<ul>",
    ]
    for name in view_names:
        parts.append(
            f'<li><a href="/{db_path}/{name}?OpenView">{escape(name)}</a></li>'
        )
    parts.append("</ul>")
    return "\n".join(parts)


def render_view_entries_xml(
    view: View,
    start: int = 1,
    count: int = 30,
    as_user: str | None = None,
) -> str:
    """The ``?ReadViewEntries`` XML feed — Domino's machine-readable view
    access (the precursor of its REST APIs). Category rows carry their
    value and count; document rows carry unid, position and column values.
    """
    rows = view.rows(as_user=as_user)
    window = rows[max(start - 1, 0) : max(start - 1, 0) + count]
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<viewentries toplevelentries="{len(view)}" start="{start}">',
    ]
    position = start - 1
    for row in window:
        position += 1
        if isinstance(row, CategoryRow):
            parts.append(
                f'  <viewentry position="{position}" category="true" '
                f'children="{row.count}">'
            )
            parts.append(
                f"    <entrydata><text>{escape(_fmt_cell(row.value))}"
                "</text></entrydata>"
            )
            parts.append("  </viewentry>")
            continue
        parts.append(
            f'  <viewentry position="{position}" unid="{row.unid}" '
            f'indent="{row.level}">'
        )
        for column, value in zip(view.columns, row.values):
            parts.append(
                f'    <entrydata name="{escape(column.title)}">'
                f"<text>{_fmt_cell(value)}</text></entrydata>"
            )
        parts.append("  </viewentry>")
    parts.append("</viewentries>")
    return "\n".join(parts)


def render_search_results(
    db: NotesDatabase, db_path: str, view_name: str, query: str, hits
) -> str:
    parts = [
        f"<h1>Search: {escape(query)}</h1>",
        f'<ol class="results">',
    ]
    for hit in hits:
        doc = db.try_get(hit.unid)
        if doc is None:
            continue
        title = escape(_doc_title(doc))
        href = f"/{db_path}/{view_name}/{doc.unid}?OpenDocument"
        parts.append(
            f'<li><a href="{href}">{title}</a> '
            f'<span class="score">{hit.score:.2f}</span></li>'
        )
    parts.append("</ol>")
    return "\n".join(parts)
