"""The web request handler over registered databases.

``handle(url, user)`` does what the Domino HTTP task did: parse the URL
command, resolve the database and design element, enforce the ACL (including
document reader fields), and return rendered HTML with an HTTP-ish status
code. ``EditDocument``/``DeleteDocument`` mutate through the normal database
API, so agents and views react exactly as for a Notes client.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.application import Application
from repro.errors import AccessDenied, DocumentNotFound
from repro.fulltext.index import FullTextIndex
from repro.security.acl import AclLevel
from repro.web.render import (
    render_database,
    render_document,
    render_search_results,
    render_view,
    render_view_entries_xml,
)
from repro.web.urls import WebError, parse_url


@dataclass(frozen=True)
class WebResponse:
    status: int
    body: str

    @property
    def ok(self) -> bool:
        return self.status == 200


class DominoWebServer:
    """Serves registered applications to "browsers" (the test suite)."""

    def __init__(self, default_user: str = "Anonymous") -> None:
        self.default_user = default_user
        self._apps: dict[str, Application] = {}
        self._indexes: dict[str, FullTextIndex] = {}
        self.requests = 0

    # -- registration -----------------------------------------------------

    def register(self, path: str, app: Application) -> None:
        """Mount an application at ``/path`` (e.g. ``"sales.nsf"``)."""
        self._apps[path.lower()] = app
        self._indexes[path.lower()] = FullTextIndex(app.db)

    # -- request handling ---------------------------------------------------

    def handle(self, url: str, user: str | None = None) -> WebResponse:
        """Process one request; returns (status, rendered HTML)."""
        self.requests += 1
        user = user or self.default_user
        try:
            parsed = parse_url(url)
        except WebError as exc:
            return WebResponse(400, f"<h1>400 Bad Request</h1><p>{exc}</p>")
        app = self._apps.get(parsed.database.lower())
        if app is None:
            return WebResponse(404, f"<h1>404</h1><p>no database {parsed.database}</p>")
        db = app.db
        if db.acl is not None and db.acl.level_of(user) < AclLevel.READER:
            return WebResponse(
                401, f"<h1>401</h1><p>{user} has no access to {db.title}</p>"
            )
        try:
            return self._dispatch(parsed, app, user)
        except AccessDenied as exc:
            return WebResponse(401, f"<h1>401</h1><p>{exc}</p>")
        except DocumentNotFound as exc:
            return WebResponse(404, f"<h1>404</h1><p>{exc}</p>")
        except WebError as exc:
            return WebResponse(404, f"<h1>404</h1><p>{exc}</p>")

    def _dispatch(self, parsed, app: Application, user: str) -> WebResponse:
        db = app.db
        path = parsed.database
        command = parsed.command
        if command == "opendatabase":
            return WebResponse(200, render_database(db, path, app.view_names))
        if command == "openview":
            view = self._resolve_view(app, parsed.view)
            start = int(parsed.param("start", "1"))
            count = int(parsed.param("count", "30"))
            return WebResponse(
                200, render_view(view, path, start=start, count=count,
                                 as_user=user if db.acl else None)
            )
        if command == "readviewentries":
            view = self._resolve_view(app, parsed.view)
            start = int(parsed.param("start", "1"))
            count = int(parsed.param("count", "30"))
            return WebResponse(
                200,
                render_view_entries_xml(
                    view, start=start, count=count,
                    as_user=user if db.acl else None,
                ),
            )
        if command == "searchview":
            query = (parsed.param("query") or "").strip()
            if not query:
                raise WebError("SearchView needs a Query parameter")
            count = int(parsed.param("count", "25"))
            index = self._indexes[path.lower()]
            hits = index.search(query, limit=count,
                                as_user=user if db.acl else None)
            return WebResponse(
                200,
                render_search_results(db, path, parsed.view, query, hits),
            )
        if command == "opendocument":
            doc = db.get(parsed.unid, as_user=user if db.acl else None)
            return WebResponse(
                200, render_document(doc, path, parsed.view or "0")
            )
        if command == "editdocument":
            updates = {
                key: value
                for key, value in parsed.params.items()
                if not key.startswith("$")
                and key.lower() not in ("start", "count")
            }
            db.update(parsed.unid, updates, author=user)
            doc = db.get(parsed.unid)
            return WebResponse(200, render_document(doc, path, parsed.view or "0"))
        if command == "deletedocument":
            db.delete(parsed.unid, author=user)
            return WebResponse(200, "<h1>Document deleted</h1>")
        raise WebError(f"unhandled command {command}")  # pragma: no cover

    def _resolve_view(self, app: Application, name: str):
        if name == "$defaultview":
            if not app.view_names:
                raise WebError("database has no views")
            return app.view(app.view_names[0])
        try:
            return app.view(name)
        except Exception:
            raise WebError(f"no view {name!r}") from None
