"""Domino URL-command parsing.

Grammar (the classic Domino URL syntax)::

    /<database>?OpenDatabase
    /<database>/<view>?OpenView[&Start=n][&Count=n][&ExpandView]
    /<database>/<view>/<unid>?OpenDocument
    /<database>/<view>?SearchView&Query=<text>[&Count=n]
    /<database>/$defaultview?OpenView

The command defaults follow Domino: a bare database URL opens the database,
a view path defaults to OpenView, a document path to OpenDocument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote

from repro.errors import ReproError


class WebError(ReproError):
    """Bad URL or unknown target."""


_KNOWN_COMMANDS = {
    "opendatabase",
    "openview",
    "opendocument",
    "searchview",
    "editdocument",
    "deletedocument",
    "readviewentries",
}


@dataclass(frozen=True)
class ParsedUrl:
    """A decoded Domino URL."""

    database: str
    view: str | None = None
    unid: str | None = None
    command: str = "opendatabase"
    params: dict = field(default_factory=dict)

    def param(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive parameter lookup (URL params are case-free)."""
        wanted = name.lower()
        for key, value in self.params.items():
            if key.lower() == wanted:
                return value
        return default


def parse_url(url: str) -> ParsedUrl:
    """Parse a Domino-style URL into its parts.

    Raises :class:`WebError` on malformed input or unknown commands.
    """
    if not url.startswith("/"):
        raise WebError(f"URL must start with '/': {url!r}")
    path, _, query = url.partition("?")
    segments = [unquote(part) for part in path.strip("/").split("/") if part]
    if not segments:
        raise WebError("URL names no database")
    if len(segments) > 3:
        raise WebError(f"too many path segments in {url!r}")

    command = ""
    params: dict = {}
    if query:
        pieces = query.split("&")
        first = pieces[0]
        if "=" not in first and first:
            command = first.lower()
            pieces = pieces[1:]
        # Keys keep their original case (EditDocument writes them as item
        # names); lookups for Start/Count/Query are case-insensitive.
        for key, value in parse_qsl("&".join(pieces), keep_blank_values=True):
            params[key] = value
        # bare flags like &ExpandView arrive as keys with empty values via
        # parse_qsl(keep_blank_values) only when written as ExpandView=;
        # handle the flag-only form too:
        for piece in pieces:
            if piece and "=" not in piece:
                params[piece] = "1"

    database = segments[0]
    view = segments[1] if len(segments) >= 2 else None
    unid = segments[2] if len(segments) == 3 else None

    if not command:
        if unid is not None:
            command = "opendocument"
        elif view is not None:
            command = "openview"
        else:
            command = "opendatabase"
    if command not in _KNOWN_COMMANDS:
        raise WebError(f"unknown URL command {command!r}")
    if command in ("opendocument", "editdocument", "deletedocument") and unid is None:
        raise WebError(f"{command} needs a document UNID in {url!r}")
    if command in ("openview", "searchview", "readviewentries") and view is None:
        raise WebError(f"{command} needs a view name in {url!r}")
    return ParsedUrl(
        database=database, view=view, unid=unid, command=command, params=params
    )
