"""The Domino web engine: Notes applications rendered as HTML.

Domino's defining 1998/99 move was serving Notes databases to browsers:
URLs name a database, a design element and a *URL command* —
``/sales.nsf/ByCustomer?OpenView&Start=1&Count=10`` — and the server renders
views and documents as HTML on the fly, honouring the ACL and reader fields.
This package reproduces that pipeline: URL parsing, HTML rendering, and a
request handler over registered databases.
"""

from repro.web.render import render_database, render_document, render_view
from repro.web.server import DominoWebServer, WebResponse
from repro.web.urls import ParsedUrl, parse_url

__all__ = [
    "DominoWebServer",
    "ParsedUrl",
    "WebResponse",
    "parse_url",
    "render_database",
    "render_document",
    "render_view",
]
