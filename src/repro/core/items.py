"""Typed items: the fields of a note.

A note is a set of named items, each carrying a type tag and a value.
Special types matter to other subsystems: ``READERS``/``AUTHORS`` drive
document-level security, ``NAMES`` items hold hierarchical user names, and
``RICH_TEXT`` marks large bodies the full-text indexer tokenizes.

Values are restricted to JSON-serializable shapes so notes round-trip
losslessly through storage and the replication wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.errors import ItemError

Number = (int, float)


class ItemType(str, Enum):
    """Item data types, mirroring the Notes item type summary."""

    TEXT = "text"
    TEXT_LIST = "text_list"
    NUMBER = "number"
    NUMBER_LIST = "number_list"
    DATETIME = "datetime"
    NAMES = "names"
    READERS = "readers"
    AUTHORS = "authors"
    RICH_TEXT = "rich_text"
    ATTACHMENT = "attachment"

    @property
    def is_name_type(self) -> bool:
        return self in (ItemType.NAMES, ItemType.READERS, ItemType.AUTHORS)


def infer_type(value: Any) -> ItemType:
    """Map a plain Python value onto the narrowest item type."""
    if isinstance(value, bool):
        raise ItemError("booleans are not a Notes item type; use 1/0 numbers")
    if isinstance(value, str):
        return ItemType.TEXT
    if isinstance(value, Number):
        return ItemType.NUMBER
    if isinstance(value, (list, tuple)):
        seq = list(value)
        if all(isinstance(element, str) for element in seq):
            return ItemType.TEXT_LIST
        if all(isinstance(element, Number) and not isinstance(element, bool) for element in seq):
            return ItemType.NUMBER_LIST
        raise ItemError(f"mixed or unsupported list value {value!r}")
    raise ItemError(f"unsupported item value {value!r} of type {type(value).__name__}")


_VALIDATORS = {
    ItemType.TEXT: lambda v: isinstance(v, str),
    ItemType.RICH_TEXT: lambda v: isinstance(v, str),
    ItemType.TEXT_LIST: lambda v: isinstance(v, list)
    and all(isinstance(e, str) for e in v),
    ItemType.NUMBER: lambda v: isinstance(v, Number) and not isinstance(v, bool),
    ItemType.NUMBER_LIST: lambda v: isinstance(v, list)
    and all(isinstance(e, Number) and not isinstance(e, bool) for e in v),
    ItemType.DATETIME: lambda v: isinstance(v, Number) and not isinstance(v, bool),
    ItemType.NAMES: lambda v: isinstance(v, list)
    and all(isinstance(e, str) for e in v),
    ItemType.READERS: lambda v: isinstance(v, list)
    and all(isinstance(e, str) for e in v),
    ItemType.AUTHORS: lambda v: isinstance(v, list)
    and all(isinstance(e, str) for e in v),
    # Attachments hold {"name": filename, "data": base64 text} so they stay
    # JSON-safe through storage and the replication wire format.
    ItemType.ATTACHMENT: lambda v: isinstance(v, dict)
    and isinstance(v.get("name"), str)
    and v.get("name") != ""
    and isinstance(v.get("data"), str),
}


@dataclass(frozen=True)
class Item:
    """One named, typed field of a note. Immutable; edits replace the item."""

    name: str
    type: ItemType
    value: Any

    def __post_init__(self) -> None:
        if not self.name:
            raise ItemError("item name must be non-empty")
        # Normalise tuples to lists so equality and JSON round-trips agree.
        if isinstance(self.value, tuple):
            object.__setattr__(self, "value", list(self.value))
        if not _VALIDATORS[self.type](self.value):
            raise ItemError(
                f"value {self.value!r} is not a valid {self.type.value} for "
                f"item {self.name!r}"
            )

    @classmethod
    def of(cls, name: str, value: Any, type_: ItemType | None = None) -> "Item":
        """Build an item, inferring the type from the value when not given."""
        if type_ is None:
            if isinstance(value, Item):
                return cls(name, value.type, value.value)
            type_ = infer_type(value)
        return cls(name, type_, value)

    def as_list(self) -> list:
        """The value as a list (scalar values become one-element lists)."""
        if isinstance(self.value, list):
            return list(self.value)
        return [self.value]

    def to_dict(self) -> dict:
        return {"t": self.type.value, "v": self.value}

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Item":
        return cls(name, ItemType(payload["t"]), payload["v"])
