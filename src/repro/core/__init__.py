"""Core note data model and database: the heart of the Notes architecture.

A Notes database is a container of *notes* — self-describing bags of typed
*items* — identified by universal ids (UNIDs) that are stable across
replicas. This package provides the item type system, documents (data
notes), deletion stubs, and the :class:`~repro.core.database.NotesDatabase`
container with optional durable storage via ``repro.storage``.
"""

from repro.core.attachments import (
    attach,
    attachment_bytes,
    attachment_names,
    detach,
    remove_attachment,
)
from repro.core.database import ChangeKind, DeletionStub, NotesDatabase
from repro.core.document import Document
from repro.core.items import Item, ItemType
from repro.core.unid import OriginatorId, new_replica_id, new_unid

__all__ = [
    "ChangeKind",
    "DeletionStub",
    "Document",
    "Item",
    "ItemType",
    "NotesDatabase",
    "OriginatorId",
    "attach",
    "attachment_bytes",
    "attachment_names",
    "detach",
    "new_replica_id",
    "new_unid",
    "remove_attachment",
]
