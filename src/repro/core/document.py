"""Documents (data notes): self-describing bags of typed items.

A document owns its items plus the replication-relevant envelope: the
originator id (UNID + sequence number + sequence time), the revision history
(the ``$Revisions`` equivalent the replicator uses for divergence
detection), the author trail (``$UpdatedBy``) and the optional parent
reference (``$REF``) that builds response hierarchies.

Documents serialize to plain dicts (JSON-safe) for storage and replication.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import DocumentError
from repro.core.items import Item, ItemType
from repro.core.unid import OriginatorId

# Notes caps $Revisions; we keep a generous but bounded history so conflict
# detection has ancestry to look at without unbounded growth.
MAX_REVISIONS = 64


class Document:
    """One data note.

    Library users normally obtain documents from
    :class:`~repro.core.database.NotesDatabase` rather than constructing
    them directly; the constructor is the deserialization/replication path.
    """

    def __init__(
        self,
        unid: str,
        seq: int = 1,
        seq_time: tuple[float, int] = (0.0, 0),
        created: float = 0.0,
        modified: float = 0.0,
        parent_unid: str | None = None,
        updated_by: list[str] | None = None,
        revisions: list[tuple[float, int]] | None = None,
        note_id: int = 0,
    ) -> None:
        if seq < 1:
            raise DocumentError(f"sequence number must be >= 1, got {seq}")
        self.unid = unid
        self.seq = seq
        self.seq_time = tuple(seq_time)
        self.created = created
        self.modified = modified
        self.parent_unid = parent_unid
        self.updated_by: list[str] = list(updated_by or [])
        self.revisions: list[tuple[float, int]] = [
            tuple(stamp) for stamp in (revisions or [tuple(seq_time)])
        ]
        self.note_id = note_id
        self._items: dict[str, Item] = {}
        # Per-item last-change stamps (the input to field-level conflict
        # merging). An entry may exist for a *removed* item — that records
        # when the removal happened.
        self.item_times: dict[str, tuple[float, int]] = {}

    # -- identity ---------------------------------------------------------

    @property
    def oid(self) -> OriginatorId:
        """The originator id: the replication version stamp of this revision."""
        return OriginatorId(self.unid, self.seq, self.seq_time)

    @property
    def is_response(self) -> bool:
        return self.parent_unid is not None

    @property
    def is_conflict(self) -> bool:
        """Whether this document is a replication/save conflict loser."""
        return "$Conflict" in self._items

    @property
    def form(self) -> str | None:
        """The Form item text, if present (what kind of document this is)."""
        item = self._items.get("Form")
        return item.value if item is not None else None

    # -- item access --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items.values())

    @property
    def item_names(self) -> list[str]:
        return list(self._items)

    def item(self, name: str) -> Item | None:
        """The full :class:`Item` under ``name``, or None."""
        return self._items.get(name)

    def get(self, name: str, default: Any = None) -> Any:
        """The item *value* under ``name``, or ``default``."""
        item = self._items.get(name)
        return item.value if item is not None else default

    def get_list(self, name: str) -> list:
        """The item value as a list; missing items give an empty list."""
        item = self._items.get(name)
        return item.as_list() if item is not None else []

    def set(self, name: str, value: Any, type_: ItemType | None = None) -> None:
        """Create or replace an item; the type is inferred unless given."""
        if isinstance(value, Item):
            self._items[name] = Item(name, value.type, value.value)
        else:
            self._items[name] = Item.of(name, value, type_)

    def remove_item(self, name: str) -> None:
        """Delete an item; raises :class:`DocumentError` if absent."""
        if name not in self._items:
            raise DocumentError(f"document has no item {name!r}")
        del self._items[name]

    def set_all(self, values: dict[str, Any]) -> None:
        """Set many items at once from a plain name -> value mapping."""
        for name, value in values.items():
            self.set(name, value)

    # -- security helpers -----------------------------------------------

    @property
    def readers(self) -> list[str] | None:
        """Union of READERS item values, or None when unrestricted."""
        names: list[str] = []
        found = False
        for item in self._items.values():
            if item.type == ItemType.READERS:
                found = True
                names.extend(item.value)
        return names if found else None

    @property
    def authors(self) -> list[str]:
        """Union of AUTHORS item values (may be empty)."""
        names: list[str] = []
        for item in self._items.values():
            if item.type == ItemType.AUTHORS:
                names.extend(item.value)
        return names

    # -- revision bookkeeping --------------------------------------------

    def bump_revision(self, stamp: tuple[float, int], author: str) -> None:
        """Advance to the next sequence number at time ``stamp``."""
        self.seq += 1
        self.seq_time = tuple(stamp)
        self.modified = stamp[0]
        self.revisions.append(tuple(stamp))
        if len(self.revisions) > MAX_REVISIONS:
            del self.revisions[: len(self.revisions) - MAX_REVISIONS]
        if author and (not self.updated_by or self.updated_by[-1] != author):
            self.updated_by.append(author)

    def has_ancestor_stamp(self, stamp: tuple[float, int]) -> bool:
        """Whether ``stamp`` appears in this document's revision history."""
        return tuple(stamp) in (tuple(s) for s in self.revisions)

    # -- size & serialization ---------------------------------------------

    def size(self) -> int:
        """Approximate byte size (drives replication-volume accounting)."""
        total = 128  # envelope overhead
        for item in self._items.values():
            total += len(item.name) + 8
            value = item.value
            if isinstance(value, str):
                total += len(value)
            elif isinstance(value, list):
                total += sum(
                    len(e) if isinstance(e, str) else 8 for e in value
                )
            elif isinstance(value, dict):
                # attachments: the base64 payload dominates
                total += sum(
                    len(v) if isinstance(v, str) else 8 for v in value.values()
                )
            else:
                total += 8
        return total

    def copy(self) -> "Document":
        """Deep-enough copy: items are immutable so sharing them is safe."""
        clone = Document(
            unid=self.unid,
            seq=self.seq,
            seq_time=self.seq_time,
            created=self.created,
            modified=self.modified,
            parent_unid=self.parent_unid,
            updated_by=list(self.updated_by),
            revisions=[tuple(s) for s in self.revisions],
            note_id=self.note_id,
        )
        clone._items = dict(self._items)
        clone.item_times = dict(self.item_times)
        return clone

    def to_dict(self) -> dict:
        """JSON-safe representation for storage and the replication wire."""
        return {
            "unid": self.unid,
            "seq": self.seq,
            "seq_time": list(self.seq_time),
            "created": self.created,
            "modified": self.modified,
            "parent": self.parent_unid,
            "updated_by": list(self.updated_by),
            "revisions": [list(stamp) for stamp in self.revisions],
            "items": {item.name: item.to_dict() for item in self._items.values()},
            "item_times": {
                name: list(stamp) for name, stamp in self.item_times.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Document":
        doc = cls(
            unid=payload["unid"],
            seq=payload["seq"],
            seq_time=tuple(payload["seq_time"]),
            created=payload["created"],
            modified=payload["modified"],
            parent_unid=payload.get("parent"),
            updated_by=payload.get("updated_by", []),
            revisions=[tuple(stamp) for stamp in payload.get("revisions", [])],
        )
        for name, item_payload in payload.get("items", {}).items():
            doc._items[name] = Item.from_dict(name, item_payload)
        doc.item_times = {
            name: tuple(stamp)
            for name, stamp in payload.get("item_times", {}).items()
        }
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Document(unid={self.unid[:8]}…, seq={self.seq}, "
            f"items={len(self._items)}, form={self.form!r})"
        )
