"""The NotesDatabase: a replicable container of documents.

Responsibilities:

* CRUD with Notes envelope maintenance (sequence numbers, revision history,
  author trail) — the inputs the replicator needs to converge replicas.
* Deletion stubs: deletes leave a tombstone carrying the deletion's version
  stamp so the delete itself replicates; stubs are purged after a
  configurable interval (experiment E2 shows why purging too early is
  dangerous).
* Soft deletion (the R5 "trash folder" behaviour): documents can be moved
  to trash and restored before a hard delete.
* Change events: views, full-text indexes and cluster replicators subscribe
  to create/update/delete notifications for incremental maintenance.
* The **update-sequence journal**: every write is assigned the next local
  sequence number and recorded in a by-seq journal (one live entry per
  UNID, the CouchDB ``_changes`` design). Replication reads the journal
  suffix instead of scanning the database, so a pass costs O(changes)
  rather than O(database).
* Maintained secondary indexes: parent→children (``responses``),
  profile-document lookup (``profile``), and an incrementally maintained
  state fingerprint.
* Optional durability through :class:`repro.storage.StorageEngine`.
* Optional access control through an attached ACL (``repro.security``).

The database never interprets item values — that is what views, formulas
and agents are for.
"""

from __future__ import annotations

import hashlib
import json
import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Any, Callable, Iterator

from repro.errors import AccessDenied, DatabaseError, DocumentNotFound
from repro.core.document import Document
from repro.core.unid import new_replica_id, new_unid
from repro.sim.clock import VirtualClock


class ChangeKind(str, Enum):
    """What happened to a note, as reported to observers."""

    CREATE = "create"
    UPDATE = "update"
    DELETE = "delete"
    REPLACE = "replace"  # replicator overwrote with a remote revision
    RESTORE = "restore"  # brought back from the trash


@dataclass(frozen=True)
class DeletionStub:
    """Tombstone left behind by a delete so the delete replicates."""

    unid: str
    seq: int
    seq_time: tuple[float, int]
    deleted_at: float
    deleted_by: str

    def to_dict(self) -> dict:
        return {
            "unid": self.unid,
            "seq": self.seq,
            "seq_time": list(self.seq_time),
            "deleted_at": self.deleted_at,
            "deleted_by": self.deleted_by,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeletionStub":
        return cls(
            unid=payload["unid"],
            seq=payload["seq"],
            seq_time=tuple(payload["seq_time"]),
            deleted_at=payload["deleted_at"],
            deleted_by=payload["deleted_by"],
        )


Observer = Callable[[ChangeKind, Any, Document | None], None]

_DOC_PREFIX = b"doc:"
_STUB_PREFIX = b"stub:"
_SEQ_PREFIX = b"seq:"
_META_KEY = b"meta:journal"

# Journal entries are (seq, unid, is_stub, local_time) tuples, appended in
# seq order. Local times are taken from the (monotonic) clock at write
# time, so the list is sorted by seq AND by time — both cutoff styles are
# a binary search for the suffix start.
_JournalEntry = tuple[int, str, bool, float]

# Compact the journal when more than half of it (and at least this many
# entries) is superseded; rewrites are amortized O(1) per write.
_JOURNAL_COMPACT_MIN = 64

# The purge log (journal entries dropped without a successor) is bounded:
# consumers whose checkpoint predates the retained window rebuild instead.
_PURGE_LOG_MAX = 1024


@lru_cache(maxsize=8192)
def _revision_contrib(unid: str, seq: int, seq_time: tuple) -> int:
    """Fingerprint contribution of one note revision.

    Memoized because the same revision is hashed on every replica that
    installs it (cluster pushes, hub fan-out) and again when a later write
    XORs it back out of the rolling accumulator.
    """
    digest = hashlib.sha256(f"{unid}:{seq}:{seq_time}\n".encode()).digest()
    return int.from_bytes(digest, "big")


class NotesDatabase:
    """One replica of a Notes-style document database.

    Parameters
    ----------
    title:
        Human-readable database title (e.g. ``"Team Discussion"``).
    clock:
        Shared :class:`VirtualClock`; a private one is created if omitted.
    rng:
        Seeded random source for UNID generation; derived from the title if
        omitted (so tests are reproducible by default).
    replica_id:
        Identity of the replica *family*. Databases replicate only with
        others carrying the same replica id. A fresh id is generated when
        omitted; ``db.new_replica(...)`` copies it.
    server:
        Name of the server/host holding this replica (used in replication
        history and mail routing).
    engine:
        Optional :class:`repro.storage.StorageEngine` for durability. When
        given, existing content is loaded and every mutation is persisted.
    acl:
        Optional :class:`repro.security.AccessControlList`. When set, every
        operation that names a user is checked.
    """

    def __init__(
        self,
        title: str,
        clock: VirtualClock | None = None,
        rng: random.Random | None = None,
        replica_id: str | None = None,
        server: str = "local",
        engine=None,
        acl=None,
    ) -> None:
        self.title = title
        self.clock = clock or VirtualClock()
        self.rng = rng or random.Random(hash(title) & 0xFFFFFFFF)
        self.replica_id = replica_id or new_replica_id(self.rng)
        self.server = server
        self.engine = engine
        self.acl = acl
        self._docs: dict[str, Document] = {}
        self._stubs: dict[str, DeletionStub] = {}
        # "Modified in this file" times: when a note/stub last changed in
        # THIS replica (user edit or replicator install). The incremental
        # replication scan uses these, not the document's own modified time
        # — a note can arrive here long after it was edited elsewhere.
        self._local_modified: dict[str, float] = {}
        self._stub_local: dict[str, float] = {}
        self._trash: set[str] = set()
        self._by_note_id: dict[int, str] = {}
        self._next_note_id = 1
        self._observers: list[Observer] = []
        # Save hooks of persistent derived structures (view sidecars,
        # full-text checkpoints); flushed together by save_checkpoints().
        self._checkpointers: list[Callable[[], None]] = []
        # -- update-sequence journal (the by-seq index) --
        self._update_seq = 0
        self._journal: list[_JournalEntry] = []
        self._note_seq: dict[str, int] = {}  # unid -> its live journal seq
        self._journal_stale = 0
        # Notes the last changed_since* call had to look at (candidates,
        # including superseded journal entries) — the replicator reports it.
        self.last_scan_cost = 0
        # -- maintained secondary indexes --
        self._children_index: dict[str, set[str]] = {}
        self._profiles: dict[tuple[Any, Any], str] = {}
        # Rolling state fingerprint: XOR of per-note digests, O(1) per write.
        self._fp_acc = 0
        # replication history: (other replica server, direction) -> virtual time
        self.replication_history: dict[tuple[str, str], float] = {}
        # journal-based history: (other replica server, direction) -> the
        # partner's update_seq as of the last successful pass
        self.replication_seq: dict[tuple[str, str], int] = {}
        # -- purge log: journal entries dropped with no successor --
        self._purge_seq = 0
        self._purges: list[tuple[int, str]] = []
        # Journal identity: seq checkpoints (view sidecars, full-text
        # checkpoints, backlog cursors) are only meaningful against the
        # journal they were cut from. A reseeded journal (recovery of a
        # pre-journal database file) gets a fresh identity, so stale
        # checkpoints fall back to a rebuild instead of mis-reading seqs.
        self.journal_id = hashlib.sha256(
            f"journal:{self.replica_id}:{self.server}".encode()
        ).hexdigest()[:16]
        if engine is not None:
            self._load_from_engine()
            self._persist_meta()

    # -- observers -----------------------------------------------------------

    def subscribe(self, observer: Observer) -> None:
        """Register for change events (views, FT index, cluster replicator)."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Observer) -> None:
        self._observers.remove(observer)

    # -- checkpoint wiring ---------------------------------------------------

    def register_checkpointer(self, save: Callable[[], None]) -> None:
        """Register a derived structure's save hook (persistent views and
        full-text indexes do this), so one :meth:`save_checkpoints` call
        flushes every sidecar the database carries."""
        self._checkpointers.append(save)

    def unregister_checkpointer(self, save: Callable[[], None]) -> None:
        if save in self._checkpointers:
            self._checkpointers.remove(save)

    def save_checkpoints(self) -> int:
        """Flush every registered sidecar; returns how many were saved."""
        hooks = list(self._checkpointers)
        for save in hooks:
            save()
        return len(hooks)

    def close(self) -> None:
        """Flush every registered sidecar, then close the storage engine.

        The database-level counterpart of closing an NSF: derived
        structures write their segment checkpoints (each an O(delta)
        append, see ``repro.storage.segments``) and the engine takes its
        sharp checkpoint.
        """
        self.save_checkpoints()
        if self.engine is not None:
            self.engine.close()

    def _notify(self, kind: ChangeKind, payload: Any, old: Document | None) -> None:
        for observer in self._observers:
            observer(kind, payload, old)

    # -- update-sequence journal -------------------------------------------

    @property
    def update_seq(self) -> int:
        """The highest local update sequence number assigned so far."""
        return self._update_seq

    def _journal_record(self, unid: str, is_stub: bool, when: float) -> _JournalEntry:
        """Assign the next seq to ``unid`` and append its journal entry."""
        if unid in self._note_seq:
            self._journal_stale += 1
        self._update_seq += 1
        entry = (self._update_seq, unid, is_stub, when)
        self._journal.append(entry)
        self._note_seq[unid] = self._update_seq
        if (
            self._journal_stale > _JOURNAL_COMPACT_MIN
            and self._journal_stale * 2 > len(self._journal)
        ):
            self._compact_journal()
        return entry

    def _journal_drop(self, unid: str) -> None:
        """Forget ``unid``'s journal entry (purge / cutoff-delete paths)."""
        if self._note_seq.pop(unid, None) is not None:
            self._journal_stale += 1
        self._unpersist(_SEQ_PREFIX + unid.encode())

    def _compact_journal(self) -> None:
        self._journal = [
            entry
            for entry in self._journal
            if self._note_seq.get(entry[1]) == entry[0]
        ]
        self._journal_stale = 0

    def _changed_from(self, start: int) -> tuple[list[Document], list[DeletionStub]]:
        """Live docs/stubs for the journal suffix beginning at ``start``."""
        docs: list[Document] = []
        stubs: list[DeletionStub] = []
        suffix = self._journal[start:]
        self.last_scan_cost = len(suffix)
        for seq, unid, is_stub, _ in suffix:
            if self._note_seq.get(unid) != seq:
                continue  # superseded by a later write to the same note
            if is_stub:
                stub = self._stubs.get(unid)
                if stub is not None:
                    stubs.append(stub)
            else:
                doc = self._docs.get(unid)
                if doc is not None:
                    docs.append(doc)
        return docs, stubs

    # -- purge log ----------------------------------------------------------

    @property
    def purge_seq(self) -> int:
        """How many journal entries have been dropped without a successor.

        ``purge_stubs`` / ``purge_acknowledged_stubs`` and ``cutoff_delete``
        remove notes *and their journal entries* outright, so a seq-suffix
        read can never report them. Consumers that checkpoint an
        ``update_seq`` must also checkpoint the ``purge_seq`` and replay
        :meth:`purges_since` before topping up.
        """
        return self._purge_seq

    def purges_since(self, after: int) -> list[tuple[int, str]] | None:
        """Purge events with purge seq strictly above ``after``, oldest
        first — or None when the bounded log no longer reaches back that
        far (the consumer's checkpoint is too old; it must rebuild)."""
        if after > self._purge_seq:
            return None
        oldest_missing = self._purge_seq - len(self._purges)
        if after < oldest_missing:
            return None
        return [(seq, unid) for seq, unid in self._purges if seq > after]

    def _log_purge(self, unid: str) -> None:
        self._purge_seq += 1
        self._purges.append((self._purge_seq, unid))
        if len(self._purges) > _PURGE_LOG_MAX:
            del self._purges[: -_PURGE_LOG_MAX]

    # -- maintained secondary indexes --------------------------------------

    def _index_parent(self, doc: Document) -> None:
        if doc.parent_unid is not None:
            self._children_index.setdefault(doc.parent_unid, set()).add(doc.unid)

    def _unindex_parent(self, doc: Document) -> None:
        if doc.parent_unid is None:
            return
        children = self._children_index.get(doc.parent_unid)
        if children is not None:
            children.discard(doc.unid)
            if not children:
                del self._children_index[doc.parent_unid]

    @staticmethod
    def _profile_key(doc: Document) -> tuple[Any, Any] | None:
        name = doc.get("$ProfileName")
        if not isinstance(name, str):
            return None
        user = doc.get("$ProfileUser", "")
        return (name, user if isinstance(user, str) else "")

    def _index_profile(self, doc: Document) -> None:
        key = self._profile_key(doc)
        # First writer wins, matching the old scan's insertion-order hit.
        if key is not None and key not in self._profiles:
            self._profiles[key] = doc.unid

    def _unindex_profile(self, doc: Document) -> None:
        key = self._profile_key(doc)
        if key is None or self._profiles.get(key) != doc.unid:
            return
        del self._profiles[key]
        # A duplicate profile note (replication can produce one) takes over.
        for other in self._docs.values():
            if other.unid != doc.unid and self._profile_key(other) == key:
                self._profiles[key] = other.unid
                return

    # -- rolling state fingerprint -----------------------------------------

    @staticmethod
    def _doc_contrib(doc: Document) -> int:
        return _revision_contrib(doc.unid, doc.seq, doc.seq_time)

    @staticmethod
    def _trash_contrib(unid: str) -> int:
        digest = hashlib.sha256(b"T:" + unid.encode()).digest()
        return int.from_bytes(digest, "big")

    def _trash_add(self, unid: str) -> None:
        if unid not in self._trash:
            self._trash.add(unid)
            self._fp_acc ^= self._trash_contrib(unid)

    def _trash_discard(self, unid: str) -> None:
        if unid in self._trash:
            self._trash.remove(unid)
            self._fp_acc ^= self._trash_contrib(unid)

    # -- CRUD ------------------------------------------------------------

    def create(
        self,
        items: dict[str, Any],
        author: str = "anonymous",
        parent: str | None = None,
    ) -> Document:
        """Create a document from plain name -> value items."""
        self._check_create(author)
        if parent is not None and parent not in self._docs:
            raise DocumentNotFound(f"parent {parent} does not exist")
        now, tick = self.clock.timestamp()
        # The rng is seeded by the title, so a reopened database replays
        # the same unid stream — re-draw rather than silently overwrite a
        # persisted note.
        unid = new_unid(self.rng)
        while unid in self._docs or unid in self._stubs:
            unid = new_unid(self.rng)
        doc = Document(
            unid=unid,
            seq=1,
            seq_time=(now, tick),
            created=now,
            modified=now,
            parent_unid=parent,
            updated_by=[author],
            note_id=self._next_note_id,
        )
        self._next_note_id += 1
        doc.set_all(items)
        doc.item_times = {name: (now, tick) for name in items}
        self._docs[doc.unid] = doc
        self._local_modified[doc.unid] = now
        self._by_note_id[doc.note_id] = doc.unid
        self._index_parent(doc)
        self._index_profile(doc)
        self._fp_acc ^= self._doc_contrib(doc)
        entry = self._journal_record(doc.unid, False, now)
        self._persist_doc(doc, entry)
        self._notify(ChangeKind.CREATE, doc, None)
        return doc

    def update(
        self,
        unid: str,
        items: dict[str, Any],
        author: str = "anonymous",
        remove_items: list[str] | None = None,
    ) -> Document:
        """Merge ``items`` into the document and advance its revision."""
        doc = self._require_doc(unid)
        self._check_update(author, doc)
        old = doc.copy()
        self._fp_acc ^= self._doc_contrib(doc)
        old_profile_key = self._profile_key(doc)
        doc.set_all(items)
        for name in remove_items or []:
            if name in doc:
                doc.remove_item(name)
        stamp = self.clock.timestamp()
        doc.bump_revision(stamp, author)
        for name in items:
            doc.item_times[name] = stamp
        for name in remove_items or []:
            doc.item_times[name] = stamp
        self._local_modified[unid] = stamp[0]
        if self._profile_key(doc) != old_profile_key:
            self._unindex_profile(old)
            self._index_profile(doc)
        self._fp_acc ^= self._doc_contrib(doc)
        entry = self._journal_record(unid, False, stamp[0])
        self._persist_doc(doc, entry)
        self._notify(ChangeKind.UPDATE, doc, old)
        return doc

    def attach_file(
        self,
        unid: str,
        filename: str,
        data: bytes,
        author: str = "anonymous",
    ) -> Document:
        """Attach ``data`` to the document as a proper revision.

        Unlike mutating the document object directly, this bumps the
        sequence number and stamps the attachment item, so replication
        (including field-level) sees the change.
        """
        from repro.core.attachments import ATTACHMENT_PREFIX, attach

        doc = self._require_doc(unid)
        self._check_update(author, doc)
        old = doc.copy()
        self._fp_acc ^= self._doc_contrib(doc)
        attach(doc, filename, data)
        stamp = self.clock.timestamp()
        doc.bump_revision(stamp, author)
        doc.item_times[ATTACHMENT_PREFIX + filename] = stamp
        self._local_modified[unid] = stamp[0]
        self._fp_acc ^= self._doc_contrib(doc)
        entry = self._journal_record(unid, False, stamp[0])
        self._persist_doc(doc, entry)
        self._notify(ChangeKind.UPDATE, doc, old)
        return doc

    def delete(self, unid: str, author: str = "anonymous") -> DeletionStub:
        """Hard-delete: remove the document, leaving a deletion stub."""
        doc = self._require_doc(unid)
        self._check_delete(author, doc)
        now, tick = self.clock.timestamp()
        stub = DeletionStub(
            unid=unid,
            seq=doc.seq + 1,
            seq_time=(now, tick),
            deleted_at=now,
            deleted_by=author,
        )
        self._remove_doc_internal(unid)
        self._stubs[unid] = stub
        self._stub_local[unid] = now
        entry = self._journal_record(unid, True, now)
        self._persist_stub(stub, entry)
        self._notify(ChangeKind.DELETE, stub, doc)
        return stub

    # -- soft deletion (trash) ---------------------------------------------

    def soft_delete(self, unid: str, author: str = "anonymous") -> None:
        """Move a document to the trash; views stop showing it."""
        doc = self._require_doc(unid)
        self._check_delete(author, doc)
        self._trash_add(unid)
        self._notify(ChangeKind.DELETE, self._as_trash_stub(doc, author), doc)

    def restore(self, unid: str, author: str = "anonymous") -> Document:
        """Bring a soft-deleted document back from the trash."""
        if unid not in self._trash:
            raise DatabaseError(f"{unid} is not in the trash")
        doc = self._docs[unid]
        self._check_update(author, doc)
        self._trash_discard(unid)
        self._notify(ChangeKind.RESTORE, doc, None)
        return doc

    def empty_trash(self, author: str = "anonymous") -> int:
        """Hard-delete everything in the trash; returns the count."""
        victims = list(self._trash)
        for unid in victims:
            self._trash_discard(unid)
            self.delete(unid, author=author)
        return len(victims)

    @property
    def trash(self) -> list[str]:
        return sorted(self._trash)

    def _as_trash_stub(self, doc: Document, author: str) -> DeletionStub:
        now, tick = self.clock.timestamp()
        return DeletionStub(doc.unid, doc.seq, (now, tick), now, author)

    # -- reads -----------------------------------------------------------

    def get(self, unid: str, as_user: str | None = None) -> Document:
        """Fetch a live document; honours reader fields when a user is named."""
        doc = self._require_doc(unid)
        if as_user is not None:
            self._check_read(as_user, doc)
        return doc

    def get_by_note_id(self, note_id: int) -> Document:
        unid = self._by_note_id.get(note_id)
        if unid is None or unid not in self._docs:
            raise DocumentNotFound(f"no note with id {note_id}")
        return self._docs[unid]

    def try_get(self, unid: str) -> Document | None:
        """Fetch a live document, or None (trash and stubs give None)."""
        if unid in self._trash:
            return None
        return self._docs.get(unid)

    def __contains__(self, unid: str) -> bool:
        return unid in self._docs and unid not in self._trash

    def __len__(self) -> int:
        return len(self._docs) - len(self._trash)

    def unids(self) -> list[str]:
        """UNIDs of all live (non-trashed) documents."""
        if not self._trash:
            return list(self._docs)
        return [unid for unid in self._docs if unid not in self._trash]

    def all_documents(self, as_user: str | None = None) -> Iterator[Document]:
        """All live documents; filtered by reader fields when a user is named."""
        for unid in self.unids():
            doc = self._docs[unid]
            if as_user is None or self._can_read(as_user, doc):
                yield doc

    def responses(self, unid: str) -> list[Document]:
        """Direct response documents of ``unid``, oldest first.

        Served from the maintained parent→children index — O(children),
        not a scan over the whole database.
        """
        children = [
            self._docs[child]
            for child in self._children_index.get(unid, ())
            if child in self._docs and child not in self._trash
        ]
        children.sort(key=lambda d: (d.created, d.unid))
        return children

    def descendants(self, unid: str) -> list[Document]:
        """All (transitive) responses beneath ``unid``, depth-first."""
        result: list[Document] = []
        for child in self.responses(unid):
            result.append(child)
            result.extend(self.descendants(child.unid))
        return result

    # -- profile documents ---------------------------------------------------

    def profile(self, name: str, username: str = "") -> Document:
        """Get or create the profile document ``name`` (optionally per-user).

        Served from the maintained profile lookup table — no scan.
        """
        unid = self._profiles.get((name, username))
        if unid is not None and unid in self._docs:
            return self._docs[unid]
        return self.create(
            {"$ProfileName": name, "$ProfileUser": username},
            author=username or "system",
        )

    # -- deletion stubs & purging ------------------------------------------

    @property
    def stubs(self) -> dict[str, DeletionStub]:
        """Live deletion stubs by UNID (read-only view)."""
        return dict(self._stubs)

    def purge_stubs(self, older_than: float) -> int:
        """Drop stubs deleted before virtual time ``older_than``.

        The legacy wall-clock purge-interval rule, kept as the ablation:
        purging a stub before every replica has seen the delete allows the
        document to "resurrect" — precisely what experiment E2
        demonstrates. :meth:`purge_acknowledged_stubs` is the seq-safe
        replacement. Returns how many were purged.
        """
        victims = [
            unid
            for unid, stub in self._stubs.items()
            if stub.deleted_at < older_than
        ]
        return self._purge_stub_unids(victims)

    def acknowledged_seq(self) -> int | None:
        """Lowest update seq every *known* partner has acknowledged.

        A partner acknowledges a seq when it completes a pass that read
        this journal (recorded as a ``"send"`` entry in
        ``replication_seq``: scheduled pulls and cluster pushes/drains
        both record one). Returns None when no partner is known.
        """
        acks = [
            seq
            for (_, direction), seq in self.replication_seq.items()
            if direction == "send"
        ]
        return min(acks) if acks else None

    def purge_acknowledged_stubs(self) -> int:
        """Purge every stub whose delete all known partners have seen.

        The seq-based replacement for the wall-clock purge interval: a
        stub is purgeable once its journal seq is at or below
        :meth:`acknowledged_seq`, so no partner can still need the delete
        — which closes the E2 resurrection-anomaly window entirely. A
        replica with no known partners purges nothing (it cannot know who
        still needs the stub). Returns how many were purged.
        """
        floor = self.acknowledged_seq()
        if floor is None:
            return 0
        victims = [
            unid
            for unid in self._stubs
            if self._note_seq.get(unid, floor + 1) <= floor
        ]
        return self._purge_stub_unids(victims)

    def _purge_stub_unids(self, victims: list[str]) -> int:
        """Drop ``victims`` from the stub table, journal and engine.

        The engine write is one transaction covering the purge-log update
        and every record removal, so recovery never sees a purged seq
        record with an un-advanced purge log.
        """
        if not victims:
            return 0
        for unid in victims:
            del self._stubs[unid]
            self._stub_local.pop(unid, None)
            if self._note_seq.pop(unid, None) is not None:
                self._journal_stale += 1
            self._log_purge(unid)
        if self.engine is not None:
            txn = self.engine.begin()
            self.engine.put(txn, _META_KEY, self._meta_payload())
            for unid in victims:
                for key in (
                    _SEQ_PREFIX + unid.encode(),
                    _STUB_PREFIX + unid.encode(),
                ):
                    if key in self.engine:
                        self.engine.delete(txn, key)
            self.engine.commit(txn)
        return len(victims)

    def cutoff_delete(self, older_than: float) -> int:
        """Trim documents not modified since ``older_than`` — *without*
        leaving deletion stubs (the "remove documents not modified in the
        last N days" replica space option).

        Returns how many documents were removed. Because no stub remains,
        a trimmed document *returns* when it is revised on another replica,
        or when the replication history is cleared (forcing a full
        re-examination) — the documented Notes caveat, demonstrated in the
        test suite. A selective replication formula is the way to keep
        them out for good.
        """
        victims = [
            doc.unid
            for doc in self._docs.values()
            if doc.modified < older_than
        ]
        for unid in victims:
            doc = self._docs[unid]
            self._remove_doc_internal(unid)
            self._log_purge(unid)
            self._notify(ChangeKind.DELETE, self._as_trash_stub(doc, "cutoff"), doc)
        if victims:
            self._persist_meta()
        return len(victims)

    def state_fingerprint(self) -> str:
        """Digest over every live document's revision stamp (and the trash).

        Two database states with equal fingerprints hold identical document
        revisions, so a derived structure (e.g. a persisted view index)
        saved at one fingerprint is valid whenever the fingerprint still
        matches. The digest is a rolling XOR of per-note hashes maintained
        on every write, so reading it is O(1) — the old implementation
        re-sorted and re-hashed all n documents on every call.
        """
        return f"{self._fp_acc:064x}"

    def _fingerprint_recompute(self) -> str:
        """O(n) from-scratch fingerprint; must equal :meth:`state_fingerprint`.

        Kept as the ground truth the incremental accumulator is tested
        against (and used when loading from a storage engine).
        """
        acc = 0
        for doc in self._docs.values():
            acc ^= self._doc_contrib(doc)
        for unid in self._trash:
            acc ^= self._trash_contrib(unid)
        return f"{acc:064x}"

    def clear_replication_history(self) -> None:
        """Forget all replication history: the next pass with every partner
        re-examines everything (the admin "Clear History" button)."""
        self.replication_history.clear()
        self.replication_seq.clear()

    # -- replication-facing primitives ----------------------------------

    def changed_since_seq(
        self, after_seq: int
    ) -> tuple[list[Document], list[DeletionStub]]:
        """Documents/stubs with a local update seq strictly above ``after_seq``.

        The journal fast path: a binary search for the suffix start plus a
        walk over O(changes) entries — never a scan of the database. This
        is what an incremental replication pass costs.
        """
        start = bisect_right(self._journal, after_seq, key=lambda entry: entry[0])
        return self._changed_from(start)

    def journal_entries_since(
        self, after_seq: int
    ) -> list[tuple[int, "Document | DeletionStub"]]:
        """The live journal suffix above ``after_seq`` in seq order.

        Same candidates as :meth:`changed_since_seq` but keeping each
        note's journal seq and the journal's ordering, which is what lets
        a consumer *checkpoint mid-stream*: a replication exchange that
        applies entries in this order may record any prefix's last seq as
        its cursor and resume from there after an interruption.
        """
        start = bisect_right(self._journal, after_seq, key=lambda entry: entry[0])
        suffix = self._journal[start:]
        self.last_scan_cost = len(suffix)
        entries: list[tuple[int, Document | DeletionStub]] = []
        for seq, unid, is_stub, _ in suffix:
            if self._note_seq.get(unid) != seq:
                continue  # superseded by a later write to the same note
            note = self._stubs.get(unid) if is_stub else self._docs.get(unid)
            if note is not None:
                entries.append((seq, note))
        return entries

    def changed_since(self, cutoff: float) -> tuple[list[Document], list[DeletionStub]]:
        """Documents/stubs changed *in this replica* at/after ``cutoff``.

        Uses the local "modified in this file" times: a note installed here
        by the replicator counts as changed *now*, even though its own
        modified time is older — that is what makes multi-hop (hub) routing
        of updates work.

        Journal entries are appended in clock order, so the timestamp
        cutoff (kept for pre-journal replication histories) is also a
        suffix read, not a scan.
        """
        start = bisect_left(self._journal, cutoff, key=lambda entry: entry[3])
        return self._changed_from(start)

    def changed_since_scan(
        self, cutoff: float
    ) -> tuple[list[Document], list[DeletionStub]]:
        """The pre-journal O(database) scan, kept as the ablation baseline
        benchmark E13 measures the journal against."""
        self.last_scan_cost = len(self._docs) + len(self._stubs)
        docs = [
            doc
            for doc in self._docs.values()
            if self._local_modified.get(doc.unid, doc.modified) >= cutoff
        ]
        stubs = [
            stub
            for stub in self._stubs.values()
            if self._stub_local.get(stub.unid, stub.deleted_at) >= cutoff
        ]
        return docs, stubs

    def raw_put(self, doc: Document, kind: ChangeKind = ChangeKind.REPLACE) -> None:
        """Install ``doc`` exactly as given (no revision bump).

        The replicator's write path: the incoming document keeps its own
        envelope. Any deletion stub for the UNID is superseded.
        """
        old = self._docs.get(doc.unid)
        # Note ids are db-local (only the UNID travels): keep the existing
        # local id on update, assign a fresh one on first arrival.
        if old is not None:
            doc.note_id = old.note_id
            self._fp_acc ^= self._doc_contrib(old)
            self._unindex_parent(old)
            self._unindex_profile(old)
        else:
            doc.note_id = self._next_note_id
            self._next_note_id += 1
        self._docs[doc.unid] = doc
        self._by_note_id[doc.note_id] = doc.unid
        now = self.clock.now
        self._local_modified[doc.unid] = now
        self._stubs.pop(doc.unid, None)
        self._stub_local.pop(doc.unid, None)
        self._unpersist(_STUB_PREFIX + doc.unid.encode())
        self._index_parent(doc)
        self._index_profile(doc)
        self._fp_acc ^= self._doc_contrib(doc)
        entry = self._journal_record(doc.unid, False, now)
        self._persist_doc(doc, entry)
        self._notify(kind, doc, old)

    def raw_delete(self, stub: DeletionStub) -> None:
        """Install a remote deletion: drop the doc, keep the stub."""
        old = self._docs.get(stub.unid)
        if old is not None:
            self._remove_doc_internal(stub.unid)
        existing = self._stubs.get(stub.unid)
        if existing is None or tuple(stub.seq_time) > tuple(existing.seq_time):
            self._stubs[stub.unid] = stub
            now = self.clock.now
            self._stub_local[stub.unid] = now
            entry = self._journal_record(stub.unid, True, now)
            self._persist_stub(stub, entry)
        if old is not None:
            self._notify(ChangeKind.DELETE, stub, old)

    def new_replica(self, server: str, engine=None) -> "NotesDatabase":
        """Create an empty replica (same replica id) on another server."""
        replica = NotesDatabase(
            title=self.title,
            clock=self.clock,
            rng=random.Random(self.rng.getrandbits(64)),
            replica_id=self.replica_id,
            server=server,
            engine=engine,
            acl=self.acl,
        )
        return replica

    # -- persistence ------------------------------------------------------

    def _persist_doc(self, doc: Document, journal: _JournalEntry | None = None) -> None:
        if self.engine is None:
            return
        payload = json.dumps(doc.to_dict()).encode()
        self._persist_note(_DOC_PREFIX + doc.unid.encode(), payload, journal)

    def _persist_stub(self, stub: DeletionStub, journal: _JournalEntry | None = None) -> None:
        if self.engine is None:
            return
        payload = json.dumps(stub.to_dict()).encode()
        self._persist_note(_STUB_PREFIX + stub.unid.encode(), payload, journal)

    def _persist_note(
        self, key: bytes, payload: bytes, journal: _JournalEntry | None
    ) -> None:
        """One transaction covering the note and its journal record, so a
        crash can never durably separate a note from its sequence number."""
        txn = self.engine.begin()
        self.engine.put(txn, key, payload)
        if journal is not None:
            seq, unid, is_stub, when = journal
            self.engine.put(
                txn,
                _SEQ_PREFIX + unid.encode(),
                json.dumps([seq, 1 if is_stub else 0, when]).encode(),
            )
        self.engine.commit(txn)

    def _unpersist(self, key: bytes) -> None:
        if self.engine is None:
            return
        if key in self.engine:
            self.engine.remove(key)

    def _meta_payload(self) -> bytes:
        return json.dumps(
            {
                "journal_id": self.journal_id,
                # A floor for seq recovery: the purge that wrote this meta
                # may have removed the journal's max-seq record, and seqs
                # must never be reissued under the same journal identity.
                "update_seq": self._update_seq,
                "purge_seq": self._purge_seq,
                "purges": [[seq, unid] for seq, unid in self._purges],
            }
        ).encode()

    def _persist_meta(self) -> None:
        """Write the journal identity + purge log through the engine."""
        if self.engine is None:
            return
        self.engine.set(_META_KEY, self._meta_payload())

    def _load_from_engine(self) -> None:
        # Iterate only the note-record prefixes: the engine also holds
        # derived-structure sidecars (view indexes, full-text checkpoint
        # blobs) that are not ours to parse — and not all of them are JSON.
        max_note_id = 0
        seq_records: dict[str, list] = {}
        meta: dict | None = None
        for key in self.engine.keys(prefix=_DOC_PREFIX):
            doc = Document.from_dict(json.loads(self.engine.get(key).decode()))
            doc.note_id = self._next_note_id + max_note_id
            max_note_id += 1
            self._docs[doc.unid] = doc
            self._by_note_id[doc.note_id] = doc.unid
        for key in self.engine.keys(prefix=_STUB_PREFIX):
            stub = DeletionStub.from_dict(
                json.loads(self.engine.get(key).decode())
            )
            self._stubs[stub.unid] = stub
        for key in self.engine.keys(prefix=_SEQ_PREFIX):
            seq_records[key[len(_SEQ_PREFIX):].decode()] = json.loads(
                self.engine.get(key).decode()
            )
        raw_meta = self.engine.get(_META_KEY)
        if raw_meta is not None:
            meta = json.loads(raw_meta.decode())
        self._next_note_id += max_note_id
        for doc in self._docs.values():
            self._index_parent(doc)
            self._index_profile(doc)
        self._fp_acc = int(self._fingerprint_recompute(), 16)
        self._recover_journal(seq_records, meta)

    def _recover_journal(
        self, seq_records: dict[str, list], meta: dict | None = None
    ) -> None:
        """Rebuild the by-seq journal after an engine load.

        When every live note carries a persisted sequence record the
        journal is restored exactly (sequence numbers keep their meaning
        across restarts, so partners' seq-based histories and consumers'
        seq checkpoints stay valid) and the persisted journal identity +
        purge log are restored with it. A pre-journal database file falls
        back to seeding fresh sequence numbers in modified-time order
        under a *new* journal identity; partners then re-examine via the
        timestamp history and checkpoint holders rebuild, exactly as
        before the journal existed.
        """
        live_kinds = {unid: False for unid in self._docs}
        live_kinds.update({unid: True for unid in self._stubs})
        recovered = all(
            unid in seq_records and bool(seq_records[unid][1]) == is_stub
            for unid, is_stub in live_kinds.items()
        )
        if recovered:
            if live_kinds:
                entries = sorted(
                    (seq_records[unid][0], unid, is_stub, seq_records[unid][2])
                    for unid, is_stub in live_kinds.items()
                )
                self._journal = entries
                self._note_seq = {entry[1]: entry[0] for entry in entries}
                self._update_seq = entries[-1][0]
                for seq, unid, is_stub, when in entries:
                    if is_stub:
                        self._stub_local[unid] = when
                    else:
                        self._local_modified[unid] = when
            if meta is not None:
                self.journal_id = meta["journal_id"]
                self._update_seq = max(
                    self._update_seq, int(meta.get("update_seq", 0))
                )
                self._purge_seq = int(meta.get("purge_seq", 0))
                self._purges = [
                    (int(seq), unid) for seq, unid in meta.get("purges", [])
                ]
            return
        # Fallback: order by the notes' own times (the pre-journal
        # incremental-scan keys) and assign fresh sequence numbers. The
        # reseeded journal gets a fresh identity — derived, not random, so
        # repeated recoveries of the same file are deterministic.
        if meta is not None:
            self.journal_id = hashlib.sha256(
                f"{meta['journal_id']}:reseed".encode()
            ).hexdigest()[:16]
        pending = sorted(
            [(doc.modified, unid, False) for unid, doc in self._docs.items()]
            + [
                (stub.deleted_at, unid, True)
                for unid, stub in self._stubs.items()
            ]
        )
        for when, unid, is_stub in pending:
            entry = self._journal_record(unid, is_stub, when)
            if self.engine is not None:
                seq, _, _, _ = entry
                self.engine.set(
                    _SEQ_PREFIX + unid.encode(),
                    json.dumps([seq, 1 if is_stub else 0, when]).encode(),
                )

    # -- access control hooks -----------------------------------------------

    def _check_create(self, user: str) -> None:
        if self.acl is not None and not self.acl.can_create(user):
            raise AccessDenied(f"{user} may not create documents in {self.title!r}")

    def _check_update(self, user: str, doc: Document) -> None:
        if self.acl is not None and not self.acl.can_update(user, doc):
            raise AccessDenied(f"{user} may not edit {doc.unid} in {self.title!r}")

    def _check_delete(self, user: str, doc: Document) -> None:
        if self.acl is not None and not self.acl.can_delete(user, doc):
            raise AccessDenied(f"{user} may not delete {doc.unid} in {self.title!r}")

    def _check_read(self, user: str, doc: Document) -> None:
        if not self._can_read(user, doc):
            raise AccessDenied(f"{user} may not read {doc.unid} in {self.title!r}")

    def _can_read(self, user: str, doc: Document) -> bool:
        if self.acl is None:
            return True
        return self.acl.can_read(user, doc)

    # -- internals ----------------------------------------------------------

    def _require_doc(self, unid: str) -> Document:
        doc = self._docs.get(unid)
        if doc is None or unid in self._trash:
            raise DocumentNotFound(f"no live document {unid} in {self.title!r}")
        return doc

    def _remove_doc_internal(self, unid: str) -> None:
        doc = self._docs.pop(unid)
        self._by_note_id.pop(doc.note_id, None)
        self._trash_discard(unid)
        self._local_modified.pop(unid, None)
        self._fp_acc ^= self._doc_contrib(doc)
        self._unindex_parent(doc)
        self._unindex_profile(doc)
        self._journal_drop(unid)
        self._unpersist(_DOC_PREFIX + unid.encode())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NotesDatabase({self.title!r} on {self.server!r}, "
            f"{len(self)} docs, {len(self._stubs)} stubs)"
        )
