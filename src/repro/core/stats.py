"""Shared instrumentation for journal-driven catch-up consumers.

Every derived structure that rides the update-seq journal — views, the
full-text index, the cluster backlog — answers the same three questions
after a restart or a deferred batch: did it top up incrementally or fall
back to a rebuild, how many notes did it replay, and how long did the
catch-up take?  ``CatchUpStats`` gives them one shape for those answers
so benchmarks and operators read every consumer the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CatchUpStats:
    """Counters for one journal consumer's catch-up behaviour.

    ``rebuilds``
        Full from-scratch rebuilds (O(database) scans).
    ``topups``
        Incremental catch-ups replayed from ``changed_since_seq``
        (O(log n + changes)).
    ``notes_replayed``
        Notes (documents + deletion stubs) examined across all top-ups.
    ``purges_replayed``
        Purge-log entries applied across all top-ups.
    ``catch_up_seconds``
        Wall-clock time spent in top-ups and rebuilds combined.
    ``last_path``
        What the most recent catch-up actually did: ``"noop"``,
        ``"topup"``, or ``"rebuild"`` (empty before the first one).
    """

    rebuilds: int = 0
    topups: int = 0
    notes_replayed: int = 0
    purges_replayed: int = 0
    catch_up_seconds: float = 0.0
    last_path: str = field(default="", compare=False)

    def record_topup(self, notes: int, purges: int, seconds: float) -> None:
        self.topups += 1
        self.notes_replayed += notes
        self.purges_replayed += purges
        self.catch_up_seconds += seconds
        self.last_path = "topup"

    def record_rebuild(self, seconds: float) -> None:
        self.rebuilds += 1
        self.catch_up_seconds += seconds
        self.last_path = "rebuild"

    def record_noop(self) -> None:
        self.last_path = "noop"
