"""Shared instrumentation for journal-driven catch-up consumers.

Every derived structure that rides the update-seq journal — views, the
full-text index, the cluster backlog — answers the same three questions
after a restart or a deferred batch: did it top up incrementally or fall
back to a rebuild, how many notes did it replay, and how long did the
catch-up take?  ``CatchUpStats`` gives them one shape for those answers
so benchmarks and operators read every consumer the same way.

``LinkHealth`` plays the same unifying role for everything that talks
over an unreliable link — the replication scheduler's edges and the mail
router's hops: one per-link counter block plus the
healthy → degraded → suspended circuit-breaker state machine, so
operators read every consumer of the network the same way too.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CatchUpStats:
    """Counters for one journal consumer's catch-up behaviour.

    ``rebuilds``
        Full from-scratch rebuilds (O(database) scans).
    ``topups``
        Incremental catch-ups replayed from ``changed_since_seq``
        (O(log n + changes)).
    ``notes_replayed``
        Notes (documents + deletion stubs) examined across all top-ups.
    ``purges_replayed``
        Purge-log entries applied across all top-ups.
    ``catch_up_seconds``
        Wall-clock time spent in top-ups and rebuilds combined.
    ``merges``
        Segment folds performed while saving checkpoints (consumers on
        the shared :class:`repro.storage.SegmentStack` record them here).
    ``segment_stats``
        Per-stack :class:`repro.storage.SegmentStats`, keyed by the
        consumer's name for the stack (e.g. ``"entries"``, ``"terms"``,
        ``"docs"``). Live objects — they track the stack as it moves.
    ``last_path``
        What the most recent catch-up actually did: ``"noop"``,
        ``"topup"``, ``"merge"`` (a top-up whose checkpoint save also
        folded segments), or ``"rebuild"`` (empty before the first one).
    """

    rebuilds: int = 0
    topups: int = 0
    notes_replayed: int = 0
    purges_replayed: int = 0
    catch_up_seconds: float = 0.0
    merges: int = 0
    segment_stats: dict = field(default_factory=dict, compare=False)
    last_path: str = field(default="", compare=False)

    def record_topup(self, notes: int, purges: int, seconds: float) -> None:
        self.topups += 1
        self.notes_replayed += notes
        self.purges_replayed += purges
        self.catch_up_seconds += seconds
        self.last_path = "topup"

    def record_rebuild(self, seconds: float) -> None:
        self.rebuilds += 1
        self.catch_up_seconds += seconds
        self.last_path = "rebuild"

    def record_noop(self) -> None:
        self.last_path = "noop"

    def record_merge(self, folds: int) -> None:
        """Folds performed by a checkpoint save; promotes ``last_path``
        to ``"merge"`` so top-up and top-up-plus-fold are tellable apart."""
        if folds > 0:
            self.merges += folds
            self.last_path = "merge"


HEALTHY = "healthy"
DEGRADED = "degraded"
SUSPENDED = "suspended"


@dataclass
class LinkHealth:
    """Per-link circuit-breaker state plus attempt counters.

    State machine: ``healthy`` links attempt freely; a failure moves the
    link to ``degraded`` with exponential backoff, and
    ``failure_threshold`` consecutive failures open the breaker
    (``suspended``) — only periodic *probes* go out until one succeeds,
    which snaps the link back to ``healthy`` and resets the counters
    that gate it. Every attempt-shaped decision (skip because
    unreachable, defer because backed off, retry after failure) is
    counted, so a silently-skipped edge is never indistinguishable from
    a no-op exchange.

    The backoff *delay* is computed here; the jitter *draw* comes from
    the caller's seeded RNG so replay determinism stays in one place.
    """

    state: str = HEALTHY
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0  # attempts made while recovering from a failure
    skips: int = 0  # link unreachable at attempt time (no cost paid)
    deferrals: int = 0  # gated out by backoff / open breaker
    probes: int = 0  # attempts made with the breaker open
    consecutive_failures: int = 0
    next_attempt_at: float = 0.0  # virtual time before which we defer
    last_error: str = ""

    def ready(self, now: float) -> bool:
        return now >= self.next_attempt_at

    def record_skip(self) -> None:
        self.skips += 1

    def record_deferral(self) -> None:
        self.deferrals += 1

    def begin_attempt(self) -> bool:
        """Count an attempt; returns True when it is a retry."""
        self.attempts += 1
        if self.state == SUSPENDED:
            self.probes += 1
        if self.consecutive_failures > 0:
            self.retries += 1
            return True
        return False

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        self.state = HEALTHY
        self.next_attempt_at = 0.0
        self.last_error = ""

    def record_failure(
        self,
        now: float,
        error: str,
        *,
        backoff_base: float,
        backoff_cap: float,
        failure_threshold: int,
        probe_interval: float,
        jitter: float,
    ) -> float:
        """Register a failed attempt; returns the chosen backoff delay.

        ``jitter`` is a draw in [0, 1) from the caller's seeded RNG,
        stretching the delay by up to that fraction of itself.
        """
        self.failures += 1
        self.consecutive_failures += 1
        self.last_error = error
        if self.consecutive_failures >= failure_threshold:
            self.state = SUSPENDED
            exponent = self.consecutive_failures - failure_threshold
            delay = probe_interval * (2.0 ** exponent)
        else:
            self.state = DEGRADED
            delay = backoff_base * (2.0 ** (self.consecutive_failures - 1))
        delay = min(delay, backoff_cap) * (1.0 + jitter)
        self.next_attempt_at = now + delay
        return delay
