"""Shared instrumentation for journal-driven catch-up consumers.

Every derived structure that rides the update-seq journal — views, the
full-text index, the cluster backlog — answers the same three questions
after a restart or a deferred batch: did it top up incrementally or fall
back to a rebuild, how many notes did it replay, and how long did the
catch-up take?  ``CatchUpStats`` gives them one shape for those answers
so benchmarks and operators read every consumer the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CatchUpStats:
    """Counters for one journal consumer's catch-up behaviour.

    ``rebuilds``
        Full from-scratch rebuilds (O(database) scans).
    ``topups``
        Incremental catch-ups replayed from ``changed_since_seq``
        (O(log n + changes)).
    ``notes_replayed``
        Notes (documents + deletion stubs) examined across all top-ups.
    ``purges_replayed``
        Purge-log entries applied across all top-ups.
    ``catch_up_seconds``
        Wall-clock time spent in top-ups and rebuilds combined.
    ``merges``
        Segment folds performed while saving checkpoints (consumers on
        the shared :class:`repro.storage.SegmentStack` record them here).
    ``segment_stats``
        Per-stack :class:`repro.storage.SegmentStats`, keyed by the
        consumer's name for the stack (e.g. ``"entries"``, ``"terms"``,
        ``"docs"``). Live objects — they track the stack as it moves.
    ``last_path``
        What the most recent catch-up actually did: ``"noop"``,
        ``"topup"``, ``"merge"`` (a top-up whose checkpoint save also
        folded segments), or ``"rebuild"`` (empty before the first one).
    """

    rebuilds: int = 0
    topups: int = 0
    notes_replayed: int = 0
    purges_replayed: int = 0
    catch_up_seconds: float = 0.0
    merges: int = 0
    segment_stats: dict = field(default_factory=dict, compare=False)
    last_path: str = field(default="", compare=False)

    def record_topup(self, notes: int, purges: int, seconds: float) -> None:
        self.topups += 1
        self.notes_replayed += notes
        self.purges_replayed += purges
        self.catch_up_seconds += seconds
        self.last_path = "topup"

    def record_rebuild(self, seconds: float) -> None:
        self.rebuilds += 1
        self.catch_up_seconds += seconds
        self.last_path = "rebuild"

    def record_noop(self) -> None:
        self.last_path = "noop"

    def record_merge(self, folds: int) -> None:
        """Folds performed by a checkpoint save; promotes ``last_path``
        to ``"merge"`` so top-up and top-up-plus-fold are tellable apart."""
        if folds > 0:
            self.merges += folds
            self.last_path = "merge"
