"""Universal note ids and originator ids.

Every note carries a 32-hex-digit *UNID* that is identical in every replica
of the database — it is the replication-stable identity. The *originator
id* (OID) extends the UNID with a sequence number and the virtual time of
the last sequence bump; the replicator compares OIDs to decide which side
holds the newer revision and whether the two sides diverged (a conflict).

Replica ids identify a database family: only databases sharing a replica id
replicate with each other.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_UNID_BITS = 128
_REPLICA_BITS = 64


def new_unid(rng: random.Random) -> str:
    """A fresh 32-hex-character universal id drawn from ``rng``."""
    return f"{rng.getrandbits(_UNID_BITS):032X}"


def new_replica_id(rng: random.Random) -> str:
    """A fresh 16-hex-character replica id drawn from ``rng``."""
    return f"{rng.getrandbits(_REPLICA_BITS):016X}"


@dataclass(frozen=True, order=False)
class OriginatorId:
    """(unid, sequence number, sequence time) — the replication version stamp.

    ``seq`` counts *revisions* of the note, starting at 1. ``seq_time`` is
    the (virtual time, tick) pair at which the current revision was made.
    Two replicas that both revised the same base revision will both be at
    ``seq = base + 1`` with different ``seq_time`` — that is the divergence
    (conflict) signature.
    """

    unid: str
    seq: int
    seq_time: tuple[float, int]

    def newer_than(self, other: "OriginatorId") -> bool:
        """Whether this revision strictly supersedes ``other``.

        Higher sequence wins; equal sequences tie-break on sequence time so
        replicas converge deterministically (the later edit wins, and the
        clock tick disambiguates simultaneous edits).
        """
        if self.unid != other.unid:
            raise ValueError(
                f"cannot compare OIDs of different notes {self.unid}/{other.unid}"
            )
        return (self.seq, tuple(self.seq_time)) > (other.seq, tuple(other.seq_time))
