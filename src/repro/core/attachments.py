"""File attachments: binary payloads carried inside documents.

Notes stores attachments as ``$FILE`` items; here each attachment is one
``$FILE.<name>`` item of type ATTACHMENT whose value is a JSON-safe
``{"name": …, "data": <base64>}`` pair, so attachments persist and
replicate exactly like any other item — including field-level replication,
which ships an attachment only when it actually changed.
"""

from __future__ import annotations

import base64

from repro.errors import DocumentError
from repro.core.document import Document
from repro.core.items import ItemType

ATTACHMENT_PREFIX = "$FILE."


def attach(doc: Document, filename: str, data: bytes) -> str:
    """Store ``data`` as attachment ``filename``; returns the item name.

    Re-attaching an existing filename replaces its content.
    """
    if not filename:
        raise DocumentError("attachment needs a filename")
    item_name = ATTACHMENT_PREFIX + filename
    doc.set(
        item_name,
        {"name": filename, "data": base64.b64encode(data).decode("ascii")},
        ItemType.ATTACHMENT,
    )
    return item_name


def detach(doc: Document, filename: str) -> bytes:
    """Return the attachment's bytes; raises if absent."""
    item = doc.item(ATTACHMENT_PREFIX + filename)
    if item is None or item.type != ItemType.ATTACHMENT:
        raise DocumentError(f"document has no attachment {filename!r}")
    return base64.b64decode(item.value["data"])


def remove_attachment(doc: Document, filename: str) -> None:
    """Delete an attachment item."""
    item_name = ATTACHMENT_PREFIX + filename
    if item_name not in doc:
        raise DocumentError(f"document has no attachment {filename!r}")
    doc.remove_item(item_name)


def attachment_names(doc: Document) -> list[str]:
    """Filenames of every attachment on the document."""
    return sorted(
        item.value["name"]
        for item in doc
        if item.type == ItemType.ATTACHMENT
    )


def attachment_bytes(doc: Document) -> int:
    """Total decoded size of all attachments (for quota accounting)."""
    total = 0
    for item in doc:
        if item.type == ItemType.ATTACHMENT:
            total += len(base64.b64decode(item.value["data"]))
    return total
