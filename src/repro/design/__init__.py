"""Design elements as notes: the application *is* the database.

The paper stresses that a Notes database carries its own application —
forms, views and agents are notes too, so replicating the database
replicates the design. This package implements that: view/agent/folder
definitions serialize to ``$Design*`` documents, and an
:class:`~repro.design.application.Application` instantiates live objects
from them, refreshing automatically when new design notes arrive by
replication.
"""

from repro.design.application import Application
from repro.design.elements import (
    DESIGN_AGENT_FORM,
    DESIGN_VIEW_FORM,
    agent_from_doc,
    agent_to_items,
    view_params_from_doc,
    view_to_items,
)

__all__ = [
    "Application",
    "DESIGN_AGENT_FORM",
    "DESIGN_VIEW_FORM",
    "agent_from_doc",
    "agent_to_items",
    "view_params_from_doc",
    "view_to_items",
]
