"""The Application: live views/agents instantiated from design notes.

Opening an application over a database scans its ``$Design*`` notes and
builds the corresponding :class:`View` and :class:`Agent` objects. Because
design notes are ordinary documents, they replicate: when a replica
receives a new or revised design note, the application *refreshes* — the
replicated database carries its own application, exactly the property the
paper highlights.
"""

from __future__ import annotations

from repro.errors import ViewError
from repro.agents.agent import Agent, AgentTrigger
from repro.agents.runner import AgentRunner
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.design.elements import (
    DESIGN_ACL_FORM,
    DESIGN_AGENT_FORM,
    DESIGN_VIEW_FORM,
    acl_from_doc,
    acl_to_items,
    agent_from_doc,
    agent_to_items,
    view_params_from_doc,
    view_to_items,
)
from repro.sim.events import EventScheduler
from repro.views.column import ViewColumn
from repro.views.view import View


class Application:
    """Live design elements over one database replica."""

    def __init__(
        self,
        db: NotesDatabase,
        events: EventScheduler | None = None,
        designer: str = "designer",
    ) -> None:
        self.db = db
        self.events = events
        self.designer = designer
        self.views: dict[str, View] = {}
        self.runner = AgentRunner(db)
        self.design_refreshes = 0
        # design-note unid -> oid applied, to skip no-op refreshes
        self._applied: dict[str, tuple] = {}
        db.subscribe(self._on_change)
        self.refresh_design()

    def close(self) -> None:
        self.db.unsubscribe(self._on_change)
        self.runner.close()
        for view in self.views.values():
            view.close()

    # -- authoring ----------------------------------------------------------

    def save_view(
        self,
        name: str,
        selection: str = "SELECT @All",
        columns: list[ViewColumn] | None = None,
        hierarchical: bool = False,
    ) -> View:
        """Create or replace a view design note (and its live view)."""
        items = view_to_items(
            name, selection,
            columns or [ViewColumn(title="Subject", item="Subject")],
            hierarchical,
        )
        existing = self._find_design(DESIGN_VIEW_FORM, name)
        if existing is not None:
            self.db.update(existing.unid, items, author=self.designer)
        else:
            self.db.create(items, author=self.designer)
        return self.views[name]

    def save_agent(self, agent: Agent) -> Agent:
        """Create or replace an agent design note (and register it live)."""
        items = agent_to_items(agent)
        existing = self._find_design(DESIGN_AGENT_FORM, agent.name)
        if existing is not None:
            self.db.update(existing.unid, items, author=self.designer)
        else:
            self.db.create(items, author=self.designer)
        return self.runner.agent(agent.name)

    def save_acl(self, acl) -> None:
        """Store the ACL as a design note and activate it on this replica.

        Because it is a note, the ACL replicates with the database and
        takes effect on every replica at design refresh — Manager-level
        protection comes from the existing update checks on the note
        itself (the designer must be able to edit design documents).
        """
        from repro.security.acl import AclLevel

        # The Notes safeguard: you cannot save an ACL that locks you out,
        # and every ACL must retain at least one Manager.
        if acl.level_of(self.designer) < AclLevel.DESIGNER:
            raise ViewError(
                f"saving this ACL would lock designer {self.designer!r} out"
            )
        if not any(entry.level >= AclLevel.MANAGER for entry in acl.entries()):
            raise ViewError("an ACL must contain at least one Manager entry")
        items = acl_to_items(acl)
        existing = self._find_design(DESIGN_ACL_FORM, "$ACL")
        if existing is not None:
            self.db.update(existing.unid, items, author=self.designer)
        else:
            self.db.create(items, author=self.designer)

    # -- access -----------------------------------------------------------

    def view(self, name: str) -> View:
        try:
            return self.views[name]
        except KeyError:
            raise ViewError(f"application has no view {name!r}") from None

    @property
    def view_names(self) -> list[str]:
        return sorted(self.views)

    @property
    def agent_names(self) -> list[str]:
        return sorted(agent.name for agent in self.runner.agents)

    # -- design refresh ------------------------------------------------------

    def refresh_design(self) -> int:
        """Scan design notes, (re)instantiating changed elements.

        Returns how many elements were built or rebuilt.
        """
        rebuilt = 0
        for doc in list(self.db.all_documents()):
            form = doc.get("Form")
            if form == DESIGN_VIEW_FORM:
                rebuilt += self._apply_view_design(doc)
            elif form == DESIGN_AGENT_FORM:
                rebuilt += self._apply_agent_design(doc)
            elif form == DESIGN_ACL_FORM:
                rebuilt += self._apply_acl_design(doc)
        if rebuilt:
            self.design_refreshes += 1
        return rebuilt

    def _apply_acl_design(self, doc: Document) -> int:
        stamp = (doc.seq, tuple(doc.seq_time))
        if self._applied.get(doc.unid) == stamp:
            return 0
        self.db.acl = acl_from_doc(doc)
        self._applied[doc.unid] = stamp
        return 1

    def _apply_view_design(self, doc: Document) -> int:
        stamp = (doc.seq, tuple(doc.seq_time))
        if self._applied.get(doc.unid) == stamp:
            return 0
        params = view_params_from_doc(doc)
        name = params["name"]
        old = self.views.pop(name, None)
        if old is not None:
            old.close()
        self.views[name] = View(self.db, **params)
        self._applied[doc.unid] = stamp
        return 1

    def _apply_agent_design(self, doc: Document) -> int:
        stamp = (doc.seq, tuple(doc.seq_time))
        if self._applied.get(doc.unid) == stamp:
            return 0
        agent = agent_from_doc(doc)
        try:
            self.runner.remove(agent.name)
        except Exception:
            pass
        if agent.trigger == AgentTrigger.SCHEDULED and self.events is None:
            raise ViewError(
                f"scheduled agent {agent.name!r} needs an application "
                "opened with an EventScheduler"
            )
        self.runner.add(agent, self.events)
        self._applied[doc.unid] = stamp
        return 1

    # -- change tracking ----------------------------------------------------

    def _on_change(self, kind: ChangeKind, payload, old) -> None:
        if kind == ChangeKind.DELETE:
            return  # live elements outlive deleted design notes until refresh
        doc: Document = payload
        form = doc.get("Form")
        if form == DESIGN_VIEW_FORM:
            self._apply_view_design(doc)
            self.design_refreshes += 1
        elif form == DESIGN_AGENT_FORM:
            self._apply_agent_design(doc)
            self.design_refreshes += 1
        elif form == DESIGN_ACL_FORM:
            self._apply_acl_design(doc)
            self.design_refreshes += 1

    def _find_design(self, form: str, title: str) -> Document | None:
        for doc in self.db.all_documents():
            if doc.get("Form") == form and doc.get("$Title") == title:
                return doc
        return None
