"""Serialization between design objects and design notes."""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ViewError
from repro.agents.agent import Agent, AgentTrigger
from repro.core.document import Document
from repro.views.column import SortOrder, ViewColumn

DESIGN_VIEW_FORM = "$DesignView"
DESIGN_AGENT_FORM = "$DesignAgent"
DESIGN_ACL_FORM = "$DesignACL"


# -- views ------------------------------------------------------------


def view_to_items(
    name: str,
    selection: str,
    columns: list[ViewColumn],
    hierarchical: bool = False,
) -> dict[str, Any]:
    """Item dict describing a view design (storable as a document)."""
    column_specs = [
        {
            "title": column.title,
            "item": column.item,
            "formula": column.formula,
            "sort": column.sort.value,
            "categorized": column.categorized,
            "totals": column.totals,
        }
        for column in columns
    ]
    return {
        "Form": DESIGN_VIEW_FORM,
        "$Title": name,
        "$Selection": selection,
        "$Columns": json.dumps(column_specs),
        "$Hierarchical": 1 if hierarchical else 0,
    }


def view_params_from_doc(doc: Document) -> dict[str, Any]:
    """Constructor kwargs for :class:`repro.views.View` from a design note."""
    if doc.get("Form") != DESIGN_VIEW_FORM:
        raise ViewError(f"{doc.unid} is not a view design note")
    columns = [
        ViewColumn(
            title=spec["title"],
            item=spec.get("item"),
            formula=spec.get("formula"),
            sort=SortOrder(spec.get("sort", "none")),
            categorized=bool(spec.get("categorized")),
            totals=bool(spec.get("totals")),
        )
        for spec in json.loads(doc.get("$Columns", "[]"))
    ]
    return {
        "name": doc.get("$Title"),
        "selection": doc.get("$Selection", "SELECT @All"),
        "columns": columns,
        "hierarchical": bool(doc.get("$Hierarchical", 0)),
    }


# -- agents ------------------------------------------------------------


def agent_to_items(agent: Agent) -> dict[str, Any]:
    """Item dict describing an agent design.

    Only formula agents serialize — a Python callable cannot travel inside
    a note (matching how LotusScript travelled as stored design, while
    arbitrary host code could not).
    """
    if agent.formula is None:
        raise ViewError(
            f"agent {agent.name!r} uses a Python action and cannot be "
            "stored as a design note"
        )
    return {
        "Form": DESIGN_AGENT_FORM,
        "$Title": agent.name,
        "$Trigger": agent.trigger.value,
        "$Selection": agent.selection,
        "$ActionFormula": agent.formula,
        "$Interval": agent.interval,
        "$Scan": agent.scan,
    }


def acl_to_items(acl) -> dict[str, Any]:
    """Item dict describing a database ACL (it replicates as a note)."""
    entries = [
        {
            "name": entry.name,
            "level": int(entry.level),
            "roles": sorted(entry.roles),
            "can_delete": entry.can_delete_documents,
            "can_create": entry.can_create_documents,
        }
        for entry in acl.entries()
    ]
    return {
        "Form": DESIGN_ACL_FORM,
        "$Title": "$ACL",
        "$Entries": json.dumps(entries),
        "$Groups": json.dumps(acl.groups),
    }


def acl_from_doc(doc: Document):
    """Reconstruct an :class:`AccessControlList` from its design note."""
    from repro.security.acl import DEFAULT_ENTRY, AccessControlList, AclLevel

    if doc.get("Form") != DESIGN_ACL_FORM:
        raise ViewError(f"{doc.unid} is not an ACL design note")
    acl = AccessControlList(groups=json.loads(doc.get("$Groups", "{}")))
    for spec in json.loads(doc.get("$Entries", "[]")):
        acl.add(
            spec["name"],
            AclLevel(spec["level"]),
            roles=spec.get("roles", ()),
            can_delete_documents=spec.get("can_delete", True),
            can_create_documents=spec.get("can_create", True),
        )
    # ensure a -Default- entry exists even in pathological notes
    if acl._entries.get(DEFAULT_ENTRY.lower()) is None:  # pragma: no cover
        acl.add(DEFAULT_ENTRY, AclLevel.NO_ACCESS)
    return acl


def agent_from_doc(doc: Document) -> Agent:
    """Reconstruct an :class:`Agent` from its design note."""
    if doc.get("Form") != DESIGN_AGENT_FORM:
        raise ViewError(f"{doc.unid} is not an agent design note")
    return Agent(
        name=doc.get("$Title"),
        trigger=AgentTrigger(doc.get("$Trigger", "manual")),
        selection=doc.get("$Selection", "SELECT @All"),
        formula=doc.get("$ActionFormula"),
        interval=doc.get("$Interval", 3600.0),
        scan=doc.get("$Scan", "changed"),
    )
