"""Per-user unread marks.

Notes keeps an unread table per user per database: a document is unread for
a user until they open it, and becomes unread again when somebody else
revises it. Unread state is *local bookkeeping* keyed by the document's
revision stamp, which makes "revised ⇒ unread again" fall out naturally:
the mark records which revision was read.
"""

from __future__ import annotations

from repro.core.database import NotesDatabase
from repro.core.document import Document


class UnreadTracker:
    """Tracks which revision of each document each user has read."""

    def __init__(self, db: NotesDatabase) -> None:
        self.db = db
        # user -> unid -> (seq, seq_time) last read
        self._read: dict[str, dict[str, tuple]] = {}

    def _table(self, user: str) -> dict[str, tuple]:
        return self._read.setdefault(user, {})

    # -- marking ----------------------------------------------------------

    def mark_read(self, user: str, unid: str) -> None:
        """Record that ``user`` has seen the current revision of ``unid``."""
        doc = self.db.get(unid)
        self._table(user)[unid] = (doc.seq, tuple(doc.seq_time))

    def mark_all_read(self, user: str) -> int:
        """Mark every live document read for ``user``; returns the count."""
        table = self._table(user)
        count = 0
        for doc in self.db.all_documents():
            table[doc.unid] = (doc.seq, tuple(doc.seq_time))
            count += 1
        return count

    def mark_unread(self, user: str, unid: str) -> None:
        """Force a document back to unread for ``user``."""
        self._table(user).pop(unid, None)

    # -- querying ---------------------------------------------------------

    def is_unread(self, user: str, doc: Document) -> bool:
        """Unread = never read, or revised since the recorded read."""
        stamp = self._table(user).get(doc.unid)
        if stamp is None:
            return True
        return (doc.seq, tuple(doc.seq_time)) != stamp

    def unread_count(self, user: str, view=None) -> int:
        """Unread documents for ``user`` — whole db, or scoped to a view."""
        if view is not None:
            docs = (self.db.try_get(unid) for unid in view.all_unids())
        else:
            docs = self.db.all_documents()
        return sum(
            1 for doc in docs if doc is not None and self.is_unread(user, doc)
        )

    def unread_unids(self, user: str) -> list[str]:
        return [
            doc.unid
            for doc in self.db.all_documents()
            if self.is_unread(user, doc)
        ]
