"""Folders: manually-populated document collections.

A folder is a view without a selection formula — documents are put in and
taken out explicitly (the Notes Inbox is a folder). Membership is stored in
a hidden ``$FolderRefs``-style structure on the folder object; display
reuses the view collation machinery.
"""

from __future__ import annotations

from repro.errors import ViewError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.storage.btree import BPlusTree
from repro.views.column import SortOrder, ViewColumn, collate
from repro.views.view import _Entry


class Folder:
    """A named, manually-populated, sorted collection of documents."""

    def __init__(
        self,
        db: NotesDatabase,
        name: str,
        columns: list[ViewColumn] | None = None,
    ) -> None:
        self.db = db
        self.name = name
        self.columns = columns or [ViewColumn(title="Subject", item="Subject")]
        self._members: set[str] = set()
        self._tree = BPlusTree(order=64)
        self._keys: dict[str, tuple] = {}
        db.subscribe(self._on_change)

    def close(self) -> None:
        self.db.unsubscribe(self._on_change)

    # -- membership -----------------------------------------------------

    def add(self, unid: str) -> None:
        """Put a document into the folder (idempotent)."""
        doc = self.db.try_get(unid)
        if doc is None:
            raise ViewError(f"cannot file missing document {unid}")
        if unid in self._members:
            return
        self._members.add(unid)
        self._insert(doc)

    def remove(self, unid: str) -> None:
        """Take a document out of the folder."""
        if unid not in self._members:
            raise ViewError(f"{unid} is not in folder {self.name!r}")
        self._members.discard(unid)
        self._drop(unid)

    def __contains__(self, unid: str) -> bool:
        return unid in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- display ----------------------------------------------------------

    def documents(self) -> list[Document]:
        """Folder contents in collation order."""
        out = []
        for _, entry in self._tree.items():
            doc = self.db.try_get(entry.unid)
            if doc is not None:
                out.append(doc)
        return out

    def all_unids(self) -> list[str]:
        return [entry.unid for _, entry in self._tree.items()]

    # -- internals ----------------------------------------------------------

    def _key_for(self, doc: Document) -> tuple:
        components = [
            column.key_component(column.value_for(doc, self.db))
            for column in self.columns
            if column.sort != SortOrder.NONE
        ]
        if not components:
            components = [collate(doc.created)]
        return tuple(components) + ((1, doc.created, doc.unid),)

    def _insert(self, doc: Document) -> None:
        key = self._key_for(doc)
        values = tuple(column.value_for(doc, self.db) for column in self.columns)
        self._tree.insert(key, _Entry(doc.unid, values, 0))
        self._keys[doc.unid] = key

    def _drop(self, unid: str) -> None:
        key = self._keys.pop(unid, None)
        if key is not None:
            try:
                self._tree.delete(key)
            except KeyError:  # pragma: no cover - defensive
                pass

    def _on_change(self, kind: ChangeKind, payload, old) -> None:
        unid = payload.unid
        if unid not in self._members:
            return
        if kind == ChangeKind.DELETE:
            # deletion removes the document from every folder
            self._members.discard(unid)
            self._drop(unid)
        elif kind in (ChangeKind.UPDATE, ChangeKind.REPLACE, ChangeKind.RESTORE):
            self._drop(unid)
            doc = self.db.try_get(unid)
            if doc is not None:
                self._insert(doc)
