"""The View: a sorted, categorized, incrementally-maintained index.

A view owns a B+tree whose keys are collation tuples built from the sorted
columns (plus a per-document tie-break, plus response markers in
hierarchical views) and whose values are display entries. Two maintenance
modes exist so experiment E5 can compare them:

``auto`` (default)
    The view subscribes to database change events and applies them
    incrementally — O(log n) per changed document.
``manual``
    The view catches up on :meth:`refresh`. With the journal enabled
    (the default) a stale view records the ``update_seq`` it last
    indexed and tops up from ``changed_since_seq`` — O(log n + changes).
    With ``journal=False`` (the ablation E5/E14 measure against) every
    refresh is the O(n log n) "view rebuild" the paper calls out as the
    thing incremental indexing avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from time import perf_counter
from typing import Any, Iterator

from repro.errors import ViewError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.core.stats import CatchUpStats
from repro.formula import compile_formula
from repro.storage.btree import BPlusTree
from repro.storage.segments import MergePolicy, SegmentStack, SegmentStats
from repro.views.column import SortOrder, ViewColumn, collate


@dataclass(frozen=True)
class DocumentRow:
    """One document line in a view display."""

    unid: str
    values: tuple
    level: int = 0


@dataclass(frozen=True)
class CategoryRow:
    """A category heading produced by a categorized column."""

    value: Any
    level: int
    count: int
    subtotals: dict = dataclass_field(default_factory=dict, compare=False)


@dataclass
class _Entry:
    unid: str
    values: tuple
    level: int


class View:
    """A named, sorted projection of one database.

    Parameters
    ----------
    db:
        The backing :class:`NotesDatabase`.
    name:
        View name (unique per application by convention, not enforced).
    selection:
        Selection formula source; defaults to everything.
    columns:
        The :class:`ViewColumn` list. Categorized columns must come first.
    mode:
        ``"auto"`` for incremental maintenance, ``"manual"`` for
        rebuild-on-refresh.
    hierarchical:
        Show response documents indented beneath their parents.
    persist:
        Store the view index in the database's storage engine (the NSF
        kept view indexes too). On open, a saved index whose database
        state fingerprint still matches is loaded instead of rebuilding;
        a *stale* saved index is loaded and topped up from the update
        journal when possible. On disk the entries live in a
        :class:`repro.storage.SegmentStack` sidecar: each
        :meth:`save_index` appends only the entries dirtied since the
        last save as a new immutable segment (close cost O(delta), the
        E15 claim), and ``merge_policy`` decides when segments fold back
        together. Call :meth:`save_index` (or :meth:`close`) to write it
        back; the database's :meth:`~NotesDatabase.close` also sweeps
        registered persistent views.
    merge_policy:
        :class:`repro.storage.MergePolicy` for the sidecar segments
        (default :data:`repro.storage.DEFAULT_POLICY`;
        :data:`repro.storage.SINGLE_SEGMENT` restores rewrite-everything
        saves as the E15 ablation).
    journal:
        Allow seq-checkpointed catch-up from the database's update
        journal. ``False`` restores the pre-journal behaviour — stale
        snapshots and manual refreshes always rebuild — and exists as
        the ablation baseline for E5/E14.
    """

    def __init__(
        self,
        db: NotesDatabase,
        name: str,
        selection: str = "SELECT @All",
        columns: list[ViewColumn] | None = None,
        mode: str = "auto",
        hierarchical: bool = False,
        persist: bool = False,
        journal: bool = True,
        merge_policy: MergePolicy | None = None,
    ) -> None:
        if mode not in ("auto", "manual"):
            raise ViewError(f"mode must be 'auto' or 'manual', got {mode!r}")
        if persist and db.engine is None:
            raise ViewError("persist=True needs a database with a storage engine")
        self.db = db
        self.name = name
        self.selection_source = selection
        self.columns = columns or [ViewColumn(title="Subject", item="Subject")]
        self._validate_columns()
        self.mode = mode
        self.hierarchical = hierarchical
        self.persist = persist
        self.journal = journal
        self.merge_policy = merge_policy or MergePolicy()
        self._selection = compile_formula(selection)
        self._tree: BPlusTree = BPlusTree(order=64)
        # On-disk segment stack behind the persisted index (None until a
        # save or load; None again after a rebuild, which rewrites it).
        self._stack: SegmentStack | None = None
        # Entries touched since the last save — the next save's segment.
        self._dirty: set[str] = set()
        self._segment_stats = SegmentStats()
        self._keys: dict[str, tuple] = {}
        self._children: dict[str, set[str]] = {}
        # Reverse of _children: child unid -> parent unid, so _remove can
        # discard its membership in O(1) instead of sweeping every set.
        self._parent_of: dict[str, str] = {}
        self.rebuilds = 0
        self.incremental_ops = 0
        self.pending_changes = 0
        self.loaded_from_disk = False
        self.catch_up = CatchUpStats()
        self.catch_up.segment_stats["entries"] = self._segment_stats
        # What the index currently reflects: the journal checkpoint a
        # refresh or a saved-snapshot load tops up from. Soft deletes and
        # restores don't journal, so the trash membership at index time
        # rides along and is reconciled by set difference.
        self._indexed_seq = -1
        self._indexed_purge_seq = 0
        self._indexed_journal_id = ""
        self._indexed_state = ""
        self._indexed_trash: set[str] = set()
        if mode == "auto":
            db.subscribe(self._on_change)
        if persist:
            db.register_checkpointer(self.save_index)
        if not (persist and self._try_load_index()):
            self.rebuild()

    # -- column checks ----------------------------------------------------

    def _validate_columns(self) -> None:
        seen_plain_sort = False
        for column in self.columns:
            if column.categorized:
                if seen_plain_sort:
                    raise ViewError(
                        "categorized columns must precede sorted columns"
                    )
            elif column.sort != SortOrder.NONE:
                seen_plain_sort = True

    @property
    def _sorted_columns(self) -> list[ViewColumn]:
        return [c for c in self.columns if c.sort != SortOrder.NONE]

    @property
    def _categorized_columns(self) -> list[ViewColumn]:
        return [c for c in self.columns if c.categorized]

    # -- maintenance --------------------------------------------------------

    def close(self) -> None:
        """Detach from database events; save the index when persistent."""
        if self.persist:
            self.save_index()
            self.db.unregister_checkpointer(self.save_index)
        if self.mode == "auto":
            self.db.unsubscribe(self._on_change)

    # -- index persistence -----------------------------------------------

    def _design_fingerprint(self) -> str:
        import hashlib

        spec = repr((
            self.selection_source,
            self.hierarchical,
            [(c.title, c.item, c.formula, c.sort.value, c.categorized,
              c.totals) for c in self.columns],
        ))
        return hashlib.sha256(spec.encode()).hexdigest()

    def _index_key(self) -> bytes:
        return b"viewidx:" + self.name.encode()

    @staticmethod
    def _encode_key(key: tuple) -> list:
        out = []
        for component in key:
            from repro.views.column import Descending

            if isinstance(component, Descending):
                out.append(["d", list(component.inner)])
            else:
                out.append(["a", list(component)])
        return out

    @staticmethod
    def _decode_key(encoded: list) -> tuple:
        from repro.views.column import Descending

        components = []
        for kind, inner in encoded:
            value = tuple(inner)
            components.append(Descending(value) if kind == "d" else value)
        return tuple(components)

    def _namespace(self) -> bytes:
        return b"viewidx:" + self.name.encode()

    def _make_stack(self) -> None:
        self._stack = SegmentStack(
            self.db.engine,
            self._namespace(),
            policy=self.merge_policy,
            stats=self._segment_stats,
        )

    def _record_for(self, unid: str) -> tuple:
        """The per-entry segment record: everything a reopen needs to put
        the entry back (key, display values, level, parent link)."""
        key = self._keys[unid]
        entry = self._tree.get(key)
        return (
            self._encode_key(key),
            list(entry.values),
            entry.level,
            self._parent_of.get(unid),
        )

    def save_index(self) -> None:
        """Write the index changes since the last save to the engine.

        The entries live in a segment stack: a save appends only the
        dirtied entries as a new immutable segment — O(delta), however
        big the view — then folds segments if the merge policy demands
        it. One engine transaction covers the segment, any folds, and
        the meta record naming them, so a crash mid-save leaves the
        previous checkpoint fully readable.

        The meta record carries the journal checkpoint the index
        reflects (``journal_id`` + ``indexed_seq`` + ``indexed_purge_seq``
        + the trash membership at index time), so a later open against a
        moved-on database tops up from ``changed_since_seq`` instead of
        rebuilding.
        """
        import json

        if self.db.engine is None:
            raise ViewError("database has no storage engine")
        if self.mode == "auto":
            # An auto view is continuously current: stamp the checkpoint
            # now. A manual view saves whatever it last indexed.
            self._mark_indexed()
        engine = self.db.engine
        txn = engine.begin()
        fresh = self._stack is None
        if fresh:
            # A rebuild (or first save) rewrites the stack from scratch;
            # clear whatever segments a previous layout left behind.
            raw = engine.get(self._index_key())
            if raw is not None:
                old_meta = json.loads(raw.decode())
                SegmentStack.delete_manifest(
                    engine, txn, self._namespace(), old_meta.get("index", {})
                )
            self._make_stack()
        self._stack.policy = self.merge_policy  # honour runtime swaps
        folds: list[int] = []
        if fresh:
            dirty = set(self._keys)
            removed: set[str] = set()
        else:
            dirty = {unid for unid in self._dirty if unid in self._keys}
            removed = self._dirty - dirty
        if dirty or removed:
            records = {unid: self._record_for(unid) for unid in dirty}
            self._stack.append(txn, records, remove=removed)
            folds = self._stack.maintain(txn)
        snapshot = {
            "design": self._design_fingerprint(),
            "state": self._indexed_state,
            "journal_id": self._indexed_journal_id,
            "indexed_seq": self._indexed_seq,
            "indexed_purge_seq": self._indexed_purge_seq,
            "trash": sorted(self._indexed_trash),
            "index": self._stack.manifest(),
        }
        engine.put(txn, self._index_key(), json.dumps(snapshot).encode())
        engine.commit(txn)
        self._dirty.clear()
        self.catch_up.record_merge(len(folds))

    def _try_load_index(self) -> bool:
        """Load a saved index; top up a stale one from the journal.

        A snapshot whose state fingerprint still matches loads as-is. A
        stale snapshot cut under the *same journal identity* loads and
        replays only the notes sequenced past its checkpoint — the
        incremental top-up E14 measures. Returns False (caller rebuilds)
        only for a changed design, a pre-journal snapshot, a reseeded
        journal, or a purge log that no longer reaches back far enough.
        """
        import json

        raw = self.db.engine.get(self._index_key())
        if raw is None:
            return False
        snapshot = json.loads(raw.decode())
        if snapshot.get("design") != self._design_fingerprint():
            return False
        if "index" not in snapshot:
            return False  # pre-segment snapshot layout: rebuild once
        current = snapshot.get("state") == self.db.state_fingerprint()
        if not current:
            if not self.journal:
                return False
            if snapshot.get("journal_id") != self.db.journal_id:
                return False  # pre-journal snapshot or reseeded journal
            if snapshot["indexed_seq"] > self.db.update_seq:
                return False  # checkpoint from a future this journal lost
            if self.db.purges_since(snapshot["indexed_purge_seq"]) is None:
                return False
        self._make_stack()
        if not self._stack.load(snapshot["index"]):
            self._stack = None
            return False  # manifest names a segment the engine lost
        pairs = []
        for unid, record in self._stack.live_items():
            encoded_key, values, level, parent = record
            key = self._decode_key(encoded_key)
            pairs.append((key, _Entry(unid, tuple(values), level)))
            self._keys[unid] = key
            if parent is not None:
                self._children.setdefault(parent, set()).add(unid)
                self._parent_of[unid] = parent
        pairs.sort(key=lambda pair: pair[0])  # segments are unordered
        self._tree.bulk_load(pairs)
        if current:
            self._mark_indexed()
            self.catch_up.record_noop()
        else:
            self._indexed_seq = snapshot["indexed_seq"]
            self._indexed_purge_seq = snapshot["indexed_purge_seq"]
            self._indexed_journal_id = snapshot["journal_id"]
            self._indexed_trash = set(snapshot.get("trash", ()))
            if not self._catch_up_from_journal():  # pragma: no cover
                # Validity was pre-checked above; top-up cannot fail here.
                return False
        self.loaded_from_disk = True
        return True

    def _mark_indexed(self) -> None:
        """Stamp the checkpoint: the index now reflects this exact state."""
        db = self.db
        self._indexed_seq = db.update_seq
        self._indexed_purge_seq = db.purge_seq
        self._indexed_journal_id = db.journal_id
        self._indexed_state = db.state_fingerprint()
        self._indexed_trash = set(db._trash)

    def _catch_up_from_journal(self) -> bool:
        """Replay journal entries past the checkpoint; False -> rebuild.

        O(log n + changes): purge-log entries drop vanished notes,
        ``changed_since_seq`` replays updated documents and deletion
        stubs in seq order, and the trash-membership diff covers soft
        deletes/restores (which never journal). Ends with the index
        byte-for-byte what a rebuild would produce.
        """
        db = self.db
        if not self.journal or self._indexed_journal_id != db.journal_id:
            return False
        if self._indexed_seq > db.update_seq:
            return False
        purges = db.purges_since(self._indexed_purge_seq)
        if purges is None:
            return False
        started = perf_counter()
        replayed = 0
        for _, unid in purges:
            self._remove(unid)
            self._rekey_descendants(unid)
        docs, stubs = db.changed_since_seq(self._indexed_seq)
        for doc in docs:
            live = db.try_get(doc.unid)  # None when trashed meanwhile
            self._remove(doc.unid)
            if live is not None and self._selected(live):
                self._insert(live)
            self._rekey_descendants(doc.unid)
            replayed += 1
        for stub in stubs:
            self._remove(stub.unid)
            self._rekey_descendants(stub.unid)
            replayed += 1
        current_trash = set(db._trash)
        for unid in current_trash - self._indexed_trash:
            self._remove(unid)
            self._rekey_descendants(unid)
            replayed += 1
        for unid in self._indexed_trash - current_trash:
            doc = db.try_get(unid)
            if doc is not None and unid not in self._keys and self._selected(doc):
                self._insert(doc)
                self._rekey_descendants(unid)
            replayed += 1
        self._mark_indexed()
        self.pending_changes = 0
        self.catch_up.record_topup(
            replayed, len(purges), perf_counter() - started
        )
        return True

    def rebuild(self) -> int:
        """Discard and rebuild the whole index; returns the entry count.

        Keys are computed once per document (parents before children, so
        hierarchical placement is correct regardless of creation order —
        replication can deliver responses first), sorted, and bulk-loaded
        into a fresh B+tree.
        """
        started = perf_counter()
        self._tree = BPlusTree(order=64)
        self._keys.clear()
        self._children.clear()
        self._parent_of.clear()
        # The on-disk stack no longer matches anything incremental; the
        # next save rewrites it from scratch (and deletes the old keys).
        self._stack = None
        self._dirty.clear()
        docs = [doc for doc in self.db.all_documents() if self._selected(doc)]
        if self.hierarchical:
            docs.sort(key=self._hierarchy_depth)
        pairs = []
        for doc in docs:
            key, level = self._key_for(doc)
            values = tuple(
                column.value_for(doc, self.db) for column in self.columns
            )
            self._keys[doc.unid] = key
            if doc.parent_unid is not None:
                self._children.setdefault(doc.parent_unid, set()).add(doc.unid)
                self._parent_of[doc.unid] = doc.parent_unid
            pairs.append((key, _Entry(doc.unid, values, level)))
        pairs.sort(key=lambda pair: pair[0])
        self._tree.bulk_load(pairs)
        self.rebuilds += 1
        self.pending_changes = 0
        self._mark_indexed()
        self.catch_up.record_rebuild(perf_counter() - started)
        return len(self._tree)

    def _hierarchy_depth(self, doc: Document) -> int:
        depth = 0
        current = doc
        while current.parent_unid is not None and depth < 64:
            parent = self.db.try_get(current.parent_unid)
            if parent is None:
                break
            depth += 1
            current = parent
        return depth

    def refresh(self) -> str:
        """Bring a manual-mode view up to date; report which path ran.

        Returns ``"noop"`` (already current — ``auto`` views ride change
        notifications, and an unchanged fingerprint short-circuits),
        ``"topup"`` (journal replay of only the notes sequenced past the
        checkpoint), ``"merge"`` (a top-up on a persistent view whose
        checkpoint save also folded sidecar segments — the amortized
        compaction bill coming due), or ``"rebuild"`` (the O(n log n)
        fallback, taken only with ``journal=False``, after a journal
        reseed, or when the purge log no longer reaches back to the
        checkpoint).

        ``rebuilds`` increments only on the rebuild path; top-ups count
        in ``catch_up.topups`` whether or not the save folded.
        """
        if self.mode != "manual" or (
            self.db.state_fingerprint() == self._indexed_state
        ):
            self.catch_up.record_noop()
            return "noop"
        if not self._catch_up_from_journal():
            self.rebuild()
        elif self.persist:
            # Persist the topped-up checkpoint; if the merge policy folds
            # segments here, record_merge promotes last_path to "merge".
            self.save_index()
        return self.catch_up.last_path

    def _on_change(self, kind: ChangeKind, payload, old: Document | None) -> None:
        self.incremental_ops += 1
        if kind in (ChangeKind.CREATE, ChangeKind.UPDATE, ChangeKind.REPLACE,
                    ChangeKind.RESTORE):
            doc: Document = payload
            self._remove(doc.unid)
            if self._selected(doc):
                self._insert(doc)
            self._rekey_descendants(doc.unid)
        elif kind == ChangeKind.DELETE:
            unid = payload.unid
            self._remove(unid)
            self._rekey_descendants(unid)

    # -- selection ----------------------------------------------------------

    def _selected(self, doc: Document) -> bool:
        # Design notes are a different note class: never shown in data views.
        form = doc.form
        if isinstance(form, str) and form.startswith("$Design"):
            return False
        selected, wants_children, wants_descendants = self._selection.select_ex(
            doc, db=self.db
        )
        if selected:
            return True
        if not doc.is_response:
            return False
        if wants_descendants:
            return self._ancestor_selected(doc, max_depth=None)
        if wants_children:
            return self._ancestor_selected(doc, max_depth=1)
        return False

    def _ancestor_selected(self, doc: Document, max_depth: int | None) -> bool:
        depth = 0
        current = doc
        while current.parent_unid is not None:
            parent = self.db.try_get(current.parent_unid)
            if parent is None:
                return False
            depth += 1
            if max_depth is not None and depth > max_depth:
                return False
            selected, _, _ = self._selection.select_ex(parent, db=self.db)
            if selected:
                return True
            current = parent
        return False

    # -- index operations ---------------------------------------------------

    def _base_key(self, doc: Document) -> tuple:
        components = []
        for column in self._sorted_columns:
            components.append(column.key_component(column.value_for(doc, self.db)))
        if not components:
            components.append(collate(doc.created))
        return tuple(components)

    def _key_for(self, doc: Document) -> tuple[tuple, int]:
        """Full collation key and display level for ``doc``."""
        marker = (1, doc.created, doc.unid)
        if self.hierarchical and doc.parent_unid is not None:
            parent_key = self._keys.get(doc.parent_unid)
            if parent_key is not None:
                level = self._level_of(parent_key) + 1
                return parent_key + ((2, doc.created, doc.unid),), level
        return self._base_key(doc) + (marker,), 0

    def _level_of(self, key: tuple) -> int:
        return sum(
            1
            for component in key
            if isinstance(component, tuple) and component and component[0] == 2
        )

    def _insert(self, doc: Document) -> None:
        key, level = self._key_for(doc)
        values = tuple(column.value_for(doc, self.db) for column in self.columns)
        self._tree.insert(key, _Entry(doc.unid, values, level))
        self._keys[doc.unid] = key
        self._dirty.add(doc.unid)
        if doc.parent_unid is not None:
            self._children.setdefault(doc.parent_unid, set()).add(doc.unid)
            self._parent_of[doc.unid] = doc.parent_unid

    def _remove(self, unid: str) -> None:
        key = self._keys.pop(unid, None)
        if key is None:
            return
        self._dirty.add(unid)
        try:
            self._tree.delete(key)
        except KeyError:  # pragma: no cover - defensive
            pass
        parent = self._parent_of.pop(unid, None)
        if parent is not None:
            siblings = self._children.get(parent)
            if siblings is not None:
                siblings.discard(unid)
                if not siblings:
                    del self._children[parent]

    def _rekey_descendants(self, unid: str) -> None:
        """Re-insert (or re-evaluate) responses after their ancestor moved."""
        if not self.hierarchical:
            return
        for child_unid in list(self._children.get(unid, ())):
            child = self.db.try_get(child_unid)
            if child is None:
                continue
            self._remove(child_unid)
            if self._selected(child):
                self._insert(child)
            self._rekey_descendants(child_unid)
        # Responses that were excluded (orphans) may become eligible now.
        for doc in self.db.responses(unid):
            if doc.unid not in self._keys and self._selected(doc):
                self._insert(doc)
                self._rekey_descendants(doc.unid)

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, unid: str) -> bool:
        return unid in self._keys

    def entries(self) -> Iterator[_Entry]:
        """All entries in collation order (no category rows)."""
        for _, entry in self._tree.items():
            yield entry

    def all_unids(self) -> list[str]:
        """Document UNIDs in view order."""
        return [entry.unid for entry in self.entries()]

    def documents(self, as_user: str | None = None) -> Iterator[Document]:
        """Documents in view order, honouring reader fields for ``as_user``."""
        for entry in self.entries():
            doc = self.db.try_get(entry.unid)
            if doc is None:
                continue
            if as_user is None or self.db._can_read(as_user, doc):
                yield doc

    def rows(self, as_user: str | None = None) -> list:
        """Render the view: category rows interleaved with document rows."""
        category_indices = [
            index for index, column in enumerate(self.columns) if column.categorized
        ]
        n_categories = len(category_indices)
        totals_columns = [
            index for index, column in enumerate(self.columns) if column.totals
        ]
        output: list = []
        open_values: list = [object()] * n_categories  # sentinels != anything
        # First pass gathers rows; category counts/subtotals need a second
        # pass, so collect member indices per open category.
        pending: list[tuple[int, Any, int]] = []  # (output idx, value, level)

        for entry in self.entries():
            doc = self.db.try_get(entry.unid)
            if doc is not None and as_user is not None:
                if not self.db._can_read(as_user, doc):
                    continue
            # Responses (level > 0) live under their ancestor's category:
            # their own column values never open or close category groups.
            if entry.level == 0:
                for depth in range(n_categories):
                    value = entry.values[category_indices[depth]]
                    if isinstance(value, list):
                        value = value[0] if value else ""
                    if value != open_values[depth]:
                        for reset in range(depth, n_categories):
                            open_values[reset] = object()
                        open_values[depth] = value
                        pending.append((len(output), value, depth))
                        output.append(None)  # placeholder for CategoryRow
            output.append(
                DocumentRow(
                    unid=entry.unid,
                    values=entry.values,
                    level=entry.level + n_categories,
                )
            )
        # Fill in category rows with counts and subtotals.
        for position, (index, value, level) in enumerate(pending):
            end = (
                pending[position + 1][0]
                if position + 1 < len(pending)
                else len(output)
            )
            members = [
                row
                for row in output[index + 1 : end]
                if isinstance(row, DocumentRow)
            ]
            # A deeper category's members also belong to enclosing ones; for
            # level-L rows count every document row until the next category
            # at a level <= L.
            if level < n_categories - 1:
                stop = len(output)
                for later_index, _, later_level in pending[position + 1 :]:
                    if later_level <= level:
                        stop = later_index
                        break
                members = [
                    row
                    for row in output[index + 1 : stop]
                    if isinstance(row, DocumentRow)
                ]
            subtotals = {}
            for column_index in totals_columns:
                subtotal = 0
                for row in members:
                    cell = row.values[column_index]
                    if isinstance(cell, (int, float)) and not isinstance(cell, bool):
                        subtotal += cell
                subtotals[column_index] = subtotal
            output[index] = CategoryRow(
                value=value, level=level, count=len(members), subtotals=subtotals
            )
        return output

    def totals(self) -> dict[int, float]:
        """Grand totals for every totals column, keyed by column index."""
        sums: dict[int, float] = {
            index: 0
            for index, column in enumerate(self.columns)
            if column.totals
        }
        for entry in self.entries():
            for index in sums:
                cell = entry.values[index]
                if isinstance(cell, (int, float)) and not isinstance(cell, bool):
                    sums[index] += cell
        return sums

    def documents_by_key(self, value: Any) -> list[Document]:
        """Index lookup: documents whose first sort column equals ``value``.

        This is the ``GetDocumentByKey`` operation — a B+tree descent, not a
        scan (experiment E6 measures exactly this).
        """
        if not self._sorted_columns:
            raise ViewError(f"view {self.name!r} has no sorted column")
        component = self._sorted_columns[0].key_component(value)
        matches = []
        for key, entry in self._tree.range(lo=(component,)):
            first = key[0]
            if first != component:
                break
            doc = self.db.try_get(entry.unid)
            if doc is not None:
                matches.append(doc)
        return matches

    def first_by_key(self, value: Any) -> Document | None:
        """First match of :meth:`documents_by_key`, or None."""
        matches = self.documents_by_key(value)
        return matches[0] if matches else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"View({self.name!r}, {len(self)} entries, mode={self.mode})"
