"""Views: sorted, categorized, selectively-populated indexes over a database.

A view is Notes' query mechanism: a selection formula picks documents, view
columns compute display values, and sorted columns define a collation order
maintained in a B+tree index. The view index is maintained *incrementally*
from database change events (the design the paper highlights as the reason
view opens are fast), with a full-rebuild path kept for comparison
(experiment E5).
"""

from repro.views.column import SortOrder, ViewColumn, collate
from repro.views.folders import Folder
from repro.views.navigator import ViewNavigator
from repro.views.unread import UnreadTracker
from repro.views.view import CategoryRow, DocumentRow, View

__all__ = [
    "CategoryRow",
    "DocumentRow",
    "Folder",
    "SortOrder",
    "UnreadTracker",
    "View",
    "ViewColumn",
    "ViewNavigator",
    "collate",
]
