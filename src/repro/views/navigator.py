"""Cursor-style navigation over a view, like the Notes client's view pane.

A navigator materialises the row list lazily and supports first/last,
next/previous, jump-to-key and page movements — the access pattern the view
index's B+tree makes cheap (experiment E6).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ViewError
from repro.views.view import DocumentRow, View


class ViewNavigator:
    """A movable cursor over the document rows of a :class:`View`."""

    def __init__(self, view: View, as_user: str | None = None) -> None:
        self.view = view
        self.as_user = as_user
        self._rows = [
            row for row in view.rows(as_user=as_user) if isinstance(row, DocumentRow)
        ]
        self._pos = 0 if self._rows else -1

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def position(self) -> int:
        return self._pos

    @property
    def current(self) -> DocumentRow | None:
        if 0 <= self._pos < len(self._rows):
            return self._rows[self._pos]
        return None

    def first(self) -> DocumentRow | None:
        self._pos = 0 if self._rows else -1
        return self.current

    def last(self) -> DocumentRow | None:
        self._pos = len(self._rows) - 1
        return self.current

    def next(self) -> DocumentRow | None:
        if self._pos + 1 >= len(self._rows):
            return None
        self._pos += 1
        return self.current

    def previous(self) -> DocumentRow | None:
        if self._pos <= 0:
            return None
        self._pos -= 1
        return self.current

    def page(self, size: int = 20) -> list[DocumentRow]:
        """The next ``size`` rows from the cursor, advancing it."""
        if size < 1:
            raise ViewError(f"page size must be positive, got {size}")
        if self._pos < 0:
            return []
        rows = self._rows[self._pos : self._pos + size]
        self._pos = min(self._pos + size, max(len(self._rows) - 1, 0))
        return rows

    def goto_key(self, value: Any) -> DocumentRow | None:
        """Jump to the first row whose first sort-column value matches."""
        matches = self.view.documents_by_key(value)
        if not matches:
            return None
        wanted = {doc.unid for doc in matches}
        for index, row in enumerate(self._rows):
            if row.unid in wanted:
                self._pos = index
                return row
        return None

    def goto_unid(self, unid: str) -> DocumentRow | None:
        """Jump to the row showing ``unid``."""
        for index, row in enumerate(self._rows):
            if row.unid == unid:
                self._pos = index
                return row
        return None
