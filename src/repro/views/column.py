"""View columns and collation keys.

A column displays either a raw item value or a computed formula result.
Sorted columns contribute to the view's collation key; categorized columns
additionally group rows under twistie headings. Collation follows Notes
conventions: numbers sort before text, text sorts case-insensitively, and a
descending column simply inverts its key component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import total_ordering
from typing import Any

from repro.errors import ViewError
from repro.formula import Formula, compile_formula


class SortOrder(str, Enum):
    NONE = "none"
    ASCENDING = "ascending"
    DESCENDING = "descending"


@total_ordering
class Descending:
    """Wrapper inverting the sort order of one collation component."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Descending) and self.inner == other.inner

    def __lt__(self, other: "Descending") -> bool:
        if not isinstance(other, Descending):
            return NotImplemented
        return other.inner < self.inner

    def __hash__(self) -> int:
        return hash(("desc", self.inner))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Descending({self.inner!r})"


def collate(value: Any) -> tuple:
    """Normalise one display value into an orderable collation component.

    Numbers sort before text (rank 0 vs 1); text compares case-insensitively
    but keeps the original as a tie-break so "Apple" and "apple" stay
    distinct and deterministic. Multi-valued items collate on their first
    element. ``None`` (missing) sorts first.
    """
    if isinstance(value, list):
        value = value[0] if value else ""
    if value is None:
        return (-1, "")
    if isinstance(value, bool):
        return (0, int(value), "")
    if isinstance(value, (int, float)):
        return (0, value, "")
    if isinstance(value, str):
        return (1, value.lower(), value)
    raise ViewError(f"value {value!r} cannot be collated")


@dataclass
class ViewColumn:
    """One column of a view.

    Parameters
    ----------
    title:
        Column heading shown to users.
    item:
        Document item whose value the column displays. Mutually exclusive
        with ``formula``.
    formula:
        @-formula source computing the display value.
    sort:
        Whether (and how) this column participates in the collation key.
    categorized:
        Group rows by this column's value. Categorized columns must be
        sorted and must precede every merely-sorted column.
    totals:
        Accumulate a numeric total for this column (per category + grand).
    """

    title: str
    item: str | None = None
    formula: str | None = None
    sort: SortOrder = SortOrder.NONE
    categorized: bool = False
    totals: bool = False
    _compiled: Formula | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if (self.item is None) == (self.formula is None):
            raise ViewError(
                f"column {self.title!r} needs exactly one of item= or formula="
            )
        if self.categorized and self.sort == SortOrder.NONE:
            self.sort = SortOrder.ASCENDING
        if self.formula is not None:
            self._compiled = compile_formula(self.formula)

    def value_for(self, doc, db=None) -> Any:
        """Compute this column's display value for ``doc``."""
        if self.item is not None:
            return doc.get(self.item, "")
        result = self._compiled.evaluate(doc=doc, db=db)
        if len(result) == 1:
            return result[0]
        return result

    def key_component(self, value: Any):
        """The collation component this column contributes, or None."""
        if self.sort == SortOrder.NONE:
            return None
        component = collate(value)
        if self.sort == SortOrder.DESCENDING:
            return Descending(component)
        return component
