"""Slotted pages: variable-length records inside fixed-size byte pages.

Layout (little-endian), mirroring the classic textbook slotted page:

```
+--------------+-------------------------+------------------+
| header (4 B) | record data (grows ->)  | <- slot directory|
+--------------+-------------------------+------------------+
  num_slots u16        free space          4 B per slot
  data_end  u16                            (offset u16, len u16)
```

``data_end`` is the offset one past the last record byte. The slot
directory grows downward from the page tail. A deleted slot keeps its
directory entry (so slot numbers stay stable for record ids) with
``offset == TOMBSTONE``.
"""

from __future__ import annotations

import struct

from repro.errors import PageError

PAGE_SIZE = 4096
_HEADER = struct.Struct("<HH")  # num_slots, data_end
_SLOT = struct.Struct("<HH")  # offset, length
TOMBSTONE = 0xFFFF


class SlottedPage:
    """A mutable slotted page over a ``bytearray`` of ``PAGE_SIZE`` bytes."""

    def __init__(self, raw: bytearray | None = None) -> None:
        if raw is None:
            raw = bytearray(PAGE_SIZE)
            _HEADER.pack_into(raw, 0, 0, _HEADER.size)
        if len(raw) != PAGE_SIZE:
            raise PageError(f"page must be exactly {PAGE_SIZE} bytes, got {len(raw)}")
        self.raw = raw

    # -- header accessors ---------------------------------------------------

    @property
    def num_slots(self) -> int:
        return _HEADER.unpack_from(self.raw, 0)[0]

    @property
    def _data_end(self) -> int:
        return _HEADER.unpack_from(self.raw, 0)[1]

    def _set_header(self, num_slots: int, data_end: int) -> None:
        _HEADER.pack_into(self.raw, 0, num_slots, data_end)

    def _slot_entry_pos(self, slot: int) -> int:
        return PAGE_SIZE - _SLOT.size * (slot + 1)

    def _read_slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.num_slots:
            raise PageError(f"slot {slot} out of range (have {self.num_slots})")
        return _SLOT.unpack_from(self.raw, self._slot_entry_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.raw, self._slot_entry_pos(slot), offset, length)

    # -- space accounting ---------------------------------------------------

    @property
    def free_space(self) -> int:
        """Contiguous bytes available for a new record *and* its slot entry."""
        directory_start = PAGE_SIZE - _SLOT.size * self.num_slots
        gap = directory_start - self._data_end
        return max(0, gap - _SLOT.size)

    def fits(self, length: int) -> bool:
        """Whether a record of ``length`` bytes can be inserted (post-compaction)."""
        if length > self.max_record_size():
            return False
        if length <= self.free_space:
            return True
        return length <= self._reclaimable_space()

    def _reclaimable_space(self) -> int:
        live = sum(
            length
            for offset, length in (self._read_slot(s) for s in range(self.num_slots))
            if offset != TOMBSTONE
        )
        directory_start = PAGE_SIZE - _SLOT.size * self.num_slots
        return directory_start - _HEADER.size - live - _SLOT.size

    @staticmethod
    def max_record_size() -> int:
        """Largest record a completely empty page can hold."""
        return PAGE_SIZE - _HEADER.size - _SLOT.size

    # -- record operations --------------------------------------------------

    def insert(self, data: bytes) -> int:
        """Store ``data`` and return its slot number."""
        if len(data) > self.max_record_size():
            raise PageError(f"record of {len(data)} bytes exceeds page capacity")
        if len(data) > self.free_space:
            self.compact()
            if len(data) > self.free_space:
                raise PageError(
                    f"page full: need {len(data)} bytes, have {self.free_space}"
                )
        num_slots, data_end = _HEADER.unpack_from(self.raw, 0)
        # Reuse a tombstoned slot entry if one exists (keeps directory small).
        slot = next(
            (s for s in range(num_slots) if self._read_slot(s)[0] == TOMBSTONE),
            num_slots,
        )
        self.raw[data_end : data_end + len(data)] = data
        if slot == num_slots:
            num_slots += 1
        self._set_header(num_slots, data_end + len(data))
        self._write_slot(slot, data_end, len(data))
        return slot

    def get(self, slot: int) -> bytes:
        """Return the record bytes stored in ``slot``."""
        offset, length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self.raw[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone ``slot``; its bytes are reclaimed at the next compaction."""
        offset, _ = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot} already deleted")
        self._write_slot(slot, TOMBSTONE, 0)

    def update(self, slot: int, data: bytes) -> None:
        """Replace the record in ``slot`` with ``data`` (may trigger compaction)."""
        offset, length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise PageError(f"slot {slot} is deleted")
        if len(data) <= length:
            self.raw[offset : offset + len(data)] = data
            self._write_slot(slot, offset, len(data))
            return
        # Grow: tombstone then re-insert into the same slot id.
        self._write_slot(slot, TOMBSTONE, 0)
        if not self.fits(len(data)):
            self._write_slot(slot, offset, length)  # roll back
            raise PageError(f"updated record of {len(data)} bytes does not fit")
        self.compact()
        num_slots, data_end = _HEADER.unpack_from(self.raw, 0)
        self.raw[data_end : data_end + len(data)] = data
        self._set_header(num_slots, data_end + len(data))
        self._write_slot(slot, data_end, len(data))

    def slots(self) -> list[int]:
        """Slot numbers currently holding live records."""
        return [
            s for s in range(self.num_slots) if self._read_slot(s)[0] != TOMBSTONE
        ]

    def compact(self) -> None:
        """Slide live records together, reclaiming tombstoned byte ranges."""
        records = []
        for slot in range(self.num_slots):
            offset, length = self._read_slot(slot)
            if offset != TOMBSTONE:
                records.append((slot, bytes(self.raw[offset : offset + length])))
        write_at = _HEADER.size
        for slot, data in records:
            self.raw[write_at : write_at + len(data)] = data
            self._write_slot(slot, write_at, len(data))
            write_at += len(data)
        self._set_header(self.num_slots, write_at)
