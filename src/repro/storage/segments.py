"""The shared multi-segment sidecar store (LSM/Lucene-style segments).

Derived structures (the full-text index, persisted view indexes) keep
their on-disk payload as a *stack of immutable segments*: each segment is
an offset directory (``key -> (offset, length)``, one small marshal
record parsed eagerly on open) over a blob of concatenated marshal
records (fetched lazily, materialized per key on first touch). Saving a
checkpoint appends the live overlay as a **new** segment instead of
rewriting the whole structure, so close cost is O(delta); a configurable
merge policy folds segments back together — smallest adjacent pair first
— when their count or the fraction of dead entries crosses a threshold,
exactly the amortization argument of an LSM tree or Lucene's segment
merges.

Two read disciplines exist, chosen per stack:

``newest_wins=True`` (view entries, the full-text doc→terms table)
    A key's live record is the one in the newest segment containing it;
    older copies are dead weight until a fold drops them. Deletions are
    tombstones in the manifest, masking every segment.
``newest_wins=False`` (the full-text term→postings table)
    Every segment's record for a key is live data (each holds the
    postings contributed by the documents written in that segment);
    reads see all of them and the *consumer* decides which sub-entries
    still count. Folds combine pairs through a consumer callback.

The stack never owns a transaction: callers pass the engine transaction
that also carries their checkpoint meta record, so an append or a merge
commits atomically with the checkpoint describing it — a crash before
the commit leaves the previous checkpoint fully intact (the segment
battery in ``tests/test_segments_crash.py`` kills the engine at every
write point to prove it). The stack's *manifest* (segment ids,
tombstones, id counter) is a plain JSON-able dict the consumer embeds in
its own meta record for the same reason.
"""

from __future__ import annotations

import marshal
from dataclasses import dataclass
from typing import Any, Callable, Iterator

Combine = Callable[[str, Any, Any], Any]


@dataclass(frozen=True)
class MergePolicy:
    """When to fold segments back together.

    ``max_segments``
        Fold (smallest adjacent pair first) while the stack holds more
        segments than this.
    ``max_dead_ratio``
        Fold while more than this fraction of directory entries across
        all segments is dead (superseded by a newer segment or
        tombstoned). Only meaningful for ``newest_wins`` stacks.
    """

    max_segments: int = 8
    max_dead_ratio: float = 0.5


DEFAULT_POLICY = MergePolicy()

#: The ablation: every append is immediately folded into one segment, so
#: a checkpoint always rewrites the whole structure — the pre-segment
#: O(index) close cost E15 measures the stack against.
SINGLE_SEGMENT = MergePolicy(max_segments=1, max_dead_ratio=1.0)


@dataclass
class SegmentStats:
    """Per-stack counters, exposed through ``CatchUpStats.segment_stats``.

    ``segments`` / ``total_entries`` / ``dead_entries`` mirror the
    current stack state; the rest accumulate over the stack's lifetime.
    """

    segments: int = 0
    total_entries: int = 0
    dead_entries: int = 0
    appends: int = 0
    records_appended: int = 0
    merges: int = 0
    bytes_folded: int = 0

    @property
    def dead_ratio(self) -> float:
        if self.total_entries == 0:
            return 0.0
        return self.dead_entries / self.total_entries


class _Segment:
    """One immutable on-disk segment: directory + lazily-fetched blob."""

    __slots__ = ("seg_id", "directory", "blob", "cache")

    def __init__(
        self,
        seg_id: int,
        directory: dict[str, tuple[int, int]],
        blob: bytes | None,
        cache: dict[str, Any] | None = None,
    ) -> None:
        self.seg_id = seg_id
        self.directory = directory
        # None = committed earlier, fetch from the engine on first touch.
        self.blob = blob
        self.cache = cache if cache is not None else {}

    @property
    def size(self) -> int:
        """Blob length, computable from the directory without the blob."""
        return sum(length for _, length in self.directory.values())


class SegmentStack:
    """N immutable segments + tombstones behind one namespace of keys."""

    def __init__(
        self,
        engine,
        namespace: bytes,
        policy: MergePolicy | None = None,
        newest_wins: bool = True,
        stats: SegmentStats | None = None,
    ) -> None:
        self.engine = engine
        self.namespace = namespace
        self.policy = policy or DEFAULT_POLICY
        self.newest_wins = newest_wins
        self.stats = stats if stats is not None else SegmentStats()
        self._segments: list[_Segment] = []
        self._tombstones: set[str] = set()
        # key -> position (index into _segments) of its newest occurrence.
        self._newest: dict[str, int] = {}
        self._next_id = 1
        self._refresh_stats()

    # -- engine keys ------------------------------------------------------

    def _dir_key(self, seg_id: int) -> bytes:
        return self.namespace + b":dir:" + str(seg_id).encode()

    def _blob_key(self, seg_id: int) -> bytes:
        return self.namespace + b":blob:" + str(seg_id).encode()

    # -- manifest ----------------------------------------------------------

    def manifest(self) -> dict:
        """JSON-able description the consumer embeds in its meta record."""
        return {
            "segments": [segment.seg_id for segment in self._segments],
            "tombstones": sorted(self._tombstones),
            "next_id": self._next_id,
        }

    def load(self, manifest: dict) -> bool:
        """Adopt a persisted manifest: parse directories, leave blobs lazy.

        Returns False (the stack stays empty; the caller treats the
        checkpoint as absent and rebuilds) when any referenced segment
        directory is missing — a manifest that outlived its segments is
        never trusted, whatever tore it.
        """
        segments: list[_Segment] = []
        for seg_id in manifest.get("segments", ()):
            raw = self.engine.get(self._dir_key(seg_id))
            if raw is None:
                return False
            segments.append(_Segment(seg_id, marshal.loads(raw), blob=None))
        self._segments = segments
        self._tombstones = set(manifest.get("tombstones", ()))
        self._next_id = int(manifest.get("next_id", 1))
        self._rebuild_newest()
        self._refresh_stats()
        return True

    @staticmethod
    def delete_manifest(engine, txn, namespace: bytes, manifest: dict) -> None:
        """Delete every engine key a persisted manifest references,
        without constructing a stack (clears a superseded layout)."""
        for seg_id in manifest.get("segments", ()):
            for key in (
                namespace + b":dir:" + str(seg_id).encode(),
                namespace + b":blob:" + str(seg_id).encode(),
            ):
                engine.delete(txn, key)

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def get(self, key: str) -> Any:
        """Newest live record for ``key`` (newest-wins stacks), or None."""
        if key in self._tombstones:
            return None
        position = self._newest.get(key)
        if position is None:
            return None
        return self._record(self._segments[position], key)

    def position_of(self, key: str) -> int | None:
        """Index of the newest segment containing a live ``key``."""
        if key in self._tombstones:
            return None
        return self._newest.get(key)

    def records(self, key: str) -> list[tuple[int, Any]]:
        """Every segment's record for ``key``, oldest position first —
        the accumulate-stack read (each record is independently live)."""
        out = []
        for position, segment in enumerate(self._segments):
            if key in segment.directory:
                out.append((position, self._record(segment, key)))
        return out

    def __contains__(self, key: str) -> bool:
        return key in self._newest and key not in self._tombstones

    def keys(self) -> Iterator[str]:
        """Every key present in any segment, tombstoned included."""
        return iter(self._newest)

    def live_keys(self) -> Iterator[str]:
        return (key for key in self._newest if key not in self._tombstones)

    def live_count(self) -> int:
        return len(self._newest) - len(self._tombstones)

    def live_items(self) -> Iterator[tuple[str, Any]]:
        """(key, newest record) for every live key (newest-wins stacks)."""
        for key in self.live_keys():
            yield key, self._record(self._segments[self._newest[key]], key)

    def _record(self, segment: _Segment, key: str) -> Any:
        entry = segment.cache.get(key)
        if entry is None:
            start, length = segment.directory[key]
            if segment.blob is None:
                segment.blob = (
                    self.engine.get(self._blob_key(segment.seg_id)) or b""
                )
            entry = marshal.loads(segment.blob[start:start + length])
            segment.cache[key] = entry
        return entry

    # -- writes ------------------------------------------------------------

    def append(
        self, txn, records: dict[str, Any], remove: set[str] | frozenset = frozenset()
    ) -> None:
        """Write ``records`` as a new top segment inside ``txn``.

        ``remove`` tombstones keys whose record died without a successor;
        a key re-appearing in ``records`` sheds any existing tombstone
        (the new segment is now its live home). The in-memory cache is
        seeded from ``records``, so post-append reads parse nothing.
        """
        parts: list[bytes] = []
        directory: dict[str, tuple[int, int]] = {}
        offset = 0
        for key in sorted(records):
            record_bytes = marshal.dumps(records[key])
            directory[key] = (offset, len(record_bytes))
            offset += len(record_bytes)
            parts.append(record_bytes)
        seg_id = self._next_id
        self._next_id += 1
        blob = b"".join(parts)
        self.engine.put(txn, self._dir_key(seg_id), marshal.dumps(directory))
        self.engine.put(txn, self._blob_key(seg_id), blob)
        self._segments.append(
            _Segment(seg_id, directory, blob=blob, cache=dict(records))
        )
        position = len(self._segments) - 1
        for key in records:
            self._newest[key] = position
        self._tombstones -= set(records)
        # Tombstone only keys some segment still carries; a key created
        # and dropped between two checkpoints never reached disk at all.
        self._tombstones |= {
            key for key in set(remove) - set(records) if key in self._newest
        }
        self.stats.appends += 1
        self.stats.records_appended += len(records)
        self._refresh_stats()

    def maintain(
        self,
        txn,
        combine: Combine | None = None,
        mirror: Callable[[int, set[str]], None] | None = None,
    ) -> list[int]:
        """Fold until the merge policy is satisfied; returns fold indices.

        ``mirror(index, newer_keys)`` runs after each fold with the
        directory keys the pair's newer segment held *before* folding —
        a consumer replays the same folds on a sibling stack in
        positional lockstep this way (the full-text index folds its
        terms stack wherever the docs stack folds, and needs the
        pre-fold newer directory to tell which postings died).
        """
        folded: list[int] = []

        def run_fold(index: int) -> None:
            newer_keys = (
                set(self._segments[index + 1].directory)
                if index + 1 < len(self._segments)
                else set()
            )
            self.fold(txn, index, combine)
            if mirror is not None:
                mirror(index, newer_keys)
            folded.append(index)

        while len(self._segments) > 1 and self._violates_policy():
            run_fold(self._pick_fold_index())
        if (
            len(self._segments) == 1
            and self.stats.dead_entries > 0
            and self.stats.dead_ratio > self.policy.max_dead_ratio
        ):
            run_fold(0)
        return folded

    def _violates_policy(self) -> bool:
        if len(self._segments) > self.policy.max_segments:
            return True
        return (
            self.newest_wins
            and self.stats.dead_entries > 0
            and self.stats.dead_ratio > self.policy.max_dead_ratio
        )

    def _pick_fold_index(self) -> int:
        """Smallest adjacent pair first (folds must respect stack order:
        merging non-neighbours would reorder which copy is newest)."""
        sizes = [segment.size for segment in self._segments]
        best = 0
        best_cost = None
        for index in range(len(sizes) - 1):
            cost = sizes[index] + sizes[index + 1]
            if best_cost is None or cost < best_cost:
                best, best_cost = index, cost
        return best

    def fold(self, txn, index: int, combine: Combine | None = None) -> None:
        """Fold segments ``index`` and ``index + 1`` into one fresh
        segment at ``index`` (or compact ``index`` alone when it is the
        only segment), dropping dead entries.

        ``combine(key, older_record, newer_record)`` resolves keys for
        accumulate stacks (either argument may be None; returning None
        drops the key). Newest-wins stacks resolve by position and need
        no callback.
        """
        older = self._segments[index]
        newer = (
            self._segments[index + 1]
            if index + 1 < len(self._segments)
            else None
        )
        records: dict[str, Any] = {}
        keys = set(older.directory)
        if newer is not None:
            keys |= set(newer.directory)
        newer_position = index + (1 if newer is not None else 0)
        for key in keys:
            if self.newest_wins:
                if key in self._tombstones:
                    continue
                if self._newest[key] > newer_position:
                    continue  # a later segment superseded this copy
                source = (
                    newer
                    if newer is not None and key in newer.directory
                    else older
                )
                records[key] = self._record(source, key)
            else:
                if combine is None:
                    raise ValueError(
                        "accumulate stacks need a combine callback to fold"
                    )
                merged = combine(
                    key,
                    self._record(older, key) if key in older.directory else None,
                    self._record(newer, key)
                    if newer is not None and key in newer.directory
                    else None,
                )
                if merged is not None:
                    records[key] = merged
        self.stats.bytes_folded += older.size + (newer.size if newer else 0)
        for victim in (older, newer) if newer is not None else (older,):
            self.engine.delete(txn, self._dir_key(victim.seg_id))
            self.engine.delete(txn, self._blob_key(victim.seg_id))
        parts = []
        directory = {}
        offset = 0
        for key in sorted(records):
            record_bytes = marshal.dumps(records[key])
            directory[key] = (offset, len(record_bytes))
            offset += len(record_bytes)
            parts.append(record_bytes)
        seg_id = self._next_id
        self._next_id += 1
        blob = b"".join(parts)
        self.engine.put(txn, self._dir_key(seg_id), marshal.dumps(directory))
        self.engine.put(txn, self._blob_key(seg_id), blob)
        merged_segment = _Segment(seg_id, directory, blob=blob, cache=records)
        if newer is not None:
            self._segments[index:index + 2] = [merged_segment]
        else:
            self._segments[index] = merged_segment
        self._rebuild_newest()
        self._tombstones &= set(self._newest)
        self.stats.merges += 1
        self._refresh_stats()

    def delete_all(self, txn) -> None:
        """Delete every segment key (a rebuild is replacing the stack)."""
        for segment in self._segments:
            self.engine.delete(txn, self._dir_key(segment.seg_id))
            self.engine.delete(txn, self._blob_key(segment.seg_id))
        self._segments = []
        self._tombstones = set()
        self._newest = {}
        self._refresh_stats()

    # -- bookkeeping -------------------------------------------------------

    def _rebuild_newest(self) -> None:
        self._newest = {}
        for position, segment in enumerate(self._segments):
            for key in segment.directory:
                self._newest[key] = position

    def _refresh_stats(self) -> None:
        self.stats.segments = len(self._segments)
        total = sum(len(segment.directory) for segment in self._segments)
        self.stats.total_entries = total
        if self.newest_wins:
            self.stats.dead_entries = total - self.live_count()
        else:
            # Deadness lives in sub-entries the consumer understands; the
            # consumer drives this stack's folds off a newest-wins sibling.
            self.stats.dead_entries = 0
