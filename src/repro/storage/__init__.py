"""Storage substrate: pages, buffer pool, write-ahead log, B-tree, engine.

This package plays the role the NSF on-disk layer plays for Domino: it
stores variable-length note records in slotted pages behind an LRU buffer
pool, makes committed updates durable through a write-ahead log with
checkpoints and crash recovery, and provides the ordered index structure
(B+tree) that backs note tables and view indexes.
"""

from repro.storage.btree import BPlusTree
from repro.storage.bufferpool import BufferPool
from repro.storage.engine import StorageEngine, Transaction
from repro.storage.pagedfile import PagedFile
from repro.storage.pages import PAGE_SIZE, SlottedPage
from repro.storage.segments import (
    DEFAULT_POLICY,
    SINGLE_SEGMENT,
    MergePolicy,
    SegmentStack,
    SegmentStats,
)
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

__all__ = [
    "BPlusTree",
    "BufferPool",
    "DEFAULT_POLICY",
    "LogRecord",
    "MergePolicy",
    "PAGE_SIZE",
    "PagedFile",
    "RecordType",
    "SINGLE_SEGMENT",
    "SegmentStack",
    "SegmentStats",
    "SlottedPage",
    "StorageEngine",
    "Transaction",
    "WriteAheadLog",
]
