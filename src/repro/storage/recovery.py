"""Crash recovery: replay the write-ahead log onto the page store.

The engine uses a *no-steal, no-force* discipline for transaction data:
uncommitted writes never reach the heap, and committed writes are not forced
at commit (the WAL record is). Recovery is therefore redo-only, in two
passes over the log — the standard simplification of ARIES when undo is
unnecessary:

1. **Analysis** — scan the log and collect the set of committed
   transaction ids (a transaction with no COMMIT record lost the race with
   the crash and is ignored).
2. **Redo** — re-apply the PUT/DELETE records of committed transactions in
   log order. Replay is idempotent at the key/value level: re-applying a PUT
   stores the same value (possibly at a new heap location) and re-applying a
   DELETE of an absent key is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.wal import RecordType, WriteAheadLog


@dataclass
class RecoveryReport:
    """What a recovery pass saw and did — recorded for experiment E7."""

    records_scanned: int = 0
    committed_txns: int = 0
    losers: int = 0
    puts_replayed: int = 0
    deletes_replayed: int = 0
    loser_txn_ids: list[int] = field(default_factory=list)

    @property
    def ops_replayed(self) -> int:
        return self.puts_replayed + self.deletes_replayed


def analyze(wal: WriteAheadLog, from_lsn: int = 0) -> tuple[set[int], RecoveryReport]:
    """Pass 1: find committed transactions; build a report skeleton."""
    report = RecoveryReport()
    committed: set[int] = set()
    seen: set[int] = set()
    for _, record in wal.records(from_lsn):
        report.records_scanned += 1
        if record.type == RecordType.BEGIN:
            seen.add(record.txn_id)
        elif record.type == RecordType.COMMIT:
            committed.add(record.txn_id)
        elif record.type == RecordType.ABORT:
            seen.discard(record.txn_id)
    report.committed_txns = len(committed)
    losers = seen - committed
    report.losers = len(losers)
    report.loser_txn_ids = sorted(losers)
    return committed, report


def redo(engine, wal: WriteAheadLog, from_lsn: int = 0) -> RecoveryReport:
    """Pass 1 + 2: replay committed operations into ``engine``.

    ``engine`` is a :class:`repro.storage.engine.StorageEngine`; replay uses
    its internal apply hooks so the heap, index and free map stay coherent.
    """
    committed, report = analyze(wal, from_lsn)
    for _, record in wal.records(from_lsn):
        if record.txn_id not in committed:
            continue
        if record.type == RecordType.PUT:
            engine._apply_put(record.key, record.after)
            report.puts_replayed += 1
        elif record.type == RecordType.DELETE:
            engine._apply_delete(record.key, missing_ok=True)
            report.deletes_replayed += 1
    return report
