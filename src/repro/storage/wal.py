"""Write-ahead log: durable, CRC-guarded, replayable operation records.

The engine logs logical operations (PUT/DELETE with before- and after-images)
plus transaction control records. The LSN of a record is its byte offset in
the log file, so LSNs are totally ordered and "flush up to LSN" is a plain
file flush. A torn final record (partial write at crash) is detected by the
length/CRC envelope and ignored on replay, exactly like the tail-scan in
ARIES-style recovery.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

from repro.errors import WalError

_ENVELOPE = struct.Struct("<II")  # payload length, crc32(payload)
_FIXED = struct.Struct("<BQ")  # record type, txn id
_LEN = struct.Struct("<I")


class RecordType(IntEnum):
    """Kinds of log record."""

    BEGIN = 1
    PUT = 2
    DELETE = 3
    COMMIT = 4
    ABORT = 5
    CHECKPOINT = 6


@dataclass(frozen=True)
class LogRecord:
    """One logical log record.

    ``before``/``after`` are value images: ``before`` enables undo-style
    ablations and debugging, ``after`` drives redo. Control records carry
    empty keys and images.
    """

    type: RecordType
    txn_id: int
    key: bytes = b""
    before: bytes = b""
    after: bytes = b""

    def encode(self) -> bytes:
        parts = [
            _FIXED.pack(int(self.type), self.txn_id),
            _LEN.pack(len(self.key)),
            self.key,
            _LEN.pack(len(self.before)),
            self.before,
            _LEN.pack(len(self.after)),
            self.after,
        ]
        return b"".join(parts)

    @classmethod
    def decode(cls, payload: bytes) -> "LogRecord":
        rtype, txn_id = _FIXED.unpack_from(payload, 0)
        pos = _FIXED.size
        fields = []
        for _ in range(3):
            (length,) = _LEN.unpack_from(payload, pos)
            pos += _LEN.size
            fields.append(payload[pos : pos + length])
            pos += length
        key, before, after = fields
        return cls(RecordType(rtype), txn_id, key, before, after)


class WriteAheadLog:
    """Appendable, replayable log file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "a+b")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()
        self._flushed = self._end
        self.appends = 0
        self.flushes = 0

    # -- writing --------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Append ``record``; returns its LSN. Not yet durable until flush."""
        payload = record.encode()
        lsn = self._end
        self._file.write(_ENVELOPE.pack(len(payload), zlib.crc32(payload)))
        self._file.write(payload)
        self._end += _ENVELOPE.size + len(payload)
        self.appends += 1
        return lsn

    def flush(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._flushed == self._end:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._flushed = self._end
        self.flushes += 1

    @property
    def end_lsn(self) -> int:
        """LSN one past the last appended record."""
        return self._end

    @property
    def flushed_lsn(self) -> int:
        return self._flushed

    def truncate(self) -> None:
        """Discard all records (used after a sharp checkpoint)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._end = 0
        self._flushed = 0

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()

    def abandon(self) -> None:
        """Crash simulation: discard appended-but-unflushed records.

        A real crash loses whatever was not fsynced; we model that by
        truncating the file back to the flushed LSN before closing.
        """
        if self._file.closed:
            return
        self._file.flush()  # move Python's buffer to the OS file first
        self._file.truncate(self._flushed)
        self._file.close()

    # -- reading --------------------------------------------------------

    def records(self, from_lsn: int = 0) -> Iterator[tuple[int, LogRecord]]:
        """Yield ``(lsn, record)`` pairs starting at ``from_lsn``.

        Stops silently at a torn or corrupt tail (the crash case); raises
        :class:`WalError` for corruption *before* the tail.
        """
        self._file.flush()
        with open(self.path, "rb") as reader:
            reader.seek(from_lsn)
            pos = from_lsn
            while True:
                envelope = reader.read(_ENVELOPE.size)
                if len(envelope) < _ENVELOPE.size:
                    return  # clean end or torn envelope
                length, crc = _ENVELOPE.unpack(envelope)
                payload = reader.read(length)
                if len(payload) < length:
                    return  # torn payload at the tail
                if zlib.crc32(payload) != crc:
                    remaining = reader.read(1)
                    if remaining:
                        raise WalError(f"CRC mismatch mid-log at lsn {pos}")
                    return  # corrupt tail record: treat as torn
                yield pos, LogRecord.decode(payload)
                pos += _ENVELOPE.size + length
