"""A file of fixed-size pages with a small metadata header page.

Page 0 holds the container magic and the allocated-page count; data pages
are numbered from 1. The paged file knows nothing about what pages contain —
the engine layers slotted pages and indexes on top.
"""

from __future__ import annotations

import os
import struct

from repro.errors import StorageError
from repro.storage.pages import PAGE_SIZE

_MAGIC = b"REPRONSF"
_META = struct.Struct("<8sI")  # magic, page_count


class PagedFile:
    """Random-access page container backed by one operating-system file."""

    def __init__(self, path: str) -> None:
        self.path = path
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        if exists and os.path.getsize(path) >= PAGE_SIZE:
            header = self._read_raw(0)
            magic, count = _META.unpack_from(header, 0)
            if magic != _MAGIC:
                raise StorageError(f"{path} is not a repro page file")
            self._page_count = count
        else:
            self._page_count = 0
            self._write_meta()
        # Random-page-write counter: the input to modeled-disk cost
        # comparisons (a page write is a seek on 1999 hardware; the file
        # here may live on tmpfs where seeks are invisible).
        self.page_writes = 0
        self.syncs = 0

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- page operations --------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of allocated data pages (page ids run 1..page_count)."""
        return self._page_count

    def allocate(self) -> int:
        """Extend the file by one zeroed page and return its page id."""
        self._page_count += 1
        page_id = self._page_count
        self._write_raw(page_id, bytes(PAGE_SIZE))
        self._write_meta()
        return page_id

    def read(self, page_id: int) -> bytearray:
        """Read data page ``page_id`` into a fresh bytearray."""
        self._check(page_id)
        return bytearray(self._read_raw(page_id))

    def write(self, page_id: int, data: bytes | bytearray) -> None:
        """Write ``data`` (exactly one page) to data page ``page_id``."""
        self._check(page_id)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page write must be {PAGE_SIZE} bytes")
        self.page_writes += 1
        self._write_raw(page_id, data)

    def sync(self) -> None:
        """Flush OS buffers so pages survive a process crash."""
        self.syncs += 1
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- internals ----------------------------------------------------------

    def _check(self, page_id: int) -> None:
        if self._file.closed:
            raise StorageError("paged file is closed")
        if not 1 <= page_id <= self._page_count:
            raise StorageError(
                f"page id {page_id} out of range 1..{self._page_count}"
            )

    def _read_raw(self, page_id: int) -> bytes:
        self._file.seek(page_id * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_id}")
        return data

    def _write_raw(self, page_id: int, data: bytes | bytearray) -> None:
        self._file.seek(page_id * PAGE_SIZE)
        self._file.write(data)

    def _write_meta(self) -> None:
        header = bytearray(PAGE_SIZE)
        _META.pack_into(header, 0, _MAGIC, self._page_count)
        self._write_raw(0, header)
