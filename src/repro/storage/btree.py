"""An order-N B+tree with full delete rebalancing and range scans.

This is the ordered index structure behind the note table (UNID order) and
every view index (collation-key order). It is deliberately a textbook
B+tree — leaf chaining for range scans, borrow/merge on underflow — so the
log-N navigation cost the paper attributes to view indexes is structural,
not an artifact of Python dict behaviour.

Keys must be mutually comparable; values are arbitrary. Keys are unique:
inserting an existing key replaces its value (callers that need duplicate
collation keys append a unique tie-breaker such as the note UNID).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.errors import BTreeError


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        # len(children) == len(keys) + 1; keys[i] is the smallest key
        # reachable through children[i + 1].
        self.children: list[_Node] = []


class BPlusTree:
    """In-memory B+tree mapping unique keys to values."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise BTreeError(f"order must be >= 4, got {order}")
        self.order = order
        self._root: _Node = _Leaf()
        self._size = 0
        # Structural counters for the E6 experiment (node touches per op).
        self.node_reads = 0
        self.node_splits = 0
        self.node_merges = 0

    # -- basic protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __iter__(self) -> Iterator[Any]:
        return (key for key, _ in self.items())

    # -- lookup ---------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self.node_reads += 1
            node = node.children[bisect_right(node.keys, key)]
        self.node_reads += 1
        return node  # type: ignore[return-value]

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in ascending key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: _Leaf | None = node  # type: ignore[assignment]
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with lo <= key <= hi (bounds optional)."""
        if lo is None:
            node = self._root
            while isinstance(node, _Internal):
                node = node.children[0]
            leaf: _Leaf = node  # type: ignore[assignment]
            index = 0
        else:
            leaf = self._find_leaf(lo)
            index = bisect_left(leaf.keys, lo)
            if not include_lo:
                while index < len(leaf.keys) and leaf.keys[index] == lo:
                    index += 1
        current: _Leaf | None = leaf
        while current is not None:
            while index < len(current.keys):
                key = current.keys[index]
                if hi is not None:
                    if key > hi or (not include_hi and key == hi):
                        return
                yield key, current.values[index]
                index += 1
            current = current.next
            index = 0

    def min_key(self) -> Any:
        """Smallest key, or None for an empty tree."""
        for key, _ in self.items():
            return key
        return None

    # -- bulk load --------------------------------------------------------

    def bulk_load(self, pairs: list[tuple[Any, Any]]) -> None:
        """Build the tree from ``pairs`` sorted by unique key.

        O(n): leaves are written directly at a 2/3 fill factor and internal
        levels assembled bottom-up — the classic index bulk load. Only
        valid on an empty tree; ordering and uniqueness are verified.
        """
        if self._size:
            raise BTreeError("bulk_load requires an empty tree")
        if not pairs:
            return
        for (a, _), (b, __) in zip(pairs, pairs[1:]):
            if not a < b:
                raise BTreeError("bulk_load needs strictly ascending keys")
        fill = max((self.order * 2) // 3, self._min_fill, 2)
        chunks = [pairs[i : i + fill] for i in range(0, len(pairs), fill)]
        if len(chunks) > 1 and len(chunks[-1]) < self._min_fill:
            # Fix the underfull tail: merge with its neighbour when the
            # pair fits one node, otherwise split the pair evenly (each
            # half is then >= order//2).
            combined = chunks[-2] + chunks[-1]
            if len(combined) <= self.order:
                chunks[-2:] = [combined]
            else:
                half = (len(combined) + 1) // 2
                chunks[-2:] = [combined[:half], combined[half:]]
        leaves: list[_Leaf] = []
        for chunk in chunks:
            leaf = _Leaf()
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        self._size = len(pairs)
        level: list[_Node] = list(leaves)
        min_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            group = fill + 1  # children per internal node
            next_level: list[_Node] = []
            next_min_keys: list[Any] = []
            groups = [
                (level[i : i + group], min_keys[i : i + group])
                for i in range(0, len(level), group)
            ]
            if len(groups) > 1 and len(groups[-1][0]) < self._min_fill:
                merged_nodes = groups[-2][0] + groups[-1][0]
                merged_mins = groups[-2][1] + groups[-1][1]
                if len(merged_nodes) <= self.order:
                    groups[-2:] = [(merged_nodes, merged_mins)]
                else:
                    half = (len(merged_nodes) + 1) // 2
                    groups[-2:] = [
                        (merged_nodes[:half], merged_mins[:half]),
                        (merged_nodes[half:], merged_mins[half:]),
                    ]
            for children, child_mins in groups:
                node = _Internal()
                node.children = list(children)
                node.keys = list(child_mins[1:])
                next_level.append(node)
                next_min_keys.append(child_mins[0])
            level = next_level
            min_keys = next_min_keys
        self._root = level[0]

    # -- insert ---------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert or replace ``key``."""
        split = self._insert(self._root, key, value)
        if split is not None:
            middle_key, right = split
            new_root = _Internal()
            new_root.keys = [middle_key]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key: Any, value: Any):
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        internal: _Internal = node  # type: ignore[assignment]
        child_index = bisect_right(internal.keys, key)
        split = self._insert(internal.children[child_index], key, value)
        if split is None:
            return None
        middle_key, right = split
        internal.keys.insert(child_index, middle_key)
        internal.children.insert(child_index + 1, right)
        if len(internal.children) > self.order:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _Leaf):
        self.node_splits += 1
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        self.node_splits += 1
        middle = len(node.keys) // 2
        push_up = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return push_up, right

    # -- delete ---------------------------------------------------------

    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value; KeyError if absent."""
        value = self._delete(self._root, key)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return value

    @property
    def _min_fill(self) -> int:
        return self.order // 2

    def _delete(self, node: _Node, key: Any) -> Any:
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyError(key)
            node.keys.pop(index)
            value = node.values.pop(index)
            self._size -= 1
            return value
        internal: _Internal = node  # type: ignore[assignment]
        child_index = bisect_right(internal.keys, key)
        value = self._delete(internal.children[child_index], key)
        self._rebalance(internal, child_index)
        return value

    def _rebalance(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        if self._fill(child) >= self._min_fill:
            return
        left = parent.children[child_index - 1] if child_index > 0 else None
        right = (
            parent.children[child_index + 1]
            if child_index + 1 < len(parent.children)
            else None
        )
        if left is not None and self._fill(left) > self._min_fill:
            self._borrow_from_left(parent, child_index)
        elif right is not None and self._fill(right) > self._min_fill:
            self._borrow_from_right(parent, child_index)
        elif left is not None:
            self._merge(parent, child_index - 1)
        elif right is not None:
            self._merge(parent, child_index)

    @staticmethod
    def _fill(node: _Node) -> int:
        if isinstance(node, _Leaf):
            return len(node.keys)
        return len(node.children)  # type: ignore[attr-defined]

    def _borrow_from_left(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        left = parent.children[child_index - 1]
        if isinstance(child, _Leaf) and isinstance(left, _Leaf):
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[child_index - 1] = child.keys[0]
        else:
            assert isinstance(child, _Internal) and isinstance(left, _Internal)
            child.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        right = parent.children[child_index + 1]
        if isinstance(child, _Leaf) and isinstance(right, _Leaf):
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            assert isinstance(child, _Internal) and isinstance(right, _Internal)
            child.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_index: int) -> None:
        self.node_merges += 1
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if isinstance(left, _Leaf) and isinstance(right, _Leaf):
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # -- diagnostics ------------------------------------------------------

    def height(self) -> int:
        """Number of levels from root to leaf (1 for a leaf-only tree)."""
        node = self._root
        levels = 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels

    def validate(self) -> None:
        """Check structural invariants; raises :class:`BTreeError` on breakage.

        Used by the property-based tests: key ordering within and across
        nodes, separator correctness, fill factors, and leaf-chain/size
        agreement.
        """
        leaf_count = self._validate_node(self._root, None, None, is_root=True)
        if leaf_count != self._size:
            raise BTreeError(f"size mismatch: chain has {leaf_count}, size={self._size}")

    def _validate_node(self, node: _Node, lo: Any, hi: Any, is_root: bool) -> int:
        keys = node.keys
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise BTreeError(f"unsorted keys in node: {keys!r}")
        if lo is not None and keys and keys[0] < lo:
            raise BTreeError(f"key {keys[0]!r} below lower bound {lo!r}")
        if hi is not None and keys and keys[-1] >= hi:
            raise BTreeError(f"key {keys[-1]!r} not below upper bound {hi!r}")
        if isinstance(node, _Leaf):
            if not is_root and len(keys) < self._min_fill:
                raise BTreeError(f"leaf underfull: {len(keys)} < {self._min_fill}")
            if len(keys) != len(node.values):
                raise BTreeError("leaf keys/values length mismatch")
            return len(keys)
        internal: _Internal = node  # type: ignore[assignment]
        if len(internal.children) != len(keys) + 1:
            raise BTreeError("internal children/keys arity mismatch")
        if not is_root and len(internal.children) < self._min_fill:
            raise BTreeError("internal node underfull")
        total = 0
        bounds = [lo, *keys, hi]
        for child, (child_lo, child_hi) in zip(
            internal.children, zip(bounds[:-1], bounds[1:])
        ):
            total += self._validate_node(child, child_lo, child_hi, is_root=False)
        return total
