"""LRU buffer pool between the engine and the paged file.

Pages are pinned while in use and unpinned with a dirty flag; eviction picks
the least recently used unpinned frame. Before a dirty page is evicted or
flushed the pool invokes the ``before_write`` hook, which the engine wires to
"flush the WAL" so the write-ahead rule holds.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.errors import BufferPoolError
from repro.storage.pagedfile import PagedFile
from repro.storage.pages import SlottedPage


class _Frame:
    __slots__ = ("page", "pins", "dirty")

    def __init__(self, page: SlottedPage) -> None:
        self.page = page
        self.pins = 0
        self.dirty = False


class BufferPool:
    """Caches :class:`SlottedPage` objects for a :class:`PagedFile`."""

    def __init__(
        self,
        file: PagedFile,
        capacity: int = 128,
        before_write: Callable[[], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool needs capacity >= 1")
        self.file = file
        self.capacity = capacity
        self.before_write = before_write
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._frames)

    def fetch(self, page_id: int) -> SlottedPage:
        """Pin and return the page; loads it from the file on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(page_id)
        else:
            self.misses += 1
            self._ensure_room()
            frame = _Frame(SlottedPage(self.file.read(page_id)))
            self._frames[page_id] = frame
        frame.pins += 1
        return frame.page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty`` marks the page as needing write-back."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pins == 0:
            raise BufferPoolError(f"unpin of page {page_id} that is not pinned")
        frame.pins -= 1
        frame.dirty = frame.dirty or dirty

    def new_page(self) -> tuple[int, SlottedPage]:
        """Allocate a fresh page in the file and return it pinned."""
        page_id = self.file.allocate()
        self._ensure_room()
        frame = _Frame(SlottedPage())
        frame.dirty = True
        frame.pins = 1
        self._frames[page_id] = frame
        return page_id, frame.page

    def flush(self, page_id: int) -> None:
        """Write one dirty page back to the file (no-op if clean/absent)."""
        frame = self._frames.get(page_id)
        if frame is None or not frame.dirty:
            return
        if self.before_write is not None:
            self.before_write()
        self.file.write(page_id, frame.page.raw)
        frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty page (used by checkpoints and close)."""
        for page_id in list(self._frames):
            self.flush(page_id)
        self.file.sync()

    def drop_all(self) -> None:
        """Discard every frame *without* writing back — crash simulation."""
        self._frames.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _ensure_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = next(
                (pid for pid, f in self._frames.items() if f.pins == 0), None
            )
            if victim_id is None:
                raise BufferPoolError("all frames pinned; cannot evict")
            self.flush(victim_id)
            del self._frames[victim_id]
            self.evictions += 1
