"""The transactional key-value storage engine.

This is the layer the NSF file plays for a Domino server: a durable store of
variable-length records (serialized notes) addressed by key (the note UNID),
with transactional updates, write-ahead logging, sharp checkpoints, and crash
recovery. Values larger than a page are chunked across heap pages; an
in-memory index maps each key to its chunk locations and is persisted at
checkpoint time.

Durability modes (experiment E7 compares them):

``"wal"``
    Commit appends a COMMIT record and flushes the log; heap pages are
    written back lazily (no-force). Crash recovery replays the log.
``"force"``
    No log. Commit applies the write-set and forces every dirty page to
    disk — the pre-R5 Notes discipline the paper contrasts with logging.
``"none"``
    No durability at all (fastest; for pure in-memory experiments).
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from repro.errors import PageError, StorageError, WalError
from repro.storage import recovery as recovery_mod
from repro.storage.bufferpool import BufferPool
from repro.storage.pagedfile import PagedFile
from repro.storage.pages import SlottedPage
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

_CHUNK_SIZE = SlottedPage.max_record_size() - 8

# Free-space size classes for insert placement: bucket k holds pages with
# roughly k * _BUCKET_GRAIN free bytes. Finding a page for a chunk means
# probing at most _N_BUCKETS sets rather than every page in the file.
_BUCKET_GRAIN = 256
_N_BUCKETS = _CHUNK_SIZE // _BUCKET_GRAIN + 2

_DURABILITY_MODES = ("wal", "force", "none")


class Transaction:
    """A unit of atomic update against one :class:`StorageEngine`."""

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        # key -> bytes (put) or None (delete); insertion order preserved.
        self.writes: dict[bytes, bytes | None] = {}
        self.state = "active"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transaction(id={self.txn_id}, writes={len(self.writes)}, {self.state})"


class StorageEngine:
    """Durable transactional record store over slotted pages + WAL."""

    def __init__(
        self,
        path: str,
        pool_size: int = 256,
        durability: str = "wal",
    ) -> None:
        if durability not in _DURABILITY_MODES:
            raise StorageError(f"durability must be one of {_DURABILITY_MODES}")
        self.path = path
        self.durability = durability
        self._pages = PagedFile(path + ".pages")
        self._wal = (
            WriteAheadLog(path + ".wal") if durability == "wal" else None
        )
        self._pool = BufferPool(
            self._pages,
            capacity=pool_size,
            before_write=self._wal.flush if self._wal else None,
        )
        # key -> list of (page_id, slot) chunk locations, committed state only.
        self._index: dict[bytes, list[tuple[int, int]]] = {}
        # page_id -> last known free byte estimate, for insert placement.
        self._free: dict[int, int] = {}
        # The free map bucketed by free-space size class, so insert
        # placement probes a handful of sets instead of scanning every
        # page in the file (derived from _free; rebuilt on load).
        self._free_buckets: list[set[int]] = [
            set() for _ in range(_N_BUCKETS)
        ]
        self._next_txn = 1
        self._open = True
        self.last_recovery: recovery_mod.RecoveryReport | None = None
        self._load_checkpoint()
        if self._wal is not None:
            self.last_recovery = recovery_mod.redo(self, self._wal)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Checkpoint (when durable) and release file handles."""
        if not self._open:
            return
        if self.durability != "none":
            self.checkpoint()
        if self._wal is not None:
            self._wal.close()
        self._pool.flush_all()
        self._pages.close()
        self._open = False

    def simulate_crash(self) -> None:
        """Drop all volatile state without flushing — then reopen to recover.

        Unflushed WAL bytes are discarded (they were never fsynced, so a real
        crash would lose them); dirty heap pages in the pool are dropped.
        """
        if self._wal is not None:
            self._wal.abandon()
        self._pool.drop_all()
        self._pages.close()
        self._open = False

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transactions -----------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction."""
        self._require_open()
        txn = Transaction(self._next_txn)
        self._next_txn += 1
        if self._wal is not None:
            self._wal.append(LogRecord(RecordType.BEGIN, txn.txn_id))
        return txn

    def put(self, txn: Transaction, key: bytes, value: bytes) -> None:
        """Buffer a write of ``key`` in ``txn`` (visible to ``txn`` only)."""
        self._require_active(txn)
        if self._wal is not None:
            before = self._read_committed(key) or b""
            self._wal.append(
                LogRecord(RecordType.PUT, txn.txn_id, key, before, value)
            )
        txn.writes[key] = value

    def delete(self, txn: Transaction, key: bytes) -> None:
        """Buffer a delete of ``key`` in ``txn``."""
        self._require_active(txn)
        if self._wal is not None:
            before = self._read_committed(key) or b""
            self._wal.append(LogRecord(RecordType.DELETE, txn.txn_id, key, before))
        txn.writes[key] = None

    def commit(self, txn: Transaction) -> None:
        """Make ``txn``'s writes durable and visible."""
        self._require_active(txn)
        if self._wal is not None:
            self._wal.append(LogRecord(RecordType.COMMIT, txn.txn_id))
            self._wal.flush()
        for key, value in txn.writes.items():
            if value is None:
                self._apply_delete(key, missing_ok=True)
            else:
                self._apply_put(key, value)
        if self.durability == "force":
            self._pool.flush_all()
        txn.state = "committed"

    def abort(self, txn: Transaction) -> None:
        """Discard ``txn``'s buffered writes."""
        self._require_active(txn)
        if self._wal is not None:
            self._wal.append(LogRecord(RecordType.ABORT, txn.txn_id))
        txn.writes.clear()
        txn.state = "aborted"

    # -- autocommit convenience ---------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        """Single-write transaction: put + commit."""
        txn = self.begin()
        self.put(txn, key, value)
        self.commit(txn)

    def remove(self, key: bytes) -> None:
        """Single-delete transaction: delete + commit."""
        txn = self.begin()
        self.delete(txn, key)
        self.commit(txn)

    # -- reads ------------------------------------------------------------

    def get(self, key: bytes, txn: Transaction | None = None) -> bytes | None:
        """Committed value of ``key`` (plus ``txn``'s own uncommitted writes)."""
        self._require_open()
        if txn is not None and key in txn.writes:
            return txn.writes[key]
        return self._read_committed(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._index

    def keys(self, prefix: bytes | None = None) -> Iterator[bytes]:
        """Committed keys (unordered), optionally only those under ``prefix``.

        The index is in memory, so prefix filtering here saves callers
        from fetching and decoding records they don't want — a database
        open reads note records without touching view sidecars or
        full-text checkpoint blobs (which aren't even JSON).
        """
        if prefix is None:
            return iter(list(self._index))
        return iter([key for key in self._index if key.startswith(prefix)])

    def __len__(self) -> int:
        return len(self._index)

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> None:
        """Sharp checkpoint: flush heap, persist the index, truncate the log."""
        self._require_open()
        self._pool.flush_all()
        snapshot = {
            "index": {key.hex(): locs for key, locs in self._index.items()},
            "free": self._free,
            "next_txn": self._next_txn,
        }
        tmp = self.path + ".chk.tmp"
        with open(tmp, "w", encoding="utf-8") as out:
            json.dump(snapshot, out)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self.path + ".chk")
        if self._wal is not None:
            self._wal.truncate()

    def _load_checkpoint(self) -> None:
        chk_path = self.path + ".chk"
        if not os.path.exists(chk_path):
            return
        with open(chk_path, encoding="utf-8") as source:
            snapshot = json.load(source)
        self._index = {
            bytes.fromhex(key): [tuple(loc) for loc in locs]
            for key, locs in snapshot["index"].items()
        }
        self._free = {int(page): free for page, free in snapshot["free"].items()}
        self._rebuild_free_buckets()
        self._next_txn = snapshot.get("next_txn", 1)

    # -- heap operations (committed state) -------------------------------

    def _read_committed(self, key: bytes) -> bytes | None:
        locations = self._index.get(key)
        if locations is None:
            return None
        chunks = []
        for page_id, slot in locations:
            page = self._pool.fetch(page_id)
            try:
                chunks.append(page.get(slot))
            finally:
                self._pool.unpin(page_id)
        return b"".join(chunks)

    def _apply_put(self, key: bytes, value: bytes) -> None:
        """Write ``value`` into the heap and point the index at it."""
        old = self._index.pop(key, None)
        if old is not None:
            self._free_locations(old)
        # max(len, 1) so a zero-length value still gets one (empty) chunk
        # and therefore exists in the heap.
        locations = [
            self._insert_chunk(value[start : start + _CHUNK_SIZE])
            for start in range(0, max(len(value), 1), _CHUNK_SIZE)
        ]
        self._index[key] = locations

    def _apply_delete(self, key: bytes, missing_ok: bool = False) -> None:
        locations = self._index.pop(key, None)
        if locations is None:
            if missing_ok:
                return
            raise StorageError(f"delete of unknown key {key!r}")
        self._free_locations(locations)

    def _free_locations(self, locations: list[tuple[int, int]]) -> None:
        for page_id, slot in locations:
            page = self._pool.fetch(page_id)
            dirty = True
            try:
                page.delete(slot)
                self._set_free(page_id, page.free_space)
            except PageError:
                # Replay after a mid-apply crash can see slots that were
                # already freed on disk; a stale free is harmless.
                dirty = False
            finally:
                self._pool.unpin(page_id, dirty=dirty)

    def _insert_chunk(self, chunk: bytes) -> tuple[int, int]:
        need = len(chunk)
        # Probe a bounded number of pages believed to have room, drawn
        # from the size-class buckets that could fit the chunk (smallest
        # adequate class first, so big holes stay available for big
        # chunks). The free map is an estimate, so verify with the page
        # itself. Cost is O(buckets + probes), however many pages exist.
        candidates: list[int] = []
        for bucket in range(self._bucket(need + 8), _N_BUCKETS):
            for page_id in self._free_buckets[bucket]:
                candidates.append(page_id)
                if len(candidates) >= 8:
                    break
            if len(candidates) >= 8:
                break
        for page_id in candidates:
            page = self._pool.fetch(page_id)
            try:
                self._set_free(page_id, page.free_space)
                if page.fits(need):
                    slot = page.insert(chunk)
                    self._set_free(page_id, page.free_space)
                    return (page_id, slot)
            finally:
                self._pool.unpin(page_id, dirty=True)
        page_id, page = self._pool.new_page()
        try:
            slot = page.insert(chunk)
            self._set_free(page_id, page.free_space)
        finally:
            self._pool.unpin(page_id, dirty=True)
        return (page_id, slot)

    def _set_free(self, page_id: int, free: int) -> None:
        """Update a page's free estimate and its size-class bucket."""
        old = self._free.get(page_id)
        if old is not None:
            self._free_buckets[self._bucket(old)].discard(page_id)
        self._free[page_id] = free
        self._free_buckets[self._bucket(free)].add(page_id)

    def _rebuild_free_buckets(self) -> None:
        self._free_buckets = [set() for _ in range(_N_BUCKETS)]
        for page_id, free in self._free.items():
            self._free_buckets[self._bucket(free)].add(page_id)

    @staticmethod
    def _bucket(free: int) -> int:
        return min(free // _BUCKET_GRAIN, _N_BUCKETS - 1)

    # -- guards -----------------------------------------------------------

    def _require_open(self) -> None:
        if not self._open:
            raise StorageError("storage engine is closed")

    def _require_active(self, txn: Transaction) -> None:
        self._require_open()
        if txn.state != "active":
            raise WalError(f"transaction {txn.txn_id} is {txn.state}")
