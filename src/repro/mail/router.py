"""The mail router: hop-by-hop delivery over mail connections.

Each server owns a ``mail.box`` queue database and hosts the mail files of
its users. ``submit`` drops a memo in the origin server's queue;
``route_step`` advances every queued message one hop along the shortest
path of mail connections (computed with networkx); ``deliver_all`` loops
until quiescence. Messages collect a ``$RouteTrace`` and get a
``DeliveredDate``; unknown recipients bounce a non-delivery report back to
the sender.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import LinkFailure, MailError
from repro.core.database import NotesDatabase
from repro.mail.directory import Directory
from repro.mail.message import make_nondelivery_report, recipients_of
from repro.replication.network import SimulatedNetwork


def _wire_size(items: dict) -> int:
    """Approximate on-the-wire bytes of a memo's items."""
    total = 64
    for name, value in items.items():
        total += len(name) + 8
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, list):
            total += sum(len(v) if isinstance(v, str) else 8 for v in value)
        else:
            total += 8
    return total


@dataclass
class MailStats:
    """Router counters (experiment E10 reads these)."""

    submitted: int = 0
    delivered: int = 0
    bounced: int = 0
    held: int = 0
    transfers: int = 0
    transfer_failures: int = 0  # hops that died on the wire (faults)
    retries: int = 0  # routing attempts on previously-held memos
    dead_lettered: int = 0  # memos filed in mail.dead after max attempts
    hop_counts: list[int] = field(default_factory=list)
    delivery_latency: list[float] = field(default_factory=list)

    @property
    def mean_hops(self) -> float:
        return (
            sum(self.hop_counts) / len(self.hop_counts) if self.hop_counts else 0.0
        )


class MailRouter:
    """Routes memos between servers of a :class:`SimulatedNetwork`.

    Store-and-forward: a memo that cannot reach its next hop right now is
    *held* in the mailbox and retried on later routing passes. A hop that
    fails on the wire (an injected drop/flap, a crashed next hop) backs
    off exponentially — the held memo carries a ``$RetryAfter`` time and
    is not re-attempted before it — while a hop with *no route at all*
    stays cheap to re-check every pass. After ``max_attempts`` failures
    the memo is filed in the server's ``mail.dead`` dead-letter database
    with a delivery-failure report and a non-delivery report goes back to
    the sender (immediately for unknown recipients).
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        directory: Directory,
        max_attempts: int = 24,
        retry_base: float = 60.0,
        retry_cap: float = 3600.0,
        retry_jitter: float = 0.25,
    ) -> None:
        self.network = network
        self.directory = directory
        self.max_attempts = max_attempts
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.retry_jitter = retry_jitter
        self.stats = MailStats()
        self._graph = nx.Graph()
        self._mailboxes: dict[str, NotesDatabase] = {}
        self._dead_letters: dict[str, NotesDatabase] = {}
        self._mail_files: dict[tuple[str, str], NotesDatabase] = {}
        self._rng = random.Random(0x4D41494C)  # "MAIL"

    # -- wiring -----------------------------------------------------------

    def add_route(self, a: str, b: str) -> None:
        """Declare a mail connection between two servers (symmetric)."""
        self.network.server(a)
        self.network.server(b)
        self._graph.add_edge(a, b)

    def mailbox(self, server: str) -> NotesDatabase:
        """The ``mail.box`` queue database of ``server`` (created lazily)."""
        box = self._mailboxes.get(server)
        if box is None:
            box = NotesDatabase(
                f"mail.box@{server}",
                clock=self.network.clock,
                rng=random.Random(self._rng.getrandbits(64)),
                server=server,
            )
            self._mailboxes[server] = box
        return box

    def dead_letter_box(self, server: str) -> NotesDatabase:
        """The ``mail.dead`` database of ``server`` (created lazily):
        memos the router gave up on, kept for operator inspection."""
        box = self._dead_letters.get(server)
        if box is None:
            box = NotesDatabase(
                f"mail.dead@{server}",
                clock=self.network.clock,
                rng=random.Random(self._rng.getrandbits(64)),
                server=server,
            )
            self._dead_letters[server] = box
        return box

    def mail_file(self, user: str) -> NotesDatabase:
        """The recipient's mail-file database on their home server."""
        server = self.directory.mail_server_of(user)
        key = (server, self.directory.mail_file_of(user))
        db = self._mail_files.get(key)
        if db is None:
            db = NotesDatabase(
                key[1],
                clock=self.network.clock,
                rng=random.Random(self._rng.getrandbits(64)),
                server=server,
            )
            self._mail_files[key] = db
        return db

    # -- submission ---------------------------------------------------------

    def submit(self, items: dict, origin_server: str) -> None:
        """Deposit a memo into ``origin_server``'s mail.box for routing."""
        if not recipients_of(items):
            raise MailError("memo has no recipients")
        memo = dict(items)
        memo.setdefault("$SubmittedAt", self.network.clock.now)
        memo["$RouteTrace"] = [origin_server]
        self.mailbox(origin_server).create(memo, author=memo.get("From", "router"))
        self.stats.submitted += 1

    # -- routing -----------------------------------------------------------

    def route_step(self) -> int:
        """Advance every queued message one hop; returns messages that made
        progress (held-for-retry messages do not count).

        Memos backing off after a failed transfer (``$RetryAfter`` in the
        future) stay queued untouched until their deadline passes.
        """
        progressed = 0
        now = self.network.clock.now
        for server in list(self._mailboxes):
            box = self._mailboxes[server]
            for unid in box.unids():
                memo = box.get(unid)
                retry_after = memo.get("$RetryAfter")
                if isinstance(retry_after, (int, float)) and now < retry_after:
                    continue
                items = {name: memo.get(name) for name in memo.item_names}
                box.delete(unid, author="router")
                if int(items.get("$RouteAttempts") or 0) > 0:
                    self.stats.retries += 1
                progressed += self._route_one(server, items)
        return progressed

    def pending(self) -> int:
        """Messages currently queued (including held-for-retry ones)."""
        return sum(len(box) for box in self._mailboxes.values())

    def attach(self, events, interval: float = 60.0) -> None:
        """Run the router on the discrete-event loop: one routing step every
        ``interval`` virtual seconds. Delivery latency then reflects route
        length — each hop waits for the next router pass, as real store-
        and-forward mail did."""
        events.every(interval, lambda: self.route_step(),
                     label="mail router")

    def deliver_all(self, max_steps: int = 64) -> MailStats:
        """Route until no message can make further progress.

        Held messages (next hop unreachable) stay queued for a later pass;
        they do not count as progress, so the loop terminates during
        outages.
        """
        for _ in range(max_steps):
            if self.route_step() == 0:
                return self.stats
        raise MailError(f"mail still circulating after {max_steps} steps")

    def _backoff(self, attempts: int) -> float:
        """Exponential retry delay with seeded jitter for attempt N."""
        delay = min(self.retry_base * (2.0 ** max(attempts - 1, 0)),
                    self.retry_cap)
        return delay * (1.0 + self.retry_jitter * self._rng.random())

    def _route_one(self, server: str, items: dict) -> int:
        """Route one memo; returns 1 when it progressed, 0 when held."""
        progressed = 0
        people, unknown = self.directory.expand_recipients(recipients_of(items))
        for name in unknown:
            self._bounce(server, items, name, "no such person or group")
            progressed = 1
        # Partition people by their home server; deliver or forward.
        by_server: dict[str, list[str]] = {}
        for person in people:
            by_server.setdefault(self.directory.mail_server_of(person), []).append(
                person
            )
        stuck: list[str] = []
        backoff_needed = False
        attempts = int(items.get("$RouteAttempts") or 0)
        for home, users in sorted(by_server.items()):
            if home == server:
                for user in users:
                    self._deliver(server, items, user)
                progressed = 1
                continue
            next_hop = self._next_hop(server, home)
            if next_hop is None:
                if attempts + 1 >= self.max_attempts:
                    self._dead_letter(server, items, users,
                                      f"no route to {home}")
                    progressed = 1
                else:
                    stuck.extend(users)
                continue
            forwarded = dict(items)
            # Restrict the addressee list on this branch to this server's
            # users so forks down different routes do not double-deliver.
            forwarded["SendTo"] = users
            forwarded["CopyTo"] = []
            forwarded["BlindCopyTo"] = []
            forwarded["$RouteAttempts"] = 0
            forwarded.pop("$RetryAfter", None)
            forwarded["$RouteTrace"] = list(items.get("$RouteTrace", [])) + [next_hop]
            try:
                self.network.begin_attempt(server, next_hop)
                self.network.transfer(server, next_hop, _wire_size(forwarded))
            except LinkFailure as exc:
                # The hop died on the wire: hold with backoff, or give
                # up and dead-letter once the attempt budget is spent.
                self.stats.transfer_failures += 1
                if attempts + 1 >= self.max_attempts:
                    self._dead_letter(server, items, users, str(exc))
                    progressed = 1
                else:
                    stuck.extend(users)
                    backoff_needed = True
                continue
            self.stats.transfers += 1
            self.mailbox(next_hop).create(
                forwarded, author=forwarded.get("From", "router")
            )
            progressed = 1
        if stuck:
            held = dict(items)
            held["SendTo"] = stuck
            held["CopyTo"] = []
            held["BlindCopyTo"] = []
            held["$RouteAttempts"] = attempts + 1
            if backoff_needed:
                held["$RetryAfter"] = (
                    self.network.clock.now + self._backoff(attempts + 1)
                )
            else:
                held.pop("$RetryAfter", None)
            self.mailbox(server).create(held, author=held.get("From", "router"))
            self.stats.held += 1
        return progressed

    def _next_hop(self, server: str, destination: str) -> str | None:
        if server == destination:
            return destination
        if destination not in self._graph or server not in self._graph:
            return None
        usable = nx.Graph(
            (a, b)
            for a, b in self._graph.edges
            if self.network.is_reachable(a, b)
        )
        usable.add_nodes_from(self._graph.nodes)
        try:
            path = nx.shortest_path(usable, server, destination)
        except nx.NetworkXNoPath:
            return None
        return path[1]

    def _deliver(self, server: str, items: dict, user: str) -> None:
        delivered = dict(items)
        delivered["DeliveredDate"] = self.network.clock.now
        trace = list(delivered.get("$RouteTrace", []))
        self.mail_file(user).create(delivered, author=items.get("From", "router"))
        self.stats.delivered += 1
        self.stats.hop_counts.append(max(len(trace) - 1, 0))
        submitted = items.get("$SubmittedAt", self.network.clock.now)
        self.stats.delivery_latency.append(self.network.clock.now - submitted)

    def _dead_letter(
        self, server: str, items: dict, users: list[str], reason: str
    ) -> None:
        """Give up on a branch: file a Notes-style delivery-failure report
        in ``server``'s dead-letter database and bounce each recipient."""
        report = dict(items)
        report["Form"] = "DeliveryFailure"
        report["FailedRecipients"] = list(users)
        report["FailureReason"] = reason
        report["$FailedAt"] = self.network.clock.now
        report["$RouteAttempts"] = int(items.get("$RouteAttempts") or 0) + 1
        self.dead_letter_box(server).create(report, author="Mail Router")
        self.stats.dead_lettered += 1
        for user in users:
            self._bounce(server, items, user, reason)

    def _bounce(self, server: str, items: dict, recipient: str, reason: str) -> None:
        self.stats.bounced += 1
        sender = items.get("From")
        if not sender or items.get("Form") == "NonDelivery":
            return  # cannot bounce a bounce
        report = make_nondelivery_report(items, recipient, reason)
        report["$RouteTrace"] = [server]
        self.mailbox(server).create(report, author="Mail Router")
