"""The directory (Name & Address Book): Person and Group documents.

Kept in an ordinary :class:`NotesDatabase` — the point the paper makes about
Domino administration being "just databases". Views over Form give fast
lookup; group expansion tolerates nesting and cycles.
"""

from __future__ import annotations

import random

from repro.errors import MailError
from repro.core.database import NotesDatabase
from repro.core.document import Document
from repro.sim.clock import VirtualClock
from repro.views import SortOrder, View, ViewColumn


class Directory:
    """Person/Group registry backed by a names database."""

    def __init__(self, clock: VirtualClock | None = None, seed: int = 42) -> None:
        self.db = NotesDatabase(
            "names.nsf", clock=clock, rng=random.Random(seed), server="directory"
        )
        self._people = View(
            self.db,
            "People",
            selection='SELECT Form = "Person"',
            columns=[ViewColumn(title="UserName", item="UserName",
                                sort=SortOrder.ASCENDING)],
        )
        self._groups = View(
            self.db,
            "Groups",
            selection='SELECT Form = "Group"',
            columns=[ViewColumn(title="GroupName", item="GroupName",
                                sort=SortOrder.ASCENDING)],
        )

    # -- registration -----------------------------------------------------

    def register_person(
        self, name: str, mail_server: str, mail_file: str | None = None
    ) -> Document:
        """Add (or replace) a Person document."""
        existing = self.find_person(name)
        items = {
            "Form": "Person",
            "UserName": name,
            "MailServer": mail_server,
            "MailFile": mail_file or f"mail/{name.split('/')[0].lower()}.nsf",
        }
        if existing is not None:
            return self.db.update(existing.unid, items, author="admin")
        return self.db.create(items, author="admin")

    def register_group(self, name: str, members: list[str]) -> Document:
        """Add (or replace) a Group document."""
        existing = self.find_group(name)
        items = {"Form": "Group", "GroupName": name, "Members": list(members)}
        if existing is not None:
            return self.db.update(existing.unid, items, author="admin")
        return self.db.create(items, author="admin")

    # -- lookup ---------------------------------------------------------

    def find_person(self, name: str) -> Document | None:
        return self._people.first_by_key(name)

    def find_group(self, name: str) -> Document | None:
        return self._groups.first_by_key(name)

    def mail_server_of(self, name: str) -> str:
        person = self.find_person(name)
        if person is None:
            raise MailError(f"no Person document for {name!r}")
        return person.get("MailServer")

    def mail_file_of(self, name: str) -> str:
        person = self.find_person(name)
        if person is None:
            raise MailError(f"no Person document for {name!r}")
        return person.get("MailFile")

    def expand_recipients(self, names: list[str]) -> tuple[list[str], list[str]]:
        """Resolve groups to people.

        Returns ``(people, unknown)`` — unknown names had neither a Person
        nor a Group document. Nested groups and cycles are handled.
        """
        people: dict[str, None] = {}
        unknown: list[str] = []
        visited_groups: set[str] = set()
        queue = list(names)
        while queue:
            name = queue.pop(0)
            if self.find_person(name) is not None:
                people.setdefault(name)
                continue
            group = self.find_group(name)
            if group is not None:
                key = name.lower()
                if key in visited_groups:
                    continue
                visited_groups.add(key)
                queue.extend(group.get_list("Members"))
                continue
            unknown.append(name)
        return list(people), unknown

    @property
    def people(self) -> list[str]:
        return [doc.get("UserName") for doc in self._people.documents()]

    @property
    def groups(self) -> list[str]:
        return [doc.get("GroupName") for doc in self._groups.documents()]
