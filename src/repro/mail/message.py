"""Mail message construction helpers.

A memo is an ordinary document with the conventional mail items (``Form``,
``From``, ``SendTo``, ``CopyTo``, ``Subject``, ``Body``). Router metadata
(``$RouteTrace``, ``DeliveredDate``) is added as it travels.
"""

from __future__ import annotations

from typing import Any


def make_memo(
    sender: str,
    send_to: list[str] | str,
    subject: str,
    body: str = "",
    copy_to: list[str] | str | None = None,
    blind_copy_to: list[str] | str | None = None,
    extra_items: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Item dict for a mail memo, ready for ``db.create`` or router submit."""

    def as_list(value) -> list[str]:
        if value is None:
            return []
        return [value] if isinstance(value, str) else list(value)

    items: dict[str, Any] = {
        "Form": "Memo",
        "From": sender,
        "SendTo": as_list(send_to),
        "CopyTo": as_list(copy_to),
        "BlindCopyTo": as_list(blind_copy_to),
        "Subject": subject,
        "Body": body,
    }
    items.update(extra_items or {})
    return items


def recipients_of(items: dict[str, Any]) -> list[str]:
    """All recipient names of a memo item dict (SendTo + copies)."""
    out: list[str] = []
    for field in ("SendTo", "CopyTo", "BlindCopyTo"):
        value = items.get(field) or []
        out.extend([value] if isinstance(value, str) else value)
    return out


def make_nondelivery_report(
    original: dict[str, Any], failed_recipient: str, reason: str
) -> dict[str, Any]:
    """A non-delivery report memo addressed back to the original sender."""
    return make_memo(
        sender="Mail Router",
        send_to=original.get("From", ""),
        subject=f"NON-DELIVERY of: {original.get('Subject', '')}",
        body=(
            f"Your message could not be delivered to {failed_recipient}: "
            f"{reason}"
        ),
        extra_items={"Form": "NonDelivery", "FailedRecipient": failed_recipient},
    )
