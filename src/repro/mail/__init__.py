"""Mail: the application Notes was born as, expressed over the document DB.

Everything is documents, exactly as the paper stresses: the *directory* is a
database of Person and Group documents; a mail message is a document in the
sender's server ``mail.box`` queue; the *router* moves it hop by hop along
mail connections until it lands in each recipient's mail-file database.
Group expansion, multi-hop routing, route traces and non-delivery reports
are all implemented.
"""

from repro.mail.directory import Directory
from repro.mail.message import make_memo, make_nondelivery_report
from repro.mail.router import MailRouter, MailStats

__all__ = [
    "Directory",
    "MailRouter",
    "MailStats",
    "make_memo",
    "make_nondelivery_report",
]
