"""Exception hierarchy for the repro groupware database.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class StorageError(ReproError):
    """Base class for page-store, buffer-pool, WAL and B-tree failures."""


class PageError(StorageError):
    """A slotted page was asked to do something it cannot (overflow, bad slot)."""


class BufferPoolError(StorageError):
    """Pin-count misuse or pool exhaustion in the buffer pool."""


class WalError(StorageError):
    """Write-ahead log corruption or protocol violation."""


class RecoveryError(StorageError):
    """Crash recovery could not bring the store to a consistent state."""


class BTreeError(StorageError):
    """Structural invariant violation inside a B-tree index."""


class DocumentError(ReproError):
    """Invalid document construction or mutation."""


class ItemError(DocumentError):
    """An item value does not fit any supported item type."""


class DatabaseError(ReproError):
    """NotesDatabase-level failure (unknown note, closed database, ...)."""


class DocumentNotFound(DatabaseError):
    """No live note with the requested UNID/NoteID exists."""


class FormulaError(ReproError):
    """Base class for formula-language failures."""


class FormulaSyntaxError(FormulaError):
    """The formula source text could not be tokenized or parsed."""


class FormulaEvalError(FormulaError):
    """Evaluation failed (unknown @function, wrong argument types, ...)."""


class ViewError(ReproError):
    """View definition or index maintenance failure."""


class ReplicationError(ReproError):
    """Replication protocol failure (mismatched replica IDs, bad cursor)."""


class LinkFailure(ReplicationError):
    """A network link refused or dropped a transfer (transient by nature).

    Raised for unreachable routes and for injected faults — connection
    drops, link flaps, mid-exchange aborts. Retryable: the schedulers
    catch this (and only this) to drive backoff and circuit-breaker
    state; any other :class:`ReplicationError` still propagates as a bug.
    """


class AccessDenied(ReproError):
    """The caller's ACL entry does not permit the attempted operation."""


class SecurityError(ReproError):
    """Signature verification or sealing failure."""


class FullTextError(ReproError):
    """Full-text index or query failure."""


class MailError(ReproError):
    """Mail routing failure (unknown recipient, no route)."""


class ClusterError(ReproError):
    """Cluster membership or failover failure."""


class AgentError(ReproError):
    """Agent definition or execution failure."""


class SimulationError(ReproError):
    """Virtual-clock or event-scheduler misuse."""
