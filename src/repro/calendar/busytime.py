"""The busy-time index: who is busy when.

Subscribes to one or more databases and tracks, per attendee, the time
intervals covered by appointment documents. Intervals are kept per document
so reschedules and cancellations maintain incrementally; queries merge on
the fly (appointment counts per person are small).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document

APPOINTMENT_FORM = "Appointment"


class CalendarError(ReproError):
    """Invalid appointment data or scheduling request."""


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open busy interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise CalendarError(f"empty interval {self.start}..{self.end}")

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Sorted, coalesced busy intervals."""
    merged: list[Interval] = []
    for interval in sorted(intervals):
        if merged and interval.start <= merged[-1].end:
            last = merged[-1]
            if interval.end > last.end:
                merged[-1] = Interval(last.start, interval.end)
        else:
            merged.append(interval)
    return merged


def _attendee_names(doc: Document) -> list[str]:
    names = list(doc.get_list("Chair")) + list(doc.get_list("Attendees"))
    return [name for name in names if name]


class BusyTimeIndex:
    """Per-person busy intervals over one or more databases."""

    def __init__(self, databases: list[NotesDatabase] | None = None) -> None:
        # person -> unid -> Interval
        self._busy: dict[str, dict[str, Interval]] = {}
        self._databases: list[NotesDatabase] = []
        for db in databases or []:
            self.attach(db)

    def attach(self, db: NotesDatabase) -> None:
        """Index ``db``'s appointments and follow its changes."""
        self._databases.append(db)
        db.subscribe(self._on_change)
        for doc in db.all_documents():
            self._add(doc)

    def detach_all(self) -> None:
        for db in self._databases:
            db.unsubscribe(self._on_change)
        self._databases.clear()

    # -- maintenance --------------------------------------------------------

    def _on_change(self, kind: ChangeKind, payload, old: Document | None) -> None:
        if kind == ChangeKind.DELETE:
            self._drop(payload.unid)
            return
        doc: Document = payload
        self._drop(doc.unid)
        if kind in (ChangeKind.CREATE, ChangeKind.UPDATE, ChangeKind.REPLACE,
                    ChangeKind.RESTORE):
            self._add(doc)

    def _add(self, doc: Document) -> None:
        if doc.get("Form") != APPOINTMENT_FORM:
            return
        start = doc.get("StartTime")
        end = doc.get("EndTime")
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            return
        if end <= start:
            return
        interval = Interval(float(start), float(end))
        for person in _attendee_names(doc):
            self._busy.setdefault(person, {})[doc.unid] = interval

    def _drop(self, unid: str) -> None:
        for table in self._busy.values():
            table.pop(unid, None)

    # -- queries ------------------------------------------------------------

    def busy_intervals(self, person: str) -> list[Interval]:
        """Coalesced busy intervals for ``person``, ascending."""
        return merge_intervals(list(self._busy.get(person, {}).values()))

    def is_free(self, person: str, start: float, end: float) -> bool:
        candidate = Interval(start, end)
        return not any(
            candidate.overlaps(busy) for busy in self.busy_intervals(person)
        )

    def free_intervals(
        self, person: str, window_start: float, window_end: float
    ) -> list[Interval]:
        """Gaps within the window where ``person`` is free."""
        if window_end <= window_start:
            raise CalendarError("empty search window")
        free: list[Interval] = []
        cursor = window_start
        for busy in self.busy_intervals(person):
            if busy.end <= window_start or busy.start >= window_end:
                continue
            if busy.start > cursor:
                free.append(Interval(cursor, min(busy.start, window_end)))
            cursor = max(cursor, busy.end)
            if cursor >= window_end:
                break
        if cursor < window_end:
            free.append(Interval(cursor, window_end))
        return free
