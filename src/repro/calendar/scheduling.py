"""Free-time search and meeting booking."""

from __future__ import annotations

from typing import Any

from repro.core.database import NotesDatabase
from repro.core.document import Document
from repro.core.items import ItemType
from repro.calendar.busytime import (
    APPOINTMENT_FORM,
    BusyTimeIndex,
    CalendarError,
    Interval,
)


def make_appointment(
    chair: str,
    subject: str,
    start: float,
    end: float,
    attendees: list[str] | None = None,
    location: str = "",
) -> dict[str, Any]:
    """Item dict for an appointment document."""
    if end <= start:
        raise CalendarError(f"appointment ends before it starts ({start}..{end})")
    return {
        "Form": APPOINTMENT_FORM,
        "Subject": subject,
        "Chair": [chair],
        "Attendees": list(attendees or []),
        "StartTime": float(start),
        "EndTime": float(end),
        "Location": location,
    }


def find_free_slots(
    index: BusyTimeIndex,
    people: list[str],
    window_start: float,
    window_end: float,
    duration: float,
    limit: int = 5,
) -> list[Interval]:
    """Earliest slots of ``duration`` where *all* ``people`` are free.

    Returns at most ``limit`` non-overlapping candidate intervals, earliest
    first — the free-time lookup the Notes meeting scheduler performed
    against everyone's busy-time. Slots are aligned to busy-interval edges
    (the classic sweep), not to wall-clock grid points.
    """
    if duration <= 0:
        raise CalendarError(f"non-positive duration {duration}")
    if not people:
        raise CalendarError("free-time search needs at least one person")
    # Intersect everyone's free intervals pairwise.
    common = [Interval(window_start, window_end)]
    for person in people:
        person_free = index.free_intervals(person, window_start, window_end)
        next_common: list[Interval] = []
        for a in common:
            for b in person_free:
                start = max(a.start, b.start)
                end = min(a.end, b.end)
                if end - start >= duration:
                    next_common.append(Interval(start, end))
        common = next_common
        if not common:
            return []
    # Cut the shared gaps into consecutive duration-sized slots.
    slots: list[Interval] = []
    for gap in sorted(common):
        cursor = gap.start
        while cursor + duration <= gap.end and len(slots) < limit:
            slots.append(Interval(cursor, cursor + duration))
            cursor += duration
        if len(slots) >= limit:
            break
    return slots


def book_meeting(
    db: NotesDatabase,
    index: BusyTimeIndex,
    chair: str,
    subject: str,
    attendees: list[str],
    window_start: float,
    window_end: float,
    duration: float,
) -> Document:
    """Find the earliest slot everyone can make and book it.

    The created appointment immediately occupies everyone's busy time (the
    index follows database events), so consecutive bookings stack instead
    of colliding. Raises :class:`CalendarError` when no slot exists.
    """
    everyone = [chair] + [name for name in attendees if name != chair]
    slots = find_free_slots(
        index, everyone, window_start, window_end, duration, limit=1
    )
    if not slots:
        raise CalendarError(
            f"no common {duration}s slot for {len(everyone)} people in window"
        )
    slot = slots[0]
    items = make_appointment(
        chair, subject, slot.start, slot.end, attendees=attendees
    )
    doc = db.create(items, author=chair)
    # Name items carry NAMES semantics for reader/author style processing.
    doc.set("Chair", [chair], ItemType.NAMES)
    doc.set("Attendees", list(attendees), ItemType.NAMES)
    return doc
