"""Calendar & scheduling: appointments, busy time, free-time search.

The other half of groupware: appointments are ordinary documents
(``Form="Appointment"`` with start/end items and attendee name lists), a
busy-time index is maintained incrementally from database events, and
free-time search intersects the gaps of every attendee — the C&S feature
set Notes 4.5 layered on the same document substrate.
"""

from repro.calendar.busytime import BusyTimeIndex, Interval
from repro.calendar.scheduling import book_meeting, find_free_slots, make_appointment

__all__ = [
    "BusyTimeIndex",
    "Interval",
    "book_meeting",
    "find_free_slots",
    "make_appointment",
]
