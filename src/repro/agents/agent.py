"""Agent definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.errors import AgentError
from repro.core.document import Document
from repro.formula import Formula, compile_formula

# A Python action receives (doc, db) and returns item updates (or None).
PythonAction = Callable[[Document, Any], dict | None]


class AgentTrigger(str, Enum):
    MANUAL = "manual"
    SCHEDULED = "scheduled"
    ON_CREATE = "on_create"
    ON_UPDATE = "on_update"  # fires for creates *and* updates


@dataclass
class Agent:
    """A stored program over documents.

    Parameters
    ----------
    name:
        Agent name (shows up in ``$UpdatedBy`` trails as ``name/agent``).
    trigger:
        When the agent runs.
    selection:
        Formula choosing target documents (default: all).
    formula:
        Action formula; its FIELD assignments are written back to each
        selected document. Mutually exclusive with ``action``.
    action:
        Python callable ``(doc, db) -> dict | None``; the returned items
        are applied as an update. Mutually exclusive with ``formula``.
    interval:
        Seconds between runs (scheduled agents only).
    scan:
        ``"changed"`` (default) visits only documents changed since the
        agent's last run; ``"all"`` visits every document — needed when
        eligibility depends on time passing rather than on edits.
    """

    name: str
    trigger: AgentTrigger = AgentTrigger.MANUAL
    selection: str = "SELECT @All"
    formula: str | None = None
    action: PythonAction | None = None
    interval: float = 3600.0
    scan: str = "changed"
    runs: int = 0
    docs_processed: int = 0
    _selection_compiled: Formula = field(init=False, repr=False)
    _formula_compiled: Formula | None = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if (self.formula is None) == (self.action is None):
            raise AgentError(
                f"agent {self.name!r} needs exactly one of formula= or action="
            )
        if self.trigger == AgentTrigger.SCHEDULED and self.interval <= 0:
            raise AgentError(f"agent {self.name!r} needs a positive interval")
        if self.scan not in ("changed", "all"):
            raise AgentError(f"agent scan must be 'changed' or 'all', got {self.scan!r}")
        self._selection_compiled = compile_formula(self.selection)
        if self.formula is not None:
            self._formula_compiled = compile_formula(self.formula)

    @property
    def author_name(self) -> str:
        return f"{self.name}/agent"

    def selects(self, doc: Document, db=None) -> bool:
        return self._selection_compiled.select(doc, db=db)

    def compute_updates(self, doc: Document, db=None) -> dict | None:
        """Run the action against ``doc``; returns item updates or None."""
        if self.action is not None:
            return self.action(doc, db)
        from repro.formula import EvalContext

        ctx = EvalContext(doc=doc, db=db, user=self.author_name)
        self._formula_compiled.run(ctx)
        if not ctx.field_writes:
            return None
        return {
            name: (value[0] if len(value) == 1 else value)
            for name, value in ctx.field_writes.items()
        }
