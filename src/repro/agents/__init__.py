"""Agents: stored programs that run against documents.

The workflow building block the paper's groupware applications rely on: an
agent pairs a *trigger* (a schedule, a document event, or manual), a
*selection* formula choosing target documents, and an *action* — either a
formula whose FIELD assignments are written back, or a Python callable.
"""

from repro.agents.agent import Agent, AgentTrigger
from repro.agents.runner import AgentRunner

__all__ = ["Agent", "AgentRunner", "AgentTrigger"]
