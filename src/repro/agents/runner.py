"""Agent execution: triggers, scheduling, re-entrancy control.

The runner wires agents to a database. Event-triggered agents fire from
database change notifications; scheduled agents attach to the discrete-event
loop; manual agents run on demand over the documents changed since their
last run (the classic "newly received or modified documents" semantics).

An agent's own writes are performed under its author name and are prevented
from re-triggering agents (including itself) — the guard Notes needed too.
"""

from __future__ import annotations

from repro.errors import AgentError
from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document
from repro.agents.agent import Agent, AgentTrigger
from repro.sim.events import EventScheduler


class AgentRunner:
    """Hosts the agents of one database."""

    def __init__(self, db: NotesDatabase) -> None:
        self.db = db
        self.agents: list[Agent] = []
        # Per-agent high-water mark into the database's update-sequence
        # journal; a run examines only notes sequenced after the mark.
        self._last_seq: dict[str, int] = {}
        self._in_agent = False
        db.subscribe(self._on_change)

    def close(self) -> None:
        self.db.unsubscribe(self._on_change)

    # -- registration -----------------------------------------------------

    def add(self, agent: Agent, events: EventScheduler | None = None) -> Agent:
        """Register ``agent``; scheduled agents also need the event loop."""
        if any(existing.name == agent.name for existing in self.agents):
            raise AgentError(f"duplicate agent name {agent.name!r}")
        self.agents.append(agent)
        self._last_seq[agent.name] = self.db.update_seq
        if agent.trigger == AgentTrigger.SCHEDULED:
            if events is None:
                raise AgentError(
                    f"scheduled agent {agent.name!r} needs an EventScheduler"
                )
            events.every(
                agent.interval,
                lambda: self._run_if_registered(agent),
                label=f"agent {agent.name}",
            )
        return agent

    def _run_if_registered(self, agent: Agent) -> None:
        if agent in self.agents:
            self.run_agent(agent)

    def remove(self, name: str) -> None:
        """Unregister an agent; any pending schedule stops running it."""
        agent = self.agent(name)
        self.agents.remove(agent)
        self._last_seq.pop(name, None)

    def agent(self, name: str) -> Agent:
        for candidate in self.agents:
            if candidate.name == name:
                return candidate
        raise AgentError(f"no agent named {name!r}")

    # -- execution ----------------------------------------------------------

    def run_agent(self, agent: Agent, full_scan: bool = False) -> int:
        """Run ``agent`` over changed (or all, with ``full_scan``) documents.

        Returns the number of documents the action touched.
        """
        if agent.scan == "all":
            full_scan = True
        since = 0 if full_scan else self._last_seq.get(agent.name, 0)
        # Capture the mark before applying: the agent's own writes land
        # after it, so (like the timestamp semantics this replaces) they
        # are visible to the agent's next run.
        mark = self.db.update_seq
        docs, _ = self.db.changed_since_seq(since)
        touched = self._apply(agent, docs)
        self._last_seq[agent.name] = mark
        agent.runs += 1
        return touched

    def run_all_manual(self) -> int:
        """Run every MANUAL agent once; returns total documents touched."""
        return sum(
            self.run_agent(agent)
            for agent in self.agents
            if agent.trigger == AgentTrigger.MANUAL
        )

    def _apply(self, agent: Agent, docs: list[Document]) -> int:
        touched = 0
        self._in_agent = True
        try:
            for doc in list(docs):
                if doc.unid not in self.db:
                    continue
                if not agent.selects(doc, db=self.db):
                    continue
                updates = agent.compute_updates(doc, db=self.db)
                if updates:
                    self.db.update(doc.unid, updates, author=agent.author_name)
                    touched += 1
                    agent.docs_processed += 1
        finally:
            self._in_agent = False
        return touched

    # -- event triggers ----------------------------------------------------

    def _on_change(self, kind: ChangeKind, payload, old: Document | None) -> None:
        if self._in_agent:
            return  # agent writes must not cascade into more agent runs
        if kind == ChangeKind.CREATE:
            wanted = (AgentTrigger.ON_CREATE, AgentTrigger.ON_UPDATE)
        elif kind == ChangeKind.REPLACE and old is None:
            # A document arriving by replication for the first time is
            # "new" from this replica's point of view.
            wanted = (AgentTrigger.ON_CREATE, AgentTrigger.ON_UPDATE)
        elif kind in (ChangeKind.UPDATE, ChangeKind.REPLACE):
            wanted = (AgentTrigger.ON_UPDATE,)
        else:
            return
        doc: Document = payload
        for agent in self.agents:
            if agent.trigger not in wanted:
                continue
            # Skip events produced by this very agent's writes (belt and
            # braces next to the _in_agent guard).
            if doc.updated_by and doc.updated_by[-1] == agent.author_name:
                continue
            self._apply(agent, [doc])
            agent.runs += 1
