"""The event-driven cluster replicator.

Subscribes to every member replica; each local change is pushed at once to
the other members (with the same originator-id comparison the scheduled
replicator uses, so echoes and races resolve identically). Pushes to an
unreachable member stall that link; ``catch_up`` is the cluster-join/
restart path that drains stalled links.

The backlog *is* the database's update-sequence journal: a stalled link
keeps only the origin seq it last drained, and ``catch_up`` replays
``changed_since_seq`` past that cursor — O(1) state per link however many
changes pile up during the outage, with a drain bounded by the number of
distinct changed notes. The only per-note bookkeeping left is a small
side-table of *un-journaled* events (soft deletes, restores, cutoff
purges — none of which write journal entries) so a drain reproduces them
too.

Successful pushes acknowledge the origin's ``update_seq`` into
``replication_seq[(target, "send")]`` — the same ledger scheduled
replication uses — which is what makes seq-acknowledged stub purging safe
inside a cluster: a stub may only be purged once every known partner's
acknowledged seq has passed it, and a stalled link stops acknowledging
until its drain completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.database import ChangeKind, DeletionStub, NotesDatabase
from repro.core.document import Document
from repro.errors import LinkFailure
from repro.replication.conflicts import ConflictPolicy, detect, resolve
from repro.replication.network import SimulatedNetwork

_STUB_WIRE_SIZE = 96


@dataclass
class ClusterReplicationStats:
    pushes: int = 0
    queued: int = 0
    drained: int = 0
    replayed: int = 0
    conflicts: int = 0
    bytes_pushed: int = 0
    catch_up_seconds: float = 0.0
    # Pushes/drains a link fault killed; the link (re-)stalls and the
    # next catch_up resumes from its advanced seq cursor.
    interrupted: int = 0
    push_latency: list[float] = field(default_factory=list)


class ClusterReplicator:
    """Keeps a family of cluster replicas synchronized in near-real-time."""

    def __init__(
        self,
        network: SimulatedNetwork,
        conflict_policy: ConflictPolicy = ConflictPolicy.CONFLICT_DOC,
    ) -> None:
        self.network = network
        self.conflict_policy = conflict_policy
        self.stats = ClusterReplicationStats()
        self._members: list[NotesDatabase] = []
        # (source server, target server) -> origin seq last known pushed.
        # A link appears here only while stalled; catch_up replays the
        # journal suffix past the cursor and removes it.
        self._stalled: dict[tuple[str, str], int] = {}
        # Events the journal cannot replay (soft deletes, restores and
        # cutoff purges never journal): (link) -> {unid: stub | None}.
        # None means "push the current document" (a restore).
        self._pending: dict[tuple[str, str], dict[str, DeletionStub | None]] = {}
        self._pushing = False

    # -- membership -----------------------------------------------------

    def attach(self, db: NotesDatabase) -> None:
        """Add a replica to the cluster-replication family.

        Every member pair is registered in ``replication_seq`` at ack 0,
        so seq-acknowledged stub purging knows the partner exists *before*
        the first push — a stub can never be purged out from under a
        cluster mate that has acknowledged nothing yet.
        """
        if self._members and db.replica_id != self._members[0].replica_id:
            from repro.errors import ClusterError

            raise ClusterError("cluster replicas must share a replica id")
        for member in self._members:
            member.replication_seq.setdefault((db.server, "send"), 0)
            db.replication_seq.setdefault((member.server, "send"), 0)
        self._members.append(db)
        db.subscribe(self._make_handler(db))

    def _make_handler(self, origin: NotesDatabase):
        def handler(kind: ChangeKind, payload, old: Document | None) -> None:
            if self._pushing:
                return  # change caused by a cluster push: do not echo
            if kind in (ChangeKind.CREATE, ChangeKind.UPDATE,
                        ChangeKind.REPLACE):
                self._push_all(origin, payload, None, journaled=True)
            elif kind == ChangeKind.RESTORE:
                self._push_all(origin, payload, None, journaled=False)
            elif kind == ChangeKind.DELETE:
                # delete() journals a stub; soft deletes and cutoff purges
                # synthesize one that the journal never sees.
                self._push_all(
                    origin, None, payload,
                    journaled=payload.unid in origin.stubs,
                )

        return handler

    # -- pushing ----------------------------------------------------------

    def _push_all(
        self,
        origin: NotesDatabase,
        doc: Document | None,
        stub: DeletionStub | None,
        journaled: bool,
    ) -> None:
        for member in self._members:
            if member is origin:
                continue
            link = (origin.server, member.server)
            if not self.network.is_reachable(*link):
                # Stall the link at the seq *before* this change (the
                # notify runs after the journal append, so update_seq is
                # this change's seq). Un-journaled events leave the
                # cursor at the current seq and ride the pending table.
                self._stalled.setdefault(
                    link,
                    origin.update_seq - 1 if journaled else origin.update_seq,
                )
                if not journaled:
                    unid = doc.unid if doc is not None else stub.unid
                    self._pending.setdefault(link, {})[unid] = stub
                self.stats.queued += 1
                continue
            if not journaled:
                # A restore supersedes a pending soft-delete stub queued
                # on this link (and vice versa — latest event wins).
                unid = doc.unid if doc is not None else stub.unid
                pending = self._pending.get(link)
                if pending is not None:
                    pending.pop(unid, None)
            try:
                self.network.begin_attempt(*link)
                self._push_one(origin, member, doc, stub)
            except LinkFailure:
                # The push died on the wire (drop/flap/abort): stall the
                # link exactly as if the member had been unreachable.
                self.stats.interrupted += 1
                self._stalled.setdefault(
                    link,
                    origin.update_seq - 1 if journaled else origin.update_seq,
                )
                if not journaled:
                    unid = doc.unid if doc is not None else stub.unid
                    self._pending.setdefault(link, {})[unid] = stub
                self.stats.queued += 1
                continue
            if link not in self._stalled:
                self._ack(origin, member)

    def _ack(self, origin: NotesDatabase, target: NotesDatabase) -> None:
        """Record that ``target`` holds everything up to origin's seq."""
        origin.replication_seq[(target.server, "send")] = origin.update_seq

    def _push_one(
        self,
        origin: NotesDatabase,
        target: NotesDatabase,
        doc: Document | None,
        stub: DeletionStub | None,
    ) -> None:
        self._pushing = True
        try:
            if stub is not None:
                local = target.try_get(stub.unid)
                if local is None or (stub.seq, tuple(stub.seq_time)) > (
                    local.seq,
                    tuple(local.seq_time),
                ):
                    latency = self.network.transfer(
                        origin.server, target.server, _STUB_WIRE_SIZE
                    )
                    target.raw_delete(stub)
                    self._account(latency, _STUB_WIRE_SIZE)
                return
            assert doc is not None
            local = target.try_get(doc.unid)
            if local is None:
                latency = self.network.transfer(
                    origin.server, target.server, doc.size()
                )
                target.raw_put(doc.copy())
                self._account(latency, doc.size())
                return
            relation = detect(local, doc)
            if relation in ("same", "local_newer"):
                return
            latency = self.network.transfer(origin.server, target.server, doc.size())
            if relation == "incoming_newer":
                target.raw_put(doc.copy())
            else:
                resolve(target, local, doc.copy(), self.conflict_policy)
                self.stats.conflicts += 1
            self._account(latency, doc.size())
        finally:
            self._pushing = False

    def _account(self, latency: float, nbytes: int) -> None:
        self.stats.pushes += 1
        self.stats.bytes_pushed += nbytes
        self.stats.push_latency.append(latency)

    # -- catch-up after failure ------------------------------------------

    def catch_up(self) -> int:
        """Drain every stalled link that is reachable again.

        Per link this is one ``journal_entries_since(cursor)`` call — a
        binary search plus a walk over the notes actually changed during
        the outage — followed by the (rare) un-journaled pending events.
        The *current* revision is pushed, so repeated edits to one note
        during the outage cost a single transfer.

        Drains are *resumable*: the link's seq cursor advances after
        every pushed entry, so a drain killed mid-flight by a link fault
        leaves the link stalled at its progress point and the next
        ``catch_up`` replays only what is still missing — never the whole
        outage again. Returns the number of changes applied; a completed
        drain acknowledges the origin's seq so stub purging may proceed.
        """
        started = perf_counter()
        drained = 0
        for link, cursor in list(self._stalled.items()):
            if not self.network.is_reachable(*link):
                continue
            source = self._member_on(link[0])
            target = self._member_on(link[1])
            if source is None or target is None:
                continue
            try:
                self.network.begin_attempt(*link)
                for seq, note in source.journal_entries_since(cursor):
                    if isinstance(note, DeletionStub):
                        self._push_one(source, target, None, note)
                    else:
                        self._push_one(source, target, note, None)
                    self._stalled[link] = seq  # the drain's resume point
                    drained += 1
                # Un-journaled events last: a soft delete during the
                # outage must override the revision it shadows.
                pending = self._pending.get(link, {})
                for unid in list(pending):
                    stub = pending[unid]
                    if stub is not None:
                        self._push_one(
                            source, target, None, source.stubs.get(unid, stub)
                        )
                    else:
                        live = source.try_get(unid)
                        if live is not None:
                            self._push_one(source, target, live, None)
                    del pending[unid]
                    drained += 1
                self._pending.pop(link, None)
                del self._stalled[link]
                self._ack(source, target)
            except LinkFailure:
                # Fault mid-drain: the link stays stalled at the cursor
                # it reached; the next catch_up resumes from there.
                self.stats.interrupted += 1
        self.stats.drained += drained
        self.stats.replayed += drained
        self.stats.catch_up_seconds += perf_counter() - started
        return drained

    def _member_on(self, server: str) -> NotesDatabase | None:
        for member in self._members:
            if member.server == server:
                return member
        return None

    @property
    def backlog_size(self) -> int:
        """Distinct notes awaiting drain across all stalled links.

        Computed from the journal (the suffix past each link's cursor)
        plus the pending un-journaled events — the replicator itself no
        longer stores per-note backlog state.
        """
        total = 0
        for link, cursor in self._stalled.items():
            source = self._member_on(link[0])
            if source is None:
                continue
            docs, stubs = source.changed_since_seq(cursor)
            total += len(docs) + len(stubs)
        for pending in self._pending.values():
            total += len(pending)
        return total
