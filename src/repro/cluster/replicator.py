"""The event-driven cluster replicator.

Subscribes to every member replica; each local change is pushed at once to
the other members (with the same originator-id comparison the scheduled
replicator uses, so echoes and races resolve identically). Pushes to an
unreachable member queue in a backlog that drains when the member returns —
``catch_up`` is the cluster-join/restart path.

The backlog rides on the database's update-sequence journal: entries are
keyed per (link, UNID) and carry the origin's update seq at queue time, so
repeated edits to one document during an outage collapse to a single queued
entry (the drain ships the *current* revision anyway) and the backlog stays
bounded by the number of distinct changed notes, not the number of changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import ChangeKind, DeletionStub, NotesDatabase
from repro.core.document import Document
from repro.replication.conflicts import ConflictPolicy, detect, resolve
from repro.replication.network import SimulatedNetwork

_STUB_WIRE_SIZE = 96


@dataclass
class ClusterReplicationStats:
    pushes: int = 0
    queued: int = 0
    drained: int = 0
    conflicts: int = 0
    bytes_pushed: int = 0
    push_latency: list[float] = field(default_factory=list)


class ClusterReplicator:
    """Keeps a family of cluster replicas synchronized in near-real-time."""

    def __init__(
        self,
        network: SimulatedNetwork,
        conflict_policy: ConflictPolicy = ConflictPolicy.CONFLICT_DOC,
    ) -> None:
        self.network = network
        self.conflict_policy = conflict_policy
        self.stats = ClusterReplicationStats()
        self._members: list[NotesDatabase] = []
        # (source server, target server) -> {unid: (stub | None, origin seq)}
        # One live entry per note per link; a later change to the same note
        # supersedes the queued one (the current revision is shipped on
        # drain, so nothing is lost by collapsing).
        self._backlog: dict[tuple[str, str], dict] = {}
        self._pushing = False

    # -- membership -----------------------------------------------------

    def attach(self, db: NotesDatabase) -> None:
        """Add a replica to the cluster-replication family."""
        if self._members and db.replica_id != self._members[0].replica_id:
            from repro.errors import ClusterError

            raise ClusterError("cluster replicas must share a replica id")
        self._members.append(db)
        db.subscribe(self._make_handler(db))

    def _make_handler(self, origin: NotesDatabase):
        def handler(kind: ChangeKind, payload, old: Document | None) -> None:
            if self._pushing:
                return  # change caused by a cluster push: do not echo
            if kind in (ChangeKind.CREATE, ChangeKind.UPDATE, ChangeKind.REPLACE,
                        ChangeKind.RESTORE):
                self._push_all(origin, payload, None)
            elif kind == ChangeKind.DELETE:
                self._push_all(origin, None, payload)

        return handler

    # -- pushing ----------------------------------------------------------

    def _push_all(
        self,
        origin: NotesDatabase,
        doc: Document | None,
        stub: DeletionStub | None,
    ) -> None:
        for member in self._members:
            if member is origin:
                continue
            if not self.network.is_reachable(origin.server, member.server):
                unid = doc.unid if doc is not None else stub.unid
                self._backlog.setdefault(
                    (origin.server, member.server), {}
                )[unid] = (stub, origin.update_seq)
                self.stats.queued += 1
                continue
            self._push_one(origin, member, doc, stub)

    def _push_one(
        self,
        origin: NotesDatabase,
        target: NotesDatabase,
        doc: Document | None,
        stub: DeletionStub | None,
    ) -> None:
        self._pushing = True
        try:
            if stub is not None:
                local = target.try_get(stub.unid)
                if local is None or (stub.seq, tuple(stub.seq_time)) > (
                    local.seq,
                    tuple(local.seq_time),
                ):
                    latency = self.network.transfer(
                        origin.server, target.server, _STUB_WIRE_SIZE
                    )
                    target.raw_delete(stub)
                    self._account(latency, _STUB_WIRE_SIZE)
                return
            assert doc is not None
            local = target.try_get(doc.unid)
            if local is None:
                latency = self.network.transfer(
                    origin.server, target.server, doc.size()
                )
                target.raw_put(doc.copy())
                self._account(latency, doc.size())
                return
            relation = detect(local, doc)
            if relation in ("same", "local_newer"):
                return
            latency = self.network.transfer(origin.server, target.server, doc.size())
            if relation == "incoming_newer":
                target.raw_put(doc.copy())
            else:
                resolve(target, local, doc.copy(), self.conflict_policy)
                self.stats.conflicts += 1
            self._account(latency, doc.size())
        finally:
            self._pushing = False

    def _account(self, latency: float, nbytes: int) -> None:
        self.stats.pushes += 1
        self.stats.bytes_pushed += nbytes
        self.stats.push_latency.append(latency)

    # -- catch-up after failure ------------------------------------------

    def catch_up(self) -> int:
        """Drain every backlog whose link is reachable again.

        Returns the number of queued changes applied. Queued entries carry
        only identities; the *current* revision is pushed (later edits
        subsume earlier queued ones naturally).
        """
        drained = 0
        for (src_name, dst_name), entries in list(self._backlog.items()):
            if not self.network.is_reachable(src_name, dst_name):
                continue
            source = self._member_on(src_name)
            target = self._member_on(dst_name)
            if source is None or target is None:
                continue
            for unid, (stub, _queued_seq) in entries.items():
                if stub is not None:
                    current_stub = source.stubs.get(stub.unid, stub)
                    self._push_one(source, target, None, current_stub)
                else:
                    doc = source.try_get(unid)
                    if doc is None:
                        # deleted since queueing: push the stub if present
                        late_stub = source.stubs.get(unid)
                        if late_stub is not None:
                            self._push_one(source, target, None, late_stub)
                    else:
                        self._push_one(source, target, doc, None)
                drained += 1
            del self._backlog[(src_name, dst_name)]
        self.stats.drained += drained
        return drained

    def _member_on(self, server: str) -> NotesDatabase | None:
        for member in self._members:
            if member.server == server:
                return member
        return None

    @property
    def backlog_size(self) -> int:
        return sum(len(entries) for entries in self._backlog.values())
