"""Domino clustering: high availability through tightly-coupled replicas.

A cluster is a small set of servers that each hold replicas of the same
databases. Unlike scheduled replication, the **cluster replicator** is
event-driven: every change is pushed to the other members immediately, so
replicas stay near-real-time. When a member goes down, clients **fail
over** to the member with the best availability index; changes the dead
member missed are queued and applied when it returns.
"""

from repro.cluster.manager import Cluster, OpenResult
from repro.cluster.replicator import ClusterReplicator

__all__ = ["Cluster", "ClusterReplicator", "OpenResult"]
