"""Cluster membership, availability-index load balancing, and failover.

``open_database`` is the client entry point: it returns a replica on the
preferred server when that server is up, otherwise fails over to the
cluster member with the best availability index. The availability index is
a 0–100 score derived from a simple load model (open sessions), matching
the workload-probe heuristic Domino clusters used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ClusterError
from repro.core.database import NotesDatabase
from repro.replication.conflicts import ConflictPolicy
from repro.replication.network import SimulatedNetwork
from repro.cluster.replicator import ClusterReplicator


@dataclass(frozen=True)
class OpenResult:
    """Outcome of a client open: which replica served it, and how."""

    db: NotesDatabase
    server: str
    failed_over: bool


class Cluster:
    """A named cluster of servers holding common database replicas."""

    MAX_MEMBERS = 6  # Domino's documented cluster size limit

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        conflict_policy: ConflictPolicy = ConflictPolicy.CONFLICT_DOC,
    ) -> None:
        self.name = name
        self.network = network
        self.members: list[str] = []
        self.replicators: dict[str, ClusterReplicator] = {}  # per replica id
        self._load: dict[str, int] = {}
        self.opens = 0
        self.failovers = 0
        self.conflict_policy = conflict_policy

    # -- membership -----------------------------------------------------

    def add_member(self, server_name: str) -> None:
        if server_name in self.members:
            raise ClusterError(f"{server_name} already in cluster {self.name}")
        if len(self.members) >= self.MAX_MEMBERS:
            raise ClusterError(
                f"cluster {self.name} is full ({self.MAX_MEMBERS} members)"
            )
        self.network.server(server_name)  # must exist
        self.members.append(server_name)
        self._load.setdefault(server_name, 0)

    def cluster_database(self, db: NotesDatabase) -> list[NotesDatabase]:
        """Ensure every member holds a replica of ``db``; wire the cluster
        replicator; returns all member replicas (including ``db``)."""
        if db.server not in self.members:
            raise ClusterError(
                f"database lives on {db.server}, not a member of {self.name}"
            )
        replicator = self.replicators.get(db.replica_id)
        if replicator is None:
            replicator = ClusterReplicator(
                self.network, conflict_policy=self.conflict_policy
            )
            self.replicators[db.replica_id] = replicator
            replicator.attach(db)
        replicas = [db]
        for member in self.members:
            server = self.network.server(member)
            existing = server.replica_of(db.replica_id)
            if existing is None:
                replica = db.new_replica(member)
                server.add_database(replica)
                replicator.attach(replica)
                replicas.append(replica)
            elif existing is not db:
                replicas.append(existing)
        # Seed new replicas with current content through the replicator's
        # catch-up path: a plain full push from the origin.
        for replica in replicas:
            if replica is db or len(replica) == len(db):
                continue
            for doc in db.all_documents():
                replicator._push_one(db, replica, doc, None)
            for stub in db.stubs.values():
                replicator._push_one(db, replica, None, stub)
        return replicas

    # -- load model ---------------------------------------------------------

    def availability_index(self, server_name: str) -> int:
        """0 (saturated) … 100 (idle), from the member's open-session count."""
        load = self._load.get(server_name, 0)
        return max(0, 100 - 5 * load)

    def close_session(self, server_name: str) -> None:
        if self._load.get(server_name, 0) > 0:
            self._load[server_name] -= 1

    # -- client opens -------------------------------------------------------

    def open_database(
        self,
        replica_id: str,
        preferred: str | None = None,
        rng: random.Random | None = None,
    ) -> OpenResult:
        """Open a replica, failing over when the preferred member is down.

        Among the available members, the one with the best availability
        index wins (ties broken at random to spread load).
        """
        self.opens += 1
        candidates = []
        for member in self.members:
            server = self.network.server(member)
            if not server.up:
                continue
            db = server.replica_of(replica_id)
            if db is not None:
                candidates.append((member, db))
        if not candidates:
            raise ClusterError(
                f"no available replica of {replica_id} in cluster {self.name}"
            )
        if preferred is not None:
            for member, db in candidates:
                if member == preferred:
                    self._load[member] = self._load.get(member, 0) + 1
                    return OpenResult(db=db, server=member, failed_over=False)
        # Failover / balance: best availability index.
        best = max(self.availability_index(member) for member, _ in candidates)
        top = [
            (member, db)
            for member, db in candidates
            if self.availability_index(member) == best
        ]
        member, db = (rng or random).choice(top)
        self._load[member] = self._load.get(member, 0) + 1
        failed_over = preferred is not None and member != preferred
        if failed_over:
            self.failovers += 1
        return OpenResult(db=db, server=member, failed_over=failed_over)

    # -- failure injection ----------------------------------------------

    def fail(self, server_name: str) -> None:
        """Take a member down (crash)."""
        self.network.server(server_name).up = False

    def restore(self, server_name: str) -> int:
        """Bring a member back and drain cluster-replication backlogs.

        Returns the number of queued changes applied during catch-up.
        """
        self.network.server(server_name).up = True
        drained = 0
        for replicator in self.replicators.values():
            drained += replicator.catch_up()
        return drained
