"""Discrete-event scheduler driving a :class:`~repro.sim.clock.VirtualClock`.

Components register callbacks for future virtual instants; running the
scheduler advances the shared clock from event to event. Used by the
replication scheduler, the mail router and the cluster failover experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


@dataclass(order=True)
class ScheduledEvent:
    """An event in the scheduler queue, ordered by (time, seq)."""

    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self.cancelled = True


class RepeatingEvent:
    """Handle for a repeating schedule created by :meth:`EventScheduler.every`."""

    def __init__(self) -> None:
        self.cancelled = False
        self.current: ScheduledEvent | None = None

    def cancel(self) -> None:
        """Stop the series: the pending occurrence and all future ones."""
        self.cancelled = True
        if self.current is not None:
            self.current.cancel()


class EventScheduler:
    """A priority-queue discrete-event loop over a shared virtual clock."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self.executed = 0

    def __len__(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def at(self, when: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` for the absolute virtual instant ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.clock.now}"
            )
        self._seq += 1
        event = ScheduledEvent(when=when, seq=self._seq, action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` for ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self.clock.now + delay, action, label)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        start_delay: float | None = None,
    ) -> "RepeatingEvent":
        """Schedule ``action`` to repeat every ``interval`` seconds.

        Returns a :class:`RepeatingEvent` handle whose ``cancel()`` stops
        the series permanently.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        handle = RepeatingEvent()

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            if not handle.cancelled:
                handle.current = self.after(interval, fire, label)

        delay = interval if start_delay is None else start_delay
        handle.current = self.after(delay, fire, label)
        return handle

    def run_until(self, when: float) -> int:
        """Execute all events up to and including instant ``when``.

        Returns the number of events executed. The clock ends exactly at
        ``when`` even if the queue empties earlier.
        """
        executed = 0
        while self._queue and self._queue[0].when <= when:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.action()
            executed += 1
            self.executed += 1
        self.clock.advance_to(max(when, self.clock.now))
        return executed

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely; guard against runaway loops."""
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.action()
            executed += 1
            self.executed += 1
        return executed
