"""Deterministic fault injection for the simulated network.

The paper's deployments replicated over links that were *expected* to
fail — dial-up connections, WAN partitions, servers down for hours — so
the interesting replication behaviour is what happens around failure,
not in its absence. A :class:`FaultPlan` drives four fault axes against
a :class:`~repro.replication.network.SimulatedNetwork`:

* **drops** — a replication/mail attempt on a link fails outright at
  connect time (the dial that never completes);
* **flaps** — an attempt takes the link down for a drawn duration, after
  which it heals by itself (no operator action);
* **mid-exchange aborts** — the attempt starts, transfers N notes, then
  the link dies under it (the fault resumable exchanges exist for);
* **server crashes** — scheduled down/up windows per server, checked
  against the shared virtual clock.

Every decision is drawn from an RNG derived from ``(seed, subject)`` via
SHA-256 — never from Python's salted ``hash`` and never from the global
``random`` module — so one seed replays the exact fault schedule, and a
failing chaos test prints a seed that reproduces it. Injected faults are
appended to :attr:`FaultPlan.trace`, which the determinism tests compare
run against run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from repro.errors import LinkFailure, SimulationError
from repro.sim.clock import VirtualClock


def derive_rng(seed: int, *parts: str) -> random.Random:
    """A ``random.Random`` seeded from ``seed`` and a stable subject key.

    SHA-256 based so the derivation is identical across processes and
    ``PYTHONHASHSEED`` values (tuple hashing is salted; this is not).
    """
    digest = hashlib.sha256(":".join([str(seed), *parts]).encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class LinkFaultProfile:
    """Per-link fault rates; probabilities apply per *attempt*.

    ``drop_probability``
        The attempt fails at connect time, before any transfer.
    ``flap_probability`` / ``flap_duration``
        The attempt fails *and* takes the link down for a duration drawn
        uniformly from ``flap_duration`` seconds; the link self-heals
        when the virtual clock passes the window.
    ``abort_probability`` / ``abort_after``
        The attempt is armed to die mid-exchange: after a number of
        completed transfers drawn uniformly from ``abort_after``, the
        next transfer on the link raises :class:`LinkFailure`.
    """

    drop_probability: float = 0.0
    flap_probability: float = 0.0
    flap_duration: tuple[float, float] = (2.0, 10.0)
    abort_probability: float = 0.0
    abort_after: tuple[int, int] = (1, 6)

    def __post_init__(self) -> None:
        for name in ("drop_probability", "flap_probability",
                     "abort_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name}={p!r} is not a probability")
        if self.abort_after[0] < 1:
            raise SimulationError("abort_after must allow >= 1 transfer")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the replayable trace."""

    when: float
    kind: str  # "drop" | "flap" | "abort-armed" | "abort" | "crash" | "restart"
    subject: str  # "a<->b" for links, the server name for crashes
    detail: float = 0.0  # flap duration / abort budget; 0 otherwise


def _link_key(a: str, b: str) -> str:
    return f"{min(a, b)}<->{max(a, b)}"


class FaultPlan:
    """A seeded, replayable schedule of network faults.

    Install on a network with
    :meth:`~repro.replication.network.SimulatedNetwork.install_faults`;
    the network then consults the plan from ``is_reachable`` (flaps,
    crash windows), ``begin_attempt`` (drops, flap onset, abort arming)
    and ``transfer`` (armed aborts firing). ``deactivate()`` turns the
    plan off in place — the heal step of chaos tests — while keeping the
    trace.
    """

    def __init__(
        self,
        seed: int,
        clock: VirtualClock,
        default: LinkFaultProfile | None = None,
    ) -> None:
        self.seed = seed
        self.clock = clock
        self.default = default or LinkFaultProfile()
        self.active = True
        self.trace: list[FaultEvent] = []
        self._profiles: dict[str, LinkFaultProfile] = {}
        self._rngs: dict[str, random.Random] = {}
        self._flap_until: dict[str, float] = {}
        # link key -> completed transfers remaining before the armed abort
        self._abort_budget: dict[str, int] = {}
        self._crash_windows: dict[str, list[tuple[float, float]]] = {}

    # -- configuration ------------------------------------------------------

    def set_link(self, a: str, b: str, **overrides) -> LinkFaultProfile:
        """Override the fault profile of one (symmetric) link."""
        profile = replace(self.default, **overrides)
        self._profiles[_link_key(a, b)] = profile
        return profile

    def crash(self, server: str, at: float, duration: float) -> None:
        """Schedule ``server`` down for ``[at, at + duration)``."""
        if duration <= 0:
            raise SimulationError(f"non-positive crash duration {duration!r}")
        self._crash_windows.setdefault(server, []).append((at, at + duration))
        self.trace.append(FaultEvent(at, "crash", server, duration))
        self.trace.append(FaultEvent(at + duration, "restart", server))

    def schedule_crashes(
        self,
        servers: list[str],
        horizon: float,
        mean_interval: float,
        outage: tuple[float, float],
    ) -> int:
        """Draw a crash/restart schedule per server out to ``horizon``.

        Exponential inter-crash gaps (mean ``mean_interval``) with outage
        durations uniform in ``outage`` — all from per-server derived
        RNGs, so the schedule is part of the replayable plan. Returns the
        number of crashes scheduled.
        """
        scheduled = 0
        for server in servers:
            rng = derive_rng(self.seed, "crash", server)
            at = rng.expovariate(1.0 / mean_interval)
            while at < horizon:
                duration = rng.uniform(*outage)
                self.crash(server, at, duration)
                scheduled += 1
                at = at + duration + rng.expovariate(1.0 / mean_interval)
        return scheduled

    def deactivate(self) -> None:
        """Stop injecting (the heal step); pending flap/crash windows
        still run their course on the clock."""
        self.active = False
        self._abort_budget.clear()

    # -- availability (consulted by is_reachable) ---------------------------

    def server_up(self, server: str) -> bool:
        now = self.clock.now
        return not any(
            down <= now < up
            for down, up in self._crash_windows.get(server, ())
        )

    def link_up(self, a: str, b: str) -> bool:
        return self.clock.now >= self._flap_until.get(_link_key(a, b), 0.0)

    def available(self, a: str, b: str) -> bool:
        return self.link_up(a, b) and self.server_up(a) and self.server_up(b)

    # -- attempt lifecycle --------------------------------------------------

    def begin_attempt(self, a: str, b: str) -> None:
        """Draw this attempt's fate; raises :class:`LinkFailure` when it
        is dropped or flapped, arms a mid-exchange abort otherwise."""
        if not self.active:
            return
        key = _link_key(a, b)
        self._abort_budget.pop(key, None)  # stale budget from a past attempt
        profile = self._profiles.get(key, self.default)
        rng = self._rng(key)
        if rng.random() < profile.drop_probability:
            self.trace.append(FaultEvent(self.clock.now, "drop", key))
            raise LinkFailure(f"connection dropped on {key}")
        if rng.random() < profile.flap_probability:
            duration = rng.uniform(*profile.flap_duration)
            self._flap_until[key] = self.clock.now + duration
            self.trace.append(
                FaultEvent(self.clock.now, "flap", key, duration)
            )
            raise LinkFailure(f"link {key} flapped for {duration:.2f}s")
        if rng.random() < profile.abort_probability:
            budget = rng.randint(*profile.abort_after)
            self._abort_budget[key] = budget
            self.trace.append(
                FaultEvent(self.clock.now, "abort-armed", key, budget)
            )

    def on_transfer(self, src: str, dst: str) -> None:
        """Called by the network per transfer; fires an armed abort."""
        if not self.active:
            return
        key = _link_key(src, dst)
        budget = self._abort_budget.get(key)
        if budget is None:
            return
        if budget <= 0:
            del self._abort_budget[key]
            self.trace.append(FaultEvent(self.clock.now, "abort", key))
            raise LinkFailure(f"exchange aborted mid-flight on {key}")
        self._abort_budget[key] = budget - 1

    # -- internals ----------------------------------------------------------

    def _rng(self, key: str) -> random.Random:
        rng = self._rngs.get(key)
        if rng is None:
            rng = derive_rng(self.seed, "link", key)
            self._rngs[key] = rng
        return rng
