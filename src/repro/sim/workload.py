"""Synthetic groupware workload generators.

The paper's subject system was exercised by discussion databases, mail files
and workflow applications. These generators reproduce those access patterns
against any object implementing the small ``NotesDatabase`` protocol
(``create`` / ``update`` / ``delete`` / ``unids``): skewed document updates
(Zipf-distributed hot spots) and discussion-thread growth (topics plus
response hierarchies).

All randomness flows from a caller-provided :class:`random.Random` so runs
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence


def zipf_choice(rng: random.Random, population: Sequence, theta: float):
    """Pick one element with Zipf(theta) skew; theta=0 is uniform.

    The first elements of ``population`` are the hottest. A small population
    is handled exactly (no rejection sampling); cost is O(n) per call which
    is fine for the document-set sizes used in the experiments.
    """
    n = len(population)
    if n == 0:
        raise IndexError("cannot choose from an empty population")
    if theta <= 0:
        return population[rng.randrange(n)]
    weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(population, weights):
        acc += weight
        if point <= acc:
            return item
    return population[-1]


@dataclass
class WorkloadStats:
    """Operation counts produced by a workload run."""

    creates: int = 0
    updates: int = 0
    deletes: int = 0
    reads: int = 0

    @property
    def total(self) -> int:
        return self.creates + self.updates + self.deletes + self.reads


@dataclass
class UpdateWorkload:
    """Skewed create/update/delete mix against one database replica.

    Parameters
    ----------
    db:
        The target database (a ``repro.core.NotesDatabase``).
    rng:
        Seeded random source.
    author:
        Name recorded on every touched document.
    theta:
        Zipf skew for choosing update/delete victims. ``0`` = uniform;
        ``~0.99`` models a hot-spot workload.
    mix:
        (create, update, delete) probabilities; normalised internally.
    """

    db: object
    rng: random.Random
    author: str = "workload/Acme"
    theta: float = 0.0
    mix: tuple[float, float, float] = (0.2, 0.7, 0.1)
    stats: WorkloadStats = field(default_factory=WorkloadStats)
    _counter: int = 0

    def step(self) -> str:
        """Perform one operation; returns 'create' | 'update' | 'delete'."""
        create_p, update_p, delete_p = self.mix
        total = create_p + update_p + delete_p
        point = self.rng.random() * total
        unids = self.db.unids()
        if point < create_p or not unids:
            self._create()
            return "create"
        if point < create_p + update_p:
            self._update(unids)
            return "update"
        self._delete(unids)
        return "delete"

    def run(self, steps: int) -> WorkloadStats:
        """Perform ``steps`` operations and return cumulative stats."""
        for _ in range(steps):
            self.step()
        return self.stats

    def _create(self) -> None:
        self._counter += 1
        self.db.create(
            {
                "Form": "Memo",
                "Subject": f"memo {self._counter} from {self.author}",
                "Body": f"body text {self.rng.random():.6f}",
                "Categories": self.rng.choice(["sales", "eng", "hr", "legal"]),
            },
            author=self.author,
        )
        self.stats.creates += 1

    def _update(self, unids: Sequence) -> None:
        unid = zipf_choice(self.rng, unids, self.theta)
        self.db.update(
            unid,
            {"Body": f"edited {self.rng.random():.6f}", "EditedBy": self.author},
            author=self.author,
        )
        self.stats.updates += 1

    def _delete(self, unids: Sequence) -> None:
        unid = zipf_choice(self.rng, unids, self.theta)
        self.db.delete(unid, author=self.author)
        self.stats.deletes += 1


@dataclass
class DiscussionWorkload:
    """Topic/response discussion-database workload.

    Creates main topics and attaches response documents to random existing
    documents, producing the response hierarchies that Notes discussion
    templates (and view navigation) are built around.
    """

    db: object
    rng: random.Random
    author: str = "poster/Acme"
    response_bias: float = 0.7
    stats: WorkloadStats = field(default_factory=WorkloadStats)
    _topic_counter: int = 0

    def step(self) -> str:
        """Create either a main topic or a response; returns which."""
        unids = self.db.unids()
        if unids and self.rng.random() < self.response_bias:
            parent = self.rng.choice(unids)
            self.db.create(
                {
                    "Form": "Response",
                    "Subject": f"re: {self.rng.randrange(10_000)}",
                    "Body": "I respectfully disagree.",
                },
                author=self.author,
                parent=parent,
            )
            self.stats.creates += 1
            return "response"
        self._topic_counter += 1
        self.db.create(
            {
                "Form": "MainTopic",
                "Subject": f"Topic {self._topic_counter}",
                "Body": "Opening statement.",
                "Categories": self.rng.choice(["general", "random", "help"]),
            },
            author=self.author,
        )
        self.stats.creates += 1
        return "topic"

    def run(self, steps: int) -> WorkloadStats:
        for _ in range(steps):
            self.step()
        return self.stats
