"""Deterministic simulation substrate: virtual time, events, workloads.

Everything in the repro library that needs a notion of "now" (sequence-number
timestamps, replication history, mail delivery latency, cluster failover
timers) takes a :class:`~repro.sim.clock.VirtualClock` so that experiments are
fully deterministic and independent of wall-clock speed.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventScheduler, RepeatingEvent, ScheduledEvent
from repro.sim.faults import (
    FaultEvent,
    FaultPlan,
    LinkFaultProfile,
    derive_rng,
)
from repro.sim.workload import (
    DiscussionWorkload,
    UpdateWorkload,
    WorkloadStats,
    zipf_choice,
)

__all__ = [
    "VirtualClock",
    "EventScheduler",
    "FaultEvent",
    "FaultPlan",
    "LinkFaultProfile",
    "RepeatingEvent",
    "ScheduledEvent",
    "derive_rng",
    "DiscussionWorkload",
    "UpdateWorkload",
    "WorkloadStats",
    "zipf_choice",
]
