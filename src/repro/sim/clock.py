"""A deterministic virtual clock.

The clock counts seconds as a float and only moves when told to. A single
clock instance is shared by every component of one simulated deployment so
that "timestamps" (note sequence times, replication-history entries, mail
delivery times) are mutually comparable and reproducible.

The clock also hands out strictly monotonic *ticks*: two events that occur at
the same virtual second still receive distinct, ordered tick values. Notes
replication relies on this to break ties deterministically.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Deterministic simulated time source.

    Parameters
    ----------
    start:
        Initial virtual time in seconds. Defaults to 0.0.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._tick = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by negative {seconds!r}s")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = float(when)
        return self._now

    def tick(self) -> int:
        """Return a strictly monotonic integer, unique per call."""
        self._tick += 1
        return self._tick

    def timestamp(self) -> tuple[float, int]:
        """Return an orderable (time, tick) pair unique per call."""
        return (self._now, self.tick())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now}, ticks={self._tick})"
