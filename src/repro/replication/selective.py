"""Selective replication: formula-scoped partial replicas.

A replica can declare a selection formula (plus an optional size cap on item
values) so only matching documents flow in — the mechanism mobile/"briefcase"
replicas used to keep laptop databases small. Experiment E12 measures the
traffic reduction as a function of formula selectivity.
"""

from __future__ import annotations

from repro.core.document import Document
from repro.formula import compile_formula


class SelectiveReplication:
    """A compiled replication filter.

    Parameters
    ----------
    formula:
        Selection formula source (``SELECT ...``); documents failing it are
        not replicated to the target.
    truncate_over:
        When set, documents whose :meth:`Document.size` exceeds this byte
        count are *truncated*: large RICH_TEXT items are replaced with a
        placeholder (Notes' "receive summary and 40KB of rich text" option).
    strip_attachments:
        When True, attachment items are removed from transferred documents
        (the "do not receive attachments" replica option) and a marker item
        records what was stripped.
    """

    def __init__(
        self,
        formula: str,
        truncate_over: int | None = None,
        strip_attachments: bool = False,
    ) -> None:
        self.source = formula
        self._formula = compile_formula(formula)
        self.truncate_over = truncate_over
        self.strip_attachments = strip_attachments

    def accepts(self, doc: Document, db=None) -> bool:
        """Whether ``doc`` should replicate to the selective target."""
        return self._formula.select(doc, db=db)

    def prepare(self, doc: Document) -> Document:
        """Apply truncation/stripping (if configured); returns the doc to
        transfer."""
        from repro.core.items import ItemType

        trimmed = doc
        if self.strip_attachments:
            stripped = [
                item.name
                for item in doc
                if item.type == ItemType.ATTACHMENT
            ]
            if stripped:
                trimmed = doc.copy()
                for name in stripped:
                    trimmed.remove_item(name)
                trimmed.set("$StrippedAttachments", sorted(stripped))
        if self.truncate_over is not None and trimmed.size() > self.truncate_over:
            if trimmed is doc:
                trimmed = doc.copy()
            for item in list(trimmed):
                if item.type == ItemType.RICH_TEXT and len(item.value) > 256:
                    trimmed.set(
                        item.name,
                        item.value[:256] + " …[truncated]",
                        ItemType.RICH_TEXT,
                    )
                    trimmed.set("$Truncated", 1)
        return trimmed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SelectiveReplication({self.source!r})"
