"""Multi-master replication: the signature mechanism of Notes/Domino.

Replicas of a database (same replica id, different servers) accept
independent updates and converge through pairwise, incremental replication:

* the **replication history** records the last successful exchange with each
  partner, bounding the scan to documents changed since then;
* **sequence numbers + sequence times** (originator ids) decide which side
  holds the newer revision, with ``$Revisions`` ancestry telling *updates*
  apart from *divergence*;
* **deletion stubs** carry deletes between replicas and are purged after a
  configurable interval;
* genuine divergence produces **conflict documents** — the loser is
  preserved as a ``$Conflict`` response to the winner — or a **field-level
  merge** when the two sides touched disjoint items.

The network is simulated (latency/bandwidth/partitions) so convergence and
traffic experiments are deterministic.
"""

from repro.replication.conflicts import ConflictPolicy, merge_documents
from repro.replication.network import NetworkStats, Server, SimulatedNetwork
from repro.replication.replicator import ReplicationStats, Replicator
from repro.replication.selective import SelectiveReplication
from repro.replication.scheduler import ReplicationScheduler, converged
from repro.replication.topology import ReplicationTopology

__all__ = [
    "ConflictPolicy",
    "NetworkStats",
    "ReplicationScheduler",
    "ReplicationStats",
    "ReplicationTopology",
    "Replicator",
    "SelectiveReplication",
    "Server",
    "SimulatedNetwork",
    "converged",
    "merge_documents",
]
