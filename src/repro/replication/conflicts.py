"""Conflict detection and resolution.

Two replicas that edit the same document between replications have
*diverged*: neither revision's stamp appears in the other's ``$Revisions``
ancestry. Notes' signature answer is the **conflict document**: the losing
revision is preserved as a response note flagged ``$Conflict`` beneath the
winner, so no update is silently discarded and a human (or agent) merges.

Three policies are implemented so experiment E3 can compare them:

``CONFLICT_DOC`` (Notes default)
    Winner replaces the main note; loser becomes a ``$Conflict`` response.
    The conflict response's UNID is *derived deterministically* from the
    losing revision so every replica materialises the identical conflict
    note and replication converges without duplicating it.
``MERGE``
    Field-level merge: items changed on only one side since the divergence
    point are combined. Items genuinely edited on both sides force the
    CONFLICT_DOC path (no silent loss).
``LWW``
    Last-writer-wins — the baseline ablation that silently discards the
    losing revision (and lets E3 count the lost updates).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from repro.core.database import ChangeKind, NotesDatabase
from repro.core.document import Document


class ConflictPolicy(str, Enum):
    CONFLICT_DOC = "conflict_doc"
    MERGE = "merge"
    LWW = "lww"


@dataclass
class ConflictOutcome:
    """What resolution did (for stats and tests)."""

    winner_unid: str
    conflict_doc_unid: str | None = None
    merged: bool = False
    lost_update: bool = False


def detect(local: Document, incoming: Document) -> str:
    """Classify the relation between a local and an incoming revision.

    Returns one of:

    * ``"same"`` — identical revision stamps; nothing to do.
    * ``"incoming_newer"`` — the incoming revision descends from the local
      one (plain update).
    * ``"local_newer"`` — the local revision descends from the incoming one
      (we are ahead; nothing to pull).
    * ``"conflict"`` — divergent histories.
    """
    if local.oid == incoming.oid:
        return "same"
    if incoming.has_ancestor_stamp(local.seq_time) and incoming.seq >= local.seq:
        return "incoming_newer"
    if local.has_ancestor_stamp(incoming.seq_time) and local.seq >= incoming.seq:
        return "local_newer"
    return "conflict"


def divergence_point(local: Document, incoming: Document) -> tuple[float, int] | None:
    """Latest revision stamp both histories share (None when unrelated)."""
    shared = set(map(tuple, local.revisions)) & set(map(tuple, incoming.revisions))
    return max(shared) if shared else None


def conflict_unid(loser: Document) -> str:
    """Deterministic UNID for the conflict note preserving ``loser``.

    Every replica that resolves the same conflict derives the same UNID, so
    the conflict notes themselves converge instead of multiplying.
    """
    digest = hashlib.sha256(
        f"{loser.unid}/{loser.seq}/{loser.seq_time}".encode()
    ).hexdigest()
    return digest[:32].upper()


def make_conflict_document(winner: Document, loser: Document) -> Document:
    """Build the ``$Conflict`` response note preserving the losing revision."""
    conflict = loser.copy()
    conflict.unid = conflict_unid(loser)
    conflict.parent_unid = winner.unid
    conflict.note_id = 0
    conflict.set("$Conflict", "1")
    conflict.item_times["$Conflict"] = loser.seq_time
    return conflict


def merge_documents(local: Document, incoming: Document) -> Document | None:
    """Field-level merge, or None when the same item changed on both sides.

    Uses per-item change stamps relative to the divergence point: an item is
    "touched" on a side when its stamp is later than the last shared
    revision. Disjoint touch-sets merge cleanly; overlapping ones do not.
    The merged document is *deterministic* — both replicas build an
    identical result (same items, same envelope) so it replicates as "same".
    """
    base_stamp = divergence_point(local, incoming)
    if base_stamp is None:
        return None

    def touched(doc: Document) -> set[str]:
        return {
            name
            for name, stamp in doc.item_times.items()
            if tuple(stamp) > base_stamp
        }

    local_touched = touched(local)
    incoming_touched = touched(incoming)
    if local_touched & incoming_touched:
        return None

    winner = incoming if incoming.oid.newer_than(local.oid) else local
    merged = winner.copy()
    for side, names in ((local, local_touched), (incoming, incoming_touched)):
        for name in names:
            item = side.item(name)
            if item is None:
                if name in merged:
                    merged.remove_item(name)
            else:
                merged.set(name, item)
            merged.item_times[name] = tuple(side.item_times[name])
    # Deterministic merged envelope: both replicas compute the same stamp.
    merge_stamp = max(tuple(local.seq_time), tuple(incoming.seq_time))
    merged.seq = max(local.seq, incoming.seq) + 1
    merged.seq_time = merge_stamp
    merged.modified = merge_stamp[0]
    history = {tuple(s) for s in local.revisions} | {
        tuple(s) for s in incoming.revisions
    }
    history.add(merge_stamp)
    merged.revisions = sorted(history)[-64:]
    merged.updated_by = sorted(set(local.updated_by) | set(incoming.updated_by))
    return merged


def resolve(
    db: NotesDatabase,
    local: Document,
    incoming: Document,
    policy: ConflictPolicy,
) -> ConflictOutcome:
    """Apply ``policy`` to a detected conflict inside ``db``.

    ``local`` is the document currently in ``db``; ``incoming`` arrived from
    the replication partner.
    """
    if policy == ConflictPolicy.MERGE:
        merged = merge_documents(local, incoming)
        if merged is not None:
            db.raw_put(merged, ChangeKind.REPLACE)
            return ConflictOutcome(winner_unid=merged.unid, merged=True)
        # overlapping edits: fall through to conflict documents
        policy = ConflictPolicy.CONFLICT_DOC

    incoming_wins = incoming.oid.newer_than(local.oid)
    winner = incoming if incoming_wins else local
    loser = local if incoming_wins else incoming

    if policy == ConflictPolicy.LWW:
        if incoming_wins:
            db.raw_put(incoming.copy(), ChangeKind.REPLACE)
        return ConflictOutcome(winner_unid=winner.unid, lost_update=True)

    conflict = make_conflict_document(winner, loser)
    if incoming_wins:
        db.raw_put(incoming.copy(), ChangeKind.REPLACE)
    db.raw_put(conflict, ChangeKind.REPLACE)
    return ConflictOutcome(
        winner_unid=winner.unid, conflict_doc_unid=conflict.unid
    )
