"""Replication topologies: which servers replicate with which, how often.

Domino deployments wired servers into hub-and-spoke, ring or mesh patterns
through connection documents. A topology here is a set of (server, server,
interval) edges plus builders for the classic shapes; the scheduler turns
edges into recurring replication events. Experiment E4 compares the shapes'
convergence behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReplicationError


@dataclass(frozen=True)
class ConnectionDoc:
    """One scheduled replication connection (symmetric exchange).

    ``selective_a``/``selective_b`` are optional selection-formula sources
    restricting what each endpoint *receives* over this connection — the
    per-connection replication formulas Domino connection documents
    carried (e.g. a branch server only pulling its own region's docs).
    """

    server_a: str
    server_b: str
    interval: float  # seconds between scheduled exchanges
    selective_a: str | None = None  # filters what server_a receives
    selective_b: str | None = None  # filters what server_b receives

    def __post_init__(self) -> None:
        if self.server_a == self.server_b:
            raise ReplicationError("connection must join two distinct servers")
        if self.interval <= 0:
            raise ReplicationError(f"bad interval {self.interval!r}")


class ReplicationTopology:
    """A named set of connection documents."""

    def __init__(self, name: str = "custom") -> None:
        self.name = name
        self.connections: list[ConnectionDoc] = []

    def connect(
        self,
        a: str,
        b: str,
        interval: float = 3600.0,
        selective_a: str | None = None,
        selective_b: str | None = None,
    ) -> ConnectionDoc:
        doc = ConnectionDoc(a, b, interval, selective_a, selective_b)
        self.connections.append(doc)
        return doc

    @property
    def servers(self) -> list[str]:
        seen: dict[str, None] = {}
        for connection in self.connections:
            seen.setdefault(connection.server_a)
            seen.setdefault(connection.server_b)
        return list(seen)

    def neighbours(self, server: str) -> list[str]:
        out = []
        for connection in self.connections:
            if connection.server_a == server:
                out.append(connection.server_b)
            elif connection.server_b == server:
                out.append(connection.server_a)
        return out

    def diameter(self) -> int:
        """Longest shortest-path between any two servers (in hops)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.servers)
        for connection in self.connections:
            graph.add_edge(connection.server_a, connection.server_b)
        if not nx.is_connected(graph):
            raise ReplicationError("topology is not connected")
        return nx.diameter(graph)

    # -- builders ---------------------------------------------------------

    @classmethod
    def ring(cls, servers: list[str], interval: float = 3600.0) -> "ReplicationTopology":
        if len(servers) < 2:
            raise ReplicationError("ring needs at least 2 servers")
        topology = cls("ring")
        for index, server in enumerate(servers):
            topology.connect(server, servers[(index + 1) % len(servers)], interval)
        if len(servers) == 2:
            topology.connections = topology.connections[:1]
        return topology

    @classmethod
    def hub_spoke(
        cls, hub: str, spokes: list[str], interval: float = 3600.0
    ) -> "ReplicationTopology":
        if not spokes:
            raise ReplicationError("hub-and-spoke needs at least one spoke")
        topology = cls("hub_spoke")
        for spoke in spokes:
            topology.connect(hub, spoke, interval)
        return topology

    @classmethod
    def mesh(cls, servers: list[str], interval: float = 3600.0) -> "ReplicationTopology":
        if len(servers) < 2:
            raise ReplicationError("mesh needs at least 2 servers")
        topology = cls("mesh")
        for index, server in enumerate(servers):
            for other in servers[index + 1 :]:
                topology.connect(server, other, interval)
        return topology

    @classmethod
    def chain(cls, servers: list[str], interval: float = 3600.0) -> "ReplicationTopology":
        if len(servers) < 2:
            raise ReplicationError("chain needs at least 2 servers")
        topology = cls("chain")
        for left, right in zip(servers, servers[1:]):
            topology.connect(left, right, interval)
        return topology
