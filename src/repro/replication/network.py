"""Simulated server network: latency, bandwidth, partitions, traffic stats.

Stands in for the corporate WAN the paper's deployments ran over. The model
is intentionally simple — per-link latency plus bytes/bandwidth — because
the replication experiments care about *how much* is transferred and *when
links are unavailable*, not about packets.

Beyond the binary ``partitioned`` flag, a seeded
:class:`~repro.sim.faults.FaultPlan` can be installed to inject
probabilistic drops, self-healing flaps, mid-exchange aborts and server
crash windows — all replayable from one seed (see ``repro.sim.faults``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkFailure, ReplicationError
from repro.core.database import NotesDatabase
from repro.sim.clock import VirtualClock
from repro.sim.faults import FaultPlan


@dataclass
class NetworkStats:
    """Cumulative traffic counters (global and per directed link)."""

    bytes_sent: int = 0
    messages: int = 0
    by_link: dict = field(default_factory=dict)

    def record(self, src: str, dst: str, nbytes: int) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        key = (src, dst)
        sent, count = self.by_link.get(key, (0, 0))
        self.by_link[key] = (sent + nbytes, count + 1)


class Server:
    """A named host carrying database replicas."""

    def __init__(self, name: str, clock: VirtualClock) -> None:
        self.name = name
        self.clock = clock
        self.databases: dict[str, NotesDatabase] = {}  # replica_id -> db
        self.up = True

    def add_database(self, db: NotesDatabase) -> NotesDatabase:
        if db.replica_id in self.databases:
            raise ReplicationError(
                f"server {self.name} already holds replica {db.replica_id}"
            )
        db.server = self.name
        self.databases[db.replica_id] = db
        return db

    def replica_of(self, replica_id: str) -> NotesDatabase | None:
        return self.databases.get(replica_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Server({self.name!r}, {len(self.databases)} dbs, up={self.up})"


@dataclass
class _Link:
    latency: float = 0.05
    bandwidth: float = 1_000_000.0  # bytes per second
    partitioned: bool = False


class SimulatedNetwork:
    """Registry of servers plus the links between them."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.servers: dict[str, Server] = {}
        self._links: dict[tuple[str, str], _Link] = {}
        self.default_link = _Link()
        self.stats = NetworkStats()
        self.fault_plan: FaultPlan | None = None

    # -- fault injection ----------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> FaultPlan:
        """Install (or replace) the fault plan consulted on every attempt,
        reachability check and transfer."""
        self.fault_plan = plan
        return plan

    def begin_attempt(self, src: str, dst: str) -> None:
        """Open a logical exchange/hop attempt on a link.

        Raises :class:`LinkFailure` when the route is down or the fault
        plan drops/flaps the attempt; may arm a mid-exchange abort that a
        later :meth:`transfer` on the link fires. A no-op without faults
        beyond the reachability check, so callers invoke it
        unconditionally at attempt start.
        """
        if not self.is_reachable(src, dst):
            raise LinkFailure(f"no route from {src} to {dst}")
        if self.fault_plan is not None:
            self.fault_plan.begin_attempt(src, dst)

    # -- membership -----------------------------------------------------

    def add_server(self, name: str) -> Server:
        if name in self.servers:
            raise ReplicationError(f"duplicate server name {name!r}")
        server = Server(name, self.clock)
        self.servers[name] = server
        return server

    def server(self, name: str) -> Server:
        try:
            return self.servers[name]
        except KeyError:
            raise ReplicationError(f"unknown server {name!r}") from None

    # -- link management ----------------------------------------------------

    def set_link(
        self,
        a: str,
        b: str,
        latency: float | None = None,
        bandwidth: float | None = None,
    ) -> None:
        """Configure the (symmetric) link between two servers."""
        link = self._link(a, b, create=True)
        if latency is not None:
            link.latency = latency
        if bandwidth is not None:
            link.bandwidth = bandwidth

    def partition(self, a: str, b: str, partitioned: bool = True) -> None:
        """Cut (or heal) the link between two servers."""
        self._link(a, b, create=True).partitioned = partitioned

    def is_reachable(self, a: str, b: str) -> bool:
        if a == b:
            return True
        if not self.server(a).up or not self.server(b).up:
            return False
        if self.fault_plan is not None and not self.fault_plan.available(a, b):
            return False
        return not self._link(a, b).partitioned

    def _link(self, a: str, b: str, create: bool = False) -> _Link:
        key = (min(a, b), max(a, b))
        link = self._links.get(key)
        if link is None:
            if not create:
                return self.default_link
            link = _Link(
                latency=self.default_link.latency,
                bandwidth=self.default_link.bandwidth,
            )
            self._links[key] = link
        return link

    # -- transfer ---------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        """Account a transfer and return its simulated duration in seconds.

        Raises :class:`LinkFailure` when the route is down or an armed
        mid-exchange abort fires; a failed transfer's bytes are not
        accounted (they never arrived).
        """
        if not self.is_reachable(src, dst):
            raise LinkFailure(f"no route from {src} to {dst}")
        if self.fault_plan is not None:
            self.fault_plan.on_transfer(src, dst)
        link = self._link(src, dst)
        self.stats.record(src, dst, nbytes)
        return link.latency + (nbytes / link.bandwidth if link.bandwidth else 0.0)
