"""Replication scheduling and convergence checking.

The scheduler walks a topology's connection documents and fires a symmetric
replication exchange per edge — either on the shared discrete-event clock
(``attach``) or synchronously round by round (``run_round``, which the
convergence experiments use because "rounds to convergence" is the metric).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.database import NotesDatabase
from repro.errors import ReplicationError
from repro.replication.network import SimulatedNetwork
from repro.replication.replicator import ReplicationStats, Replicator
from repro.replication.topology import ReplicationTopology
from repro.sim.events import EventScheduler


def converged(databases: Iterable[NotesDatabase]) -> bool:
    """Whether every replica holds the identical document/stub state."""
    snapshots = []
    for db in databases:
        docs = {
            doc.unid: (doc.seq, tuple(doc.seq_time)) for doc in db.all_documents()
        }
        stubs = {unid for unid in db.stubs}
        snapshots.append((docs, stubs))
    first_docs, first_stubs = snapshots[0]
    return all(
        docs == first_docs and stubs == first_stubs
        for docs, stubs in snapshots[1:]
    )


class ReplicationScheduler:
    """Drives a topology's connections over a network of servers."""

    def __init__(
        self,
        network: SimulatedNetwork,
        topology: ReplicationTopology,
        replicator: Replicator | None = None,
    ) -> None:
        self.network = network
        self.topology = topology
        self.replicator = replicator or Replicator(network=network)
        self.rounds = 0
        self.total = ReplicationStats()

    def _exchange(self, server_a: str, server_b: str,
                  connection=None) -> ReplicationStats:
        from repro.replication.selective import SelectiveReplication

        stats = ReplicationStats()
        a = self.network.server(server_a)
        b = self.network.server(server_b)
        if not self.network.is_reachable(server_a, server_b):
            return stats
        selective_a = selective_b = None
        if connection is not None:
            if connection.selective_a:
                selective_a = SelectiveReplication(connection.selective_a)
            if connection.selective_b:
                selective_b = SelectiveReplication(connection.selective_b)
        for replica_id, db_a in a.databases.items():
            db_b = b.replica_of(replica_id)
            if db_b is None:
                continue
            stats.merge_from(
                self.replicator.replicate(
                    db_a, db_b,
                    selective_a=selective_a, selective_b=selective_b,
                )
            )
        return stats

    def run_round(self) -> ReplicationStats:
        """Fire every connection once (in document order); returns stats."""
        stats = ReplicationStats()
        for connection in self.topology.connections:
            stats.merge_from(
                self._exchange(connection.server_a, connection.server_b,
                               connection)
            )
        self.rounds += 1
        self.total.merge_from(stats)
        return stats

    def rounds_to_convergence(
        self, databases: list[NotesDatabase], max_rounds: int = 64
    ) -> int:
        """Run rounds until all ``databases`` converge; returns the count.

        The clock advances a little between rounds so replication history
        entries are distinguishable. Raises after ``max_rounds``.
        """
        if converged(databases):
            return 0
        for round_number in range(1, max_rounds + 1):
            self.network.clock.advance(1.0)
            self.run_round()
            if converged(databases):
                return round_number
        raise ReplicationError(
            f"no convergence after {max_rounds} rounds "
            f"(topology={self.topology.name})"
        )

    def attach(self, events: EventScheduler) -> None:
        """Schedule each connection on the discrete-event loop."""
        for connection in self.topology.connections:
            events.every(
                connection.interval,
                lambda c=connection: self._exchange(c.server_a, c.server_b, c),
                label=f"repl {connection.server_a}<->{connection.server_b}",
            )
