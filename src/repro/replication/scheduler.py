"""Replication scheduling, edge health and convergence checking.

The scheduler walks a topology's connection documents and fires a symmetric
replication exchange per edge — either on the shared discrete-event clock
(``attach``) or synchronously round by round (``run_round``, which the
convergence experiments use because "rounds to convergence" is the metric).

Links are *expected* to fail (drops, flaps, crashes — see
``repro.sim.faults``), so every edge carries a
:class:`~repro.core.stats.LinkHealth` record: failed exchanges retry with
exponential backoff plus seeded jitter, and repeated failures open a
circuit breaker (healthy → degraded → suspended) that only lets periodic
probes through until one succeeds. Nothing is skipped silently — every
unreachable, deferred, failed and retried edge is counted in both the
per-edge health record and the round's :class:`ReplicationStats`.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.database import NotesDatabase
from repro.core.stats import LinkHealth
from repro.errors import LinkFailure, ReplicationError
from repro.replication.network import SimulatedNetwork
from repro.replication.replicator import ReplicationStats, Replicator
from repro.replication.topology import ConnectionDoc, ReplicationTopology
from repro.sim.events import EventScheduler


def converged(databases: Iterable[NotesDatabase]) -> bool:
    """Whether every replica holds the identical document/stub state.

    Fast path: the rolling ``state_fingerprint`` (O(1) to read) plus the
    stub key set. Equal fingerprints mean identical live-document
    revisions, so matching fingerprints and stubs decide convergence
    without building snapshots. Unequal fingerprints fall back to the
    full O(total docs) comparison, because the fingerprint also covers
    the *trash* — which is local-only and may legitimately differ
    between otherwise-converged replicas.
    """
    snapshots = list(databases)
    if len(snapshots) < 2:
        return True
    first = snapshots[0]
    fingerprint = first.state_fingerprint()
    stubs = set(first.stubs)
    if all(
        db.state_fingerprint() == fingerprint and set(db.stubs) == stubs
        for db in snapshots[1:]
    ):
        return True
    first_docs = {
        doc.unid: (doc.seq, tuple(doc.seq_time)) for doc in first.all_documents()
    }
    for db in snapshots[1:]:
        docs = {
            doc.unid: (doc.seq, tuple(doc.seq_time)) for doc in db.all_documents()
        }
        if docs != first_docs or set(db.stubs) != stubs:
            return False
    return True


class ReplicationScheduler:
    """Drives a topology's connections over a network of servers.

    Parameters
    ----------
    backoff_base / backoff_cap:
        First-failure retry delay in virtual seconds, doubling per
        consecutive failure up to the cap.
    failure_threshold:
        Consecutive failures that open an edge's circuit breaker.
    probe_interval:
        Base delay between probes while an edge is suspended (also
        doubling, capped at ``backoff_cap``).
    jitter:
        Backoff delays stretch by up to this fraction, drawn from the
        scheduler's own seeded RNG — deterministic per ``seed``, and
        desynchronizing retries that failed together.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        topology: ReplicationTopology,
        replicator: Replicator | None = None,
        *,
        backoff_base: float = 1.0,
        backoff_cap: float = 32.0,
        failure_threshold: int = 3,
        probe_interval: float = 4.0,
        jitter: float = 0.25,
        seed: int = 0xFA17,
    ) -> None:
        self.network = network
        self.topology = topology
        self.replicator = replicator or Replicator(network=network)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.jitter = jitter
        self.rounds = 0
        self.total = ReplicationStats()
        self.edge_health: dict[tuple[str, str], LinkHealth] = {}
        self._rng = random.Random(seed)

    def _edge(self, connection: ConnectionDoc) -> LinkHealth:
        key = (connection.server_a, connection.server_b)
        health = self.edge_health.get(key)
        if health is None:
            health = LinkHealth()
            self.edge_health[key] = health
        return health

    def _exchange(self, server_a: str, server_b: str,
                  connection=None, into: ReplicationStats | None = None,
                  ) -> ReplicationStats:
        """Fire one edge's symmetric exchange for every shared replica.

        Merges into ``into`` pull by pull, so the partial work of an
        exchange that dies mid-flight is still accounted. Raises
        :class:`LinkFailure` when the link drops it (callers count the
        failure; nothing is swallowed).
        """
        from repro.replication.selective import SelectiveReplication

        stats = into if into is not None else ReplicationStats()
        a = self.network.server(server_a)
        b = self.network.server(server_b)
        selective_a = selective_b = None
        if connection is not None:
            if connection.selective_a:
                selective_a = SelectiveReplication(connection.selective_a)
            if connection.selective_b:
                selective_b = SelectiveReplication(connection.selective_b)
        for replica_id, db_a in a.databases.items():
            db_b = b.replica_of(replica_id)
            if db_b is None:
                continue
            if self.replicator.is_noop(db_a, db_b):
                stats.noop_pairs += 1
                continue
            self.replicator.replicate(
                db_a, db_b,
                selective_a=selective_a, selective_b=selective_b,
                into=stats,
            )
        return stats

    def _attempt(self, connection: ConnectionDoc,
                 stats: ReplicationStats) -> bool:
        """Try one edge, honouring its health gate; returns True on a
        completed exchange."""
        edge = self._edge(connection)
        now = self.network.clock.now
        if not edge.ready(now):
            edge.record_deferral()
            stats.edges_deferred += 1
            return False
        if not self.network.is_reachable(connection.server_a,
                                         connection.server_b):
            edge.record_skip()
            stats.edges_skipped += 1
            return False
        if edge.begin_attempt():
            stats.edges_retried += 1
        stats.edges_attempted += 1
        try:
            self._exchange(connection.server_a, connection.server_b,
                           connection, into=stats)
        except LinkFailure as exc:
            stats.edges_failed += 1
            edge.record_failure(
                now,
                str(exc),
                backoff_base=self.backoff_base,
                backoff_cap=self.backoff_cap,
                failure_threshold=self.failure_threshold,
                probe_interval=self.probe_interval,
                jitter=self.jitter * self._rng.random(),
            )
            return False
        edge.record_success()
        return True

    def run_round(self) -> ReplicationStats:
        """Fire every connection once (in document order); returns stats."""
        stats = ReplicationStats()
        for connection in self.topology.connections:
            self._attempt(connection, stats)
        self.rounds += 1
        self.total.merge_from(stats)
        return stats

    def rounds_to_convergence(
        self, databases: list[NotesDatabase], max_rounds: int = 64
    ) -> int:
        """Run rounds until all ``databases`` converge; returns the count.

        The clock advances a little between rounds so replication history
        entries are distinguishable (and backoff windows expire). Raises
        after ``max_rounds``.
        """
        if converged(databases):
            return 0
        for round_number in range(1, max_rounds + 1):
            self.network.clock.advance(1.0)
            self.run_round()
            if converged(databases):
                return round_number
        raise ReplicationError(
            f"no convergence after {max_rounds} rounds "
            f"(topology={self.topology.name})"
        )

    def attach(self, events: EventScheduler) -> None:
        """Schedule each connection on the discrete-event loop.

        A failed attempt additionally schedules a one-shot retry at the
        edge's backoff deadline, so recovery does not wait for the next
        full interval; deferred and skipped attempts just wait.
        """
        for connection in self.topology.connections:
            label = f"repl {connection.server_a}<->{connection.server_b}"

            def fire(c=connection, label=label) -> None:
                stats = ReplicationStats()
                self._attempt(c, stats)
                self.total.merge_from(stats)
                if stats.edges_failed:
                    edge = self._edge(c)
                    if edge.next_attempt_at > self.network.clock.now:
                        events.at(edge.next_attempt_at,
                                  lambda: fire(c, label),
                                  label=label + " retry")

            events.every(connection.interval, fire, label=label)
