"""The replicator: pairwise incremental convergence of two replicas.

One *pass* pulls changes from a source replica into a target replica:

1. Read the target's replication history entry for the source; only notes
   changed at/after that cutoff are candidates (the incremental scan).
2. For each candidate document, compare originator ids and ``$Revisions``
   ancestry against the target's copy: install plain updates, skip already
   known revisions, and hand genuine divergence to the conflict policy.
3. Deletion stubs propagate the same way; a stub beats a document revision
   it supersedes, while a document edited *after* (more revisions than) the
   deletion survives it.
4. On success, record the pass in the replication history.

``full_copy`` implements the naive baseline (ship everything every time) and
``versioning="timestamp"`` the clock-skew-vulnerable ablation; experiment E1
compares all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkFailure, ReplicationError
from repro.core.database import ChangeKind, DeletionStub, NotesDatabase
from repro.core.document import Document
from repro.replication.conflicts import ConflictPolicy, detect, resolve
from repro.replication.network import SimulatedNetwork
from repro.replication.selective import SelectiveReplication

# Safety slack subtracted from the history cutoff so boundary-time changes
# are re-examined rather than missed (re-examining is idempotent).
CUTOFF_SLACK = 1e-9


@dataclass
class ReplicationStats:
    """Outcome of one replication pass (or an accumulation of passes)."""

    docs_examined: int = 0
    # Journal/scan entries the source had to look at to find the
    # candidates: O(changes) with the update-sequence journal, O(database)
    # for the pre-journal scan baseline.
    docs_scanned: int = 0
    docs_transferred: int = 0
    docs_skipped: int = 0
    stubs_transferred: int = 0
    conflicts: int = 0
    merges: int = 0
    lost_updates: int = 0
    bytes_transferred: int = 0
    seconds: float = 0.0
    # Per-link seq cursors checkpointed mid-pass (resumable exchanges).
    cursor_checkpoints: int = 0
    # Edge-level outcomes, filled in by the scheduler: a skipped or
    # failed edge is never indistinguishable from a no-op exchange.
    edges_attempted: int = 0
    edges_skipped: int = 0  # unreachable when the round reached them
    edges_deferred: int = 0  # gated out by backoff / open breaker
    edges_failed: int = 0  # attempt died (drop, flap, mid-exchange abort)
    edges_retried: int = 0  # attempts made while recovering from failure
    # Replica pairs skipped because both seq cursors already sat at the
    # partner's update_seq — a no-op decided without opening the link.
    noop_pairs: int = 0
    conflict_unids: list[str] = field(default_factory=list)

    def merge_from(self, other: "ReplicationStats") -> None:
        self.docs_examined += other.docs_examined
        self.docs_scanned += other.docs_scanned
        self.docs_transferred += other.docs_transferred
        self.docs_skipped += other.docs_skipped
        self.stubs_transferred += other.stubs_transferred
        self.conflicts += other.conflicts
        self.merges += other.merges
        self.lost_updates += other.lost_updates
        self.bytes_transferred += other.bytes_transferred
        self.seconds += other.seconds
        self.cursor_checkpoints += other.cursor_checkpoints
        self.edges_attempted += other.edges_attempted
        self.edges_skipped += other.edges_skipped
        self.edges_deferred += other.edges_deferred
        self.edges_failed += other.edges_failed
        self.edges_retried += other.edges_retried
        self.noop_pairs += other.noop_pairs
        self.conflict_unids.extend(other.conflict_unids)


_STUB_WIRE_SIZE = 96  # bytes accounted per deletion stub on the wire


class Replicator:
    """Runs replication passes over a simulated network.

    Parameters
    ----------
    network:
        The :class:`SimulatedNetwork` used for reachability and traffic
        accounting. Optional — pass None for pure in-process replication.
    conflict_policy:
        How divergent edits are resolved (default: conflict documents).
    versioning:
        ``"oid"`` (sequence numbers + ancestry, the Notes design) or
        ``"timestamp"`` (modified-time comparison, the ablation that loses
        updates under clock skew).
    field_level:
        When True, a plain update of a document the target already holds
        transfers only the *items changed since the target's revision*
        (plus the envelope) instead of the whole note — the R5 field-level
        replication optimisation. Semantically identical; only the wire
        accounting and the reconstruction path differ.
    journal:
        When True (default), passes read the source's update-sequence
        journal: the history records the partner's last-seen sequence and
        a pass walks only the journal suffix — O(changes). A history with
        no sequence entry (pre-journal, or after ``clear_replication_
        history``) falls back to the timestamp cutoff. When False, every
        pass uses the pre-journal O(database) scan — the ablation baseline
        benchmark E13 measures against.
    batch_size:
        Journal entries applied per resumable batch. After each full
        batch the per-link seq cursor is checkpointed on both ends, so an
        exchange killed mid-flight (link flap, crash, injected abort)
        resumes from the cursor — re-examining at most one batch — instead
        of re-reading the whole suffix.
    resumable:
        When False, the all-or-nothing ablation benchmark E16 measures
        against: documents are *staged* during the pass and installed
        only if the whole exchange completes, with the cursor recorded
        only at the end — an interrupted exchange wastes everything it
        transferred and restarts from the previous cursor, exactly the
        checkpoint-free behaviour resumable exchanges exist to avoid.
    """

    def __init__(
        self,
        network: SimulatedNetwork | None = None,
        conflict_policy: ConflictPolicy = ConflictPolicy.CONFLICT_DOC,
        versioning: str = "oid",
        field_level: bool = False,
        journal: bool = True,
        batch_size: int = 64,
        resumable: bool = True,
    ) -> None:
        if versioning not in ("oid", "timestamp"):
            raise ReplicationError(f"unknown versioning {versioning!r}")
        if batch_size < 1:
            raise ReplicationError(f"bad batch_size {batch_size!r}")
        self.network = network
        self.conflict_policy = conflict_policy
        self.versioning = versioning
        self.field_level = field_level
        self.journal = journal
        self.batch_size = batch_size
        self.resumable = resumable

    # -- public passes -----------------------------------------------------

    def pull(
        self,
        target: NotesDatabase,
        source: NotesDatabase,
        selective: SelectiveReplication | None = None,
        into: ReplicationStats | None = None,
    ) -> ReplicationStats:
        """One incremental pass: bring ``target`` up to date from ``source``.

        ``into`` lets a caller keep the partial counters of a pass that a
        :class:`~repro.errors.LinkFailure` kills mid-flight — the
        schedulers pass their round accumulator so interrupted work is
        still accounted.
        """
        self._check_pair(source, target)
        stats = into if into is not None else ReplicationStats()
        if self.network is not None:
            # May raise LinkFailure (drop / flap) and may arm a
            # mid-exchange abort that a later transfer fires.
            self.network.begin_attempt(source.server, target.server)
        # Capture the source's sequence BEFORE applying anything: observers
        # of the target (cluster push-back, agents) may write into the
        # source mid-pass, and those writes must be re-examined next time
        # — the seq-domain analogue of CUTOFF_SLACK.
        source_seq = source.update_seq
        seq_cutoff = (
            target.replication_seq.get((source.server, "receive"))
            if self.journal
            else None
        )
        if seq_cutoff is None and self.journal and (
            (source.server, "receive") not in target.replication_history
        ):
            # A link with no history at all (first exchange, or after a
            # history clear) is journal-driven from seq 0, so even the
            # initial bulk pull batches and checkpoints. Only a history
            # written by the pre-journal scan replicator (a timestamp
            # with no seq) still takes the timestamp fallback below.
            seq_cutoff = 0
        if seq_cutoff is not None:
            self._pull_journal(target, source, seq_cutoff, selective, stats)
        else:
            cutoff = (
                target.replication_history.get((source.server, "receive"), 0.0)
                - CUTOFF_SLACK
            )
            if self.journal:
                docs, stubs = source.changed_since(cutoff)
            else:
                docs, stubs = source.changed_since_scan(cutoff)
            stats.docs_scanned += source.last_scan_cost
            for doc in sorted(docs, key=lambda d: (d.modified, d.unid)):
                self._consider_document(target, source, doc, selective, stats)
            for stub in sorted(stubs, key=lambda s: (s.deleted_at, s.unid)):
                self._consider_stub(target, stub, stats)
        # The cutoff is compared against the SOURCE's local modification
        # times on the next pass, so it must be recorded in the source's
        # clock domain — replicas may have skewed clocks.
        now = source.clock.now
        target.replication_history[(source.server, "receive")] = now
        source.replication_history[(target.server, "send")] = now
        if self.journal:
            self._record_cursor(source, target, source_seq)
        return stats

    def _pull_journal(
        self,
        target: NotesDatabase,
        source: NotesDatabase,
        seq_cutoff: int,
        selective: SelectiveReplication | None,
        stats: ReplicationStats,
    ) -> None:
        """The journal fast path, applied in journal order.

        Resumable mode installs as it goes and checkpoints the per-link
        seq cursor after every full batch, so an exchange killed between
        checkpoints re-examines at most ``batch_size`` entries on the
        next attempt. The all-or-nothing ablation stages every install
        and applies them only once the whole suffix transferred.
        """
        entries = source.journal_entries_since(seq_cutoff)
        stats.docs_scanned += source.last_scan_cost
        staged: list | None = [] if not self.resumable else None
        in_batch = 0
        for seq, note in entries:
            if isinstance(note, DeletionStub):
                self._consider_stub(target, note, stats, staged)
            else:
                self._consider_document(
                    target, source, note, selective, stats, staged
                )
            in_batch += 1
            if staged is None and in_batch >= self.batch_size:
                self._record_cursor(source, target, seq)
                stats.cursor_checkpoints += 1
                in_batch = 0
        if staged is not None:
            for apply in staged:
                apply(stats)

    def _record_cursor(
        self, source: NotesDatabase, target: NotesDatabase, seq: int
    ) -> None:
        """Advance both ends' seq cursors for this link (never backwards).

        The ``"receive"`` side is the resume point of the next pull; the
        ``"send"`` side is the stub-purge acknowledgement — both are safe
        to record mid-pass because every journal entry at/below ``seq``
        has been applied to (or judged already present in) the target.
        """
        receive = (source.server, "receive")
        if seq > target.replication_seq.get(receive, -1):
            target.replication_seq[receive] = seq
        send = (target.server, "send")
        if seq > source.replication_seq.get(send, -1):
            source.replication_seq[send] = seq

    def is_noop(self, a: NotesDatabase, b: NotesDatabase) -> bool:
        """Whether an exchange between ``a`` and ``b`` would apply nothing.

        True when each side's receive cursor already sits at the other's
        ``update_seq`` — decidable from two dict reads, without opening
        the link or walking any journal. The scheduler uses this to skip
        quiet edges entirely (they are not even exposed to link faults).
        """
        return (
            self.journal
            and a.replication_seq.get((b.server, "receive")) == b.update_seq
            and b.replication_seq.get((a.server, "receive")) == a.update_seq
        )

    def replicate(
        self,
        a: NotesDatabase,
        b: NotesDatabase,
        selective_a: SelectiveReplication | None = None,
        selective_b: SelectiveReplication | None = None,
        into: ReplicationStats | None = None,
    ) -> ReplicationStats:
        """A full exchange: pull into ``a``, then pull into ``b``.

        ``selective_a`` filters what *a receives*; ``selective_b`` what *b*
        receives.
        """
        stats = into if into is not None else ReplicationStats()
        self.pull(a, b, selective=selective_a, into=stats)
        self.pull(b, a, selective=selective_b, into=stats)
        return stats

    def full_copy(
        self, target: NotesDatabase, source: NotesDatabase
    ) -> ReplicationStats:
        """Baseline: transfer *every* document regardless of history."""
        self._check_pair(source, target)
        stats = ReplicationStats()
        source_seq = source.update_seq
        for doc in source.all_documents():
            stats.docs_examined += 1
            stats.docs_scanned += 1
            self._transfer(source, target, doc, stats)
            self._install(target, doc, stats)
        for stub in source.stubs.values():
            self._consider_stub(target, stub, stats)
        target.replication_history[(source.server, "receive")] = source.clock.now
        if self.journal:
            target.replication_seq[(source.server, "receive")] = source_seq
        return stats

    # -- document path ------------------------------------------------------

    def _consider_document(
        self,
        target: NotesDatabase,
        source: NotesDatabase,
        doc: Document,
        selective: SelectiveReplication | None,
        stats: ReplicationStats,
        sink: list | None = None,
    ) -> None:
        """Examine one candidate; install, skip, or resolve a conflict.

        With ``sink`` (the all-or-nothing ablation) the wire transfer is
        still accounted now, but the target-mutating step is appended to
        ``sink`` as a deferred action instead of applied — each pass
        touches any UNID at most once, so decisions made against the
        pre-exchange target state stay valid at apply time.
        """
        stats.docs_examined += 1
        if selective is not None:
            if not selective.accepts(doc, db=source):
                stats.docs_skipped += 1
                return
            doc = selective.prepare(doc)
        # A deletion stub on the target beats an older incoming revision.
        stub = target.stubs.get(doc.unid)
        if stub is not None:
            if self._stub_beats_doc(stub, doc):
                stats.docs_skipped += 1
                return
        local = target.try_get(doc.unid)
        if local is None:
            self._transfer(source, target, doc, stats)
            self._install(target, doc, stats, sink)
            return
        relation = self._relation(local, doc)
        if relation == "same" or relation == "local_newer":
            stats.docs_skipped += 1
            return
        if relation == "incoming_newer":
            if self.field_level:
                self._install_field_delta(
                    source, target, local, doc, stats, sink
                )
            else:
                self._transfer(source, target, doc, stats)
                self._install(target, doc, stats, sink)
            return
        self._transfer(source, target, doc, stats)
        incoming = doc.copy()

        def apply(stats_: ReplicationStats) -> None:
            outcome = resolve(target, local, incoming, self.conflict_policy)
            stats_.conflicts += 1
            if outcome.merged:
                stats_.merges += 1
            if outcome.lost_update:
                stats_.lost_updates += 1
            if outcome.conflict_doc_unid is not None:
                stats_.conflict_unids.append(outcome.conflict_doc_unid)

        if sink is None:
            apply(stats)
        else:
            sink.append(apply)

    def _relation(self, local: Document, incoming: Document) -> str:
        if self.versioning == "oid":
            return detect(local, incoming)
        # Timestamp ablation: whoever was modified later wins outright —
        # concurrent edits are never recognised as conflicts.
        if incoming.modified > local.modified:
            return "incoming_newer"
        if incoming.modified < local.modified:
            return "local_newer"
        return "same" if local.oid == incoming.oid else "incoming_newer"

    def _install(
        self,
        target: NotesDatabase,
        doc: Document,
        stats: ReplicationStats,
        sink: list | None = None,
    ) -> None:
        copy = doc.copy()

        def apply(stats_: ReplicationStats) -> None:
            target.raw_put(copy, ChangeKind.REPLACE)
            stats_.docs_transferred += 1

        if sink is None:
            apply(stats)
        else:
            sink.append(apply)

    _ENVELOPE_WIRE_SIZE = 160  # unid + oid + revisions + author trail

    def _install_field_delta(
        self,
        source: NotesDatabase,
        target: NotesDatabase,
        local: Document,
        incoming: Document,
        stats: ReplicationStats,
        sink: list | None = None,
    ) -> None:
        """Ship only the items changed since the target's revision.

        ``incoming`` descends from ``local`` (the caller checked), so every
        item whose change stamp is newer than ``local``'s revision stamp is
        exactly the delta. The target document is *reconstructed* from its
        local copy plus the delta — proving the delta suffices — and must
        equal the source revision item-for-item.
        """
        base_stamp = tuple(local.seq_time)
        changed = {
            name
            for name, stamp in incoming.item_times.items()
            if tuple(stamp) > base_stamp
        }
        # Items present on either side without a change stamp (constructed
        # outside the normal update path) are shipped defensively.
        for item in incoming:
            if item.name not in incoming.item_times and (
                local.item(item.name) != item
            ):
                changed.add(item.name)
        delta_bytes = self._ENVELOPE_WIRE_SIZE
        rebuilt = local.copy()
        for name in changed:
            item = incoming.item(name)
            if item is None:
                if name in rebuilt:
                    rebuilt.remove_item(name)
            else:
                rebuilt.set(name, item)
                value = item.value
                if isinstance(value, str):
                    delta_bytes += len(name) + len(value) + 8
                elif isinstance(value, list):
                    delta_bytes += len(name) + 8 + sum(
                        len(e) if isinstance(e, str) else 8 for e in value
                    )
                elif isinstance(value, dict):  # attachments: base64 payload
                    delta_bytes += len(name) + 8 + sum(
                        len(v) if isinstance(v, str) else 8
                        for v in value.values()
                    )
                else:
                    delta_bytes += len(name) + 16
            if name in incoming.item_times:
                rebuilt.item_times[name] = tuple(incoming.item_times[name])
        rebuilt.seq = incoming.seq
        rebuilt.seq_time = tuple(incoming.seq_time)
        rebuilt.modified = incoming.modified
        rebuilt.created = incoming.created
        rebuilt.parent_unid = incoming.parent_unid
        rebuilt.revisions = [tuple(s) for s in incoming.revisions]
        rebuilt.updated_by = list(incoming.updated_by)
        self._account(target, delta_bytes, stats, src=source.server)

        def apply(stats_: ReplicationStats) -> None:
            target.raw_put(rebuilt, ChangeKind.REPLACE)
            stats_.docs_transferred += 1

        if sink is None:
            apply(stats)
        else:
            sink.append(apply)

    # -- stub path ---------------------------------------------------------

    def _consider_stub(
        self,
        target: NotesDatabase,
        stub: DeletionStub,
        stats: ReplicationStats,
        sink: list | None = None,
    ) -> None:
        local = target.try_get(stub.unid)
        if local is not None and not self._stub_beats_doc(stub, local):
            return  # the document was revised past the deletion; it survives
        existing = target.stubs.get(stub.unid)
        if existing is not None and tuple(existing.seq_time) >= tuple(stub.seq_time):
            return
        self._account(target, _STUB_WIRE_SIZE, stats)

        def apply(stats_: ReplicationStats) -> None:
            target.raw_delete(stub)
            stats_.stubs_transferred += 1

        if sink is None:
            apply(stats)
        else:
            sink.append(apply)

    @staticmethod
    def _stub_beats_doc(stub: DeletionStub, doc: Document) -> bool:
        """Deletion-wins rule: the stub supersedes revisions it has seen."""
        return (stub.seq, tuple(stub.seq_time)) > (doc.seq, tuple(doc.seq_time))

    # -- transfer accounting -------------------------------------------------

    def _transfer(
        self,
        source: NotesDatabase,
        target: NotesDatabase,
        doc: Document,
        stats: ReplicationStats,
    ) -> None:
        self._account(target, doc.size(), stats, src=source.server)

    def _account(
        self,
        target: NotesDatabase,
        nbytes: int,
        stats: ReplicationStats,
        src: str | None = None,
    ) -> None:
        stats.bytes_transferred += nbytes
        if self.network is not None and src is not None:
            stats.seconds += self.network.transfer(src, target.server, nbytes)

    # -- guards -----------------------------------------------------------

    def _check_pair(self, source: NotesDatabase, target: NotesDatabase) -> None:
        if source.replica_id != target.replica_id:
            raise ReplicationError(
                f"replica ids differ: {source.replica_id} vs {target.replica_id}"
            )
        if source is target:
            raise ReplicationError("cannot replicate a database with itself")
        if self.network is not None:
            if not self.network.is_reachable(source.server, target.server):
                raise LinkFailure(
                    f"{source.server} unreachable from {target.server}"
                )
