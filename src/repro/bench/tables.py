"""Plain-text table rendering for experiment output.

Every benchmark prints its result series in the same tabular shape the
paper would have used, so EXPERIMENTS.md can quote the output directly.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str | None = None,
) -> str:
    """Render and print an aligned table; returns the rendered text."""
    formatted = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted), 1)
        if formatted
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [f"\n== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"   note: {note}")
    text = "\n".join(lines)
    print(text)
    return text
