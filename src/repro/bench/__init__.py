"""Benchmark harness utilities: deployments, table printing."""

from repro.bench.runners import build_deployment, populate
from repro.bench.tables import print_table

__all__ = ["build_deployment", "populate", "print_table"]
