"""Deployment builders shared by benchmarks and integration tests."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.database import NotesDatabase
from repro.replication.network import SimulatedNetwork
from repro.sim.clock import VirtualClock


@dataclass
class Deployment:
    """A network of servers all carrying replicas of one database."""

    clock: VirtualClock
    network: SimulatedNetwork
    databases: list[NotesDatabase]
    rng: random.Random

    @property
    def origin(self) -> NotesDatabase:
        return self.databases[0]


def build_deployment(
    n_servers: int,
    seed: int = 1234,
    title: str = "bench.nsf",
    server_prefix: str = "srv",
) -> Deployment:
    """A fresh clock + network + one replica per server."""
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    rng = random.Random(seed)
    databases: list[NotesDatabase] = []
    origin: NotesDatabase | None = None
    for index in range(n_servers):
        name = f"{server_prefix}{index}"
        server = network.add_server(name)
        if origin is None:
            origin = NotesDatabase(
                title, clock=clock, rng=random.Random(rng.getrandbits(64)),
                server=name,
            )
            server.add_database(origin)
            databases.append(origin)
        else:
            replica = origin.new_replica(name)
            server.add_database(replica)
            databases.append(replica)
    return Deployment(clock=clock, network=network, databases=databases, rng=rng)


def populate(
    db: NotesDatabase,
    n_docs: int,
    rng: random.Random,
    body_bytes: int = 400,
    advance: float = 0.25,
) -> list[str]:
    """Create ``n_docs`` memo-like documents; returns their UNIDs."""
    unids = []
    words = ("budget", "meeting", "release", "replica", "schedule", "review",
             "forecast", "inventory", "proposal", "summary")
    for index in range(n_docs):
        db.clock.advance(advance)
        body = " ".join(rng.choice(words) for _ in range(max(body_bytes // 8, 1)))
        doc = db.create(
            {
                "Form": "Memo",
                "Subject": f"{rng.choice(words)} {index}",
                "Body": body,
                "Categories": rng.choice(["eng", "sales", "ops", "hr"]),
                "Amount": rng.randrange(0, 10_000),
            },
            author=f"user{rng.randrange(16)}/Acme",
        )
        unids.append(doc.unid)
    return unids


def build_changefeed_db(
    n_docs: int,
    n_changes: int,
    seed: int = 7,
    body_bytes: int = 64,
) -> tuple[NotesDatabase, int, float]:
    """A database with ``n_docs`` documents of which ``n_changes`` were
    modified after the returned cutoff marks.

    Returns ``(db, mark_seq, mark_time)`` — the seq and timestamp cutoffs
    a change-feed consumer would hold from its previous pass, so callers
    can compare ``changed_since_seq(mark_seq)`` against the full-scan
    ablation ``changed_since_scan(mark_time)`` on identical state.
    """
    clock = VirtualClock()
    rng = random.Random(seed)
    db = NotesDatabase(
        "feed.nsf", clock=clock, rng=random.Random(rng.getrandbits(64)),
        server="hub",
    )
    populate(db, n_docs, rng, body_bytes=body_bytes, advance=0.001)
    clock.advance(1)
    mark_seq = db.update_seq
    mark_time = clock.now
    clock.advance(1)
    for unid in rng.sample(db.unids(), n_changes):
        db.update(unid, {"Status": f"edited {rng.random():.4f}"})
    clock.advance(1)
    return db, mark_seq, mark_time


def catchup_view(db, journal: bool = True, mode: str = "auto",
                 persist: bool = True):
    """The standard E14 view over a catch-up corpus.

    One definition shared by the save and reopen sides so the design
    fingerprint matches and a saved sidecar is eligible for loading.
    """
    from repro.views import SortOrder, View, ViewColumn

    return View(
        db, "E14",
        selection='SELECT Form = "Memo"',
        columns=[
            ViewColumn(title="Categories", item="Categories",
                       categorized=True),
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount"),
        ],
        mode=mode, persist=persist, journal=journal,
    )


def build_catchup_corpus(
    path: str,
    n_docs: int,
    n_changes: int,
    seed: int = 21,
    body_bytes: int = 120,
):
    """The E14 scenario: a persisted database with saved view + full-text
    checkpoints, reopened and then moved ``n_changes`` past them.

    Builds ``n_docs`` documents through a storage engine at ``path``,
    saves a persisted view sidecar (:func:`catchup_view`) and a full-text
    checkpoint, closes everything, reopens the file, and applies
    ``n_changes`` random updates. Returns ``(engine, db)`` — every
    checkpoint on disk now trails the live state by exactly the delta,
    which is what the seq catch-up paths are measured against.
    """
    from repro.fulltext import FullTextIndex
    from repro.storage import StorageEngine

    rng = random.Random(seed)
    engine = StorageEngine(path)
    db = NotesDatabase(
        "catchup.nsf", clock=VirtualClock(),
        rng=random.Random(rng.getrandbits(64)), server="hub", engine=engine,
    )
    populate(db, n_docs, rng, body_bytes=body_bytes, advance=0.0)
    view = catchup_view(db)
    view.close()  # saves the sidecar
    index = FullTextIndex(db, persist=True)
    index.close()  # saves the checkpoint
    engine.close()

    engine = StorageEngine(path)
    db = NotesDatabase(
        "catchup.nsf", clock=VirtualClock(),
        rng=random.Random(rng.getrandbits(64)), server="hub", engine=engine,
    )
    db.clock.advance(1)
    for unid in rng.sample(db.unids(), n_changes):
        db.update(unid, {"Subject": f"edited {rng.random():.4f}"})
    return engine, db
