"""Deployment builders shared by benchmarks and integration tests."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.database import NotesDatabase
from repro.replication.network import SimulatedNetwork
from repro.sim.clock import VirtualClock


@dataclass
class Deployment:
    """A network of servers all carrying replicas of one database."""

    clock: VirtualClock
    network: SimulatedNetwork
    databases: list[NotesDatabase]
    rng: random.Random

    @property
    def origin(self) -> NotesDatabase:
        return self.databases[0]


def build_deployment(
    n_servers: int,
    seed: int = 1234,
    title: str = "bench.nsf",
    server_prefix: str = "srv",
) -> Deployment:
    """A fresh clock + network + one replica per server."""
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    rng = random.Random(seed)
    databases: list[NotesDatabase] = []
    origin: NotesDatabase | None = None
    for index in range(n_servers):
        name = f"{server_prefix}{index}"
        server = network.add_server(name)
        if origin is None:
            origin = NotesDatabase(
                title, clock=clock, rng=random.Random(rng.getrandbits(64)),
                server=name,
            )
            server.add_database(origin)
            databases.append(origin)
        else:
            replica = origin.new_replica(name)
            server.add_database(replica)
            databases.append(replica)
    return Deployment(clock=clock, network=network, databases=databases, rng=rng)


def populate(
    db: NotesDatabase,
    n_docs: int,
    rng: random.Random,
    body_bytes: int = 400,
    advance: float = 0.25,
) -> list[str]:
    """Create ``n_docs`` memo-like documents; returns their UNIDs."""
    unids = []
    words = ("budget", "meeting", "release", "replica", "schedule", "review",
             "forecast", "inventory", "proposal", "summary")
    for index in range(n_docs):
        db.clock.advance(advance)
        body = " ".join(rng.choice(words) for _ in range(max(body_bytes // 8, 1)))
        doc = db.create(
            {
                "Form": "Memo",
                "Subject": f"{rng.choice(words)} {index}",
                "Body": body,
                "Categories": rng.choice(["eng", "sales", "ops", "hr"]),
                "Amount": rng.randrange(0, 10_000),
            },
            author=f"user{rng.randrange(16)}/Acme",
        )
        unids.append(doc.unid)
    return unids


def build_changefeed_db(
    n_docs: int,
    n_changes: int,
    seed: int = 7,
    body_bytes: int = 64,
) -> tuple[NotesDatabase, int, float]:
    """A database with ``n_docs`` documents of which ``n_changes`` were
    modified after the returned cutoff marks.

    Returns ``(db, mark_seq, mark_time)`` — the seq and timestamp cutoffs
    a change-feed consumer would hold from its previous pass, so callers
    can compare ``changed_since_seq(mark_seq)`` against the full-scan
    ablation ``changed_since_scan(mark_time)`` on identical state.
    """
    clock = VirtualClock()
    rng = random.Random(seed)
    db = NotesDatabase(
        "feed.nsf", clock=clock, rng=random.Random(rng.getrandbits(64)),
        server="hub",
    )
    populate(db, n_docs, rng, body_bytes=body_bytes, advance=0.001)
    clock.advance(1)
    mark_seq = db.update_seq
    mark_time = clock.now
    clock.advance(1)
    for unid in rng.sample(db.unids(), n_changes):
        db.update(unid, {"Status": f"edited {rng.random():.4f}"})
    clock.advance(1)
    return db, mark_seq, mark_time
