"""Tokenizer for the formula language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import FormulaSyntaxError


class TokenType(str, Enum):
    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    ATFUNC = "atfunc"
    KEYWORD = "keyword"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    EOF = "eof"


KEYWORDS = {"select", "field", "default", "rem"}

# Multi-character operators first so ':=' wins over ':'.
_OPERATORS = [
    ":=",
    "<=",
    ">=",
    "<>",
    "!=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "&",
    "|",
    "!",
    ":",
]


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.text!r}@{self.pos})"


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char in "_$"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_$."


def tokenize(source: str) -> list[Token]:
    """Turn formula source into a token list ending with EOF."""
    tokens: list[Token] = []
    pos = 0
    length = len(source)
    while pos < length:
        char = source[pos]
        if char.isspace():
            pos += 1
            continue
        if char == '"':
            end = pos + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise FormulaSyntaxError(f"unterminated string at {pos}")
                if source[end] == "\\" and end + 1 < length:
                    parts.append(source[end + 1])
                    end += 2
                    continue
                if source[end] == '"':
                    break
                parts.append(source[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), pos))
            pos = end + 1
            continue
        if char == "{":
            end = source.find("}", pos + 1)
            if end == -1:
                raise FormulaSyntaxError(f"unterminated {{...}} string at {pos}")
            tokens.append(Token(TokenType.STRING, source[pos + 1 : end], pos))
            pos = end + 1
            continue
        if char == "[":
            # Keyword literal, e.g. @Name([Abbreviate]; x) or
            # @Sort(x; [DESCENDING]); lexes as the string "[Keyword]".
            end = source.find("]", pos + 1)
            if end == -1:
                raise FormulaSyntaxError(f"unterminated [keyword] at {pos}")
            tokens.append(Token(TokenType.STRING, source[pos : end + 1], pos))
            pos = end + 1
            continue
        if char.isdigit() or (
            char == "." and pos + 1 < length and source[pos + 1].isdigit()
        ):
            end = pos
            seen_dot = False
            while end < length and (
                source[end].isdigit() or (source[end] == "." and not seen_dot)
            ):
                if source[end] == ".":
                    # "1.5.x" should stop at the second dot
                    if end + 1 >= length or not source[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, source[pos:end], pos))
            pos = end
            continue
        if char == "@":
            end = pos + 1
            while end < length and _is_ident_char(source[end]):
                end += 1
            if end == pos + 1:
                raise FormulaSyntaxError(f"bare '@' at {pos}")
            tokens.append(Token(TokenType.ATFUNC, source[pos:end], pos))
            pos = end
            continue
        if _is_ident_start(char):
            end = pos + 1
            while end < length and _is_ident_char(source[end]):
                end += 1
            text = source[pos:end]
            if text.lower() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, text.lower(), pos))
            else:
                tokens.append(Token(TokenType.IDENT, text, pos))
            pos = end
            continue
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", pos))
            pos += 1
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", pos))
            pos += 1
            continue
        if char == ";":
            tokens.append(Token(TokenType.SEMI, ";", pos))
            pos += 1
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token(TokenType.OP, op, pos))
                pos += len(op)
                break
        else:
            raise FormulaSyntaxError(f"unexpected character {char!r} at {pos}")
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
