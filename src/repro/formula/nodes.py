"""AST node types for the formula language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Node = Union[
    "Literal",
    "FieldRef",
    "ListExpr",
    "UnaryOp",
    "BinaryOp",
    "FuncCall",
    "Assign",
    "FieldAssign",
    "Select",
    "Default",
]


@dataclass(frozen=True)
class Literal:
    """A string or number constant (stored pre-wrapped as a one-item list)."""

    value: list


@dataclass(frozen=True)
class FieldRef:
    """Reference to a document item or temporary variable by name."""

    name: str


@dataclass(frozen=True)
class ListExpr:
    """The ':' list-concatenation operator."""

    parts: tuple


@dataclass(frozen=True)
class UnaryOp:
    op: str  # '-' or '!' or '+'
    operand: "Node"


@dataclass(frozen=True)
class BinaryOp:
    op: str  # + - * / = != < > <= >= & |
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class FuncCall:
    name: str  # includes the leading '@', lower-cased
    args: tuple


@dataclass(frozen=True)
class Assign:
    """Temporary-variable assignment: ``name := expr``."""

    name: str
    expr: "Node"


@dataclass(frozen=True)
class FieldAssign:
    """Document item write: ``FIELD Name := expr``."""

    name: str
    expr: "Node"


@dataclass(frozen=True)
class Select:
    """``SELECT expr`` — the view/replication selection clause."""

    expr: "Node"


@dataclass(frozen=True)
class Default:
    """``DEFAULT Name := expr`` — set the item only if absent."""

    name: str
    expr: "Node"


@dataclass(frozen=True)
class Program:
    statements: tuple = field(default_factory=tuple)
