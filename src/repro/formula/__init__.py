"""The @-formula language: Notes' built-in expression language.

Formulas drive view selection (``SELECT Form = "Memo"``), computed fields,
agents and selective replication. This package implements a faithful subset:

* statements separated by ``;`` — assignments (``x := expr``), field writes
  (``FIELD Name := expr``), ``SELECT`` clauses and bare expressions;
* Notes value semantics — every value is a list, operators broadcast
  element-wise, comparisons yield 1/0;
* the ``:`` list-concatenation operator at its (high) Notes precedence;
* a wide set of @functions (``@If``, ``@Contains``, ``@Left``, ``@Sum``,
  ``@Unique`` …) evaluated against a document + user + clock context.

Usage::

    from repro.formula import compile_formula
    formula = compile_formula('SELECT Form = "MainTopic" & @Contains(Subject; "beta")')
    formula.select(doc)            # -> bool
    compile_formula('@Sum(Amounts) * 2').evaluate(doc)  # -> [value, ...]
"""

from repro.formula.evaluator import EvalContext, Formula, compile_formula
from repro.formula.functions import FUNCTIONS, register_function
from repro.formula.lexer import tokenize
from repro.formula.parser import parse

__all__ = [
    "EvalContext",
    "Formula",
    "FUNCTIONS",
    "compile_formula",
    "parse",
    "register_function",
    "tokenize",
]
