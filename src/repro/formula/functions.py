"""The @function library.

Functions receive already-evaluated argument lists (remember: every formula
value is a list) except the *lazy* ones (``@If``, ``@IsAvailable`` …) which
receive the raw AST nodes plus an evaluation callback so they can skip
branches or inspect field names.

The registry is open: ``register_function`` lets applications add their own
@functions, mirroring how Domino releases grew the language over time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import FormulaEvalError
from repro.formula.nodes import FieldRef


@dataclass(frozen=True)
class FunctionSpec:
    name: str
    impl: Callable
    min_args: int
    max_args: int | None  # None = unbounded
    lazy: bool = False


FUNCTIONS: dict[str, FunctionSpec] = {}


def register_function(
    name: str, min_args: int = 0, max_args: int | None = None, lazy: bool = False
):
    """Decorator adding an @function to the global registry."""

    def decorate(impl: Callable) -> Callable:
        key = name.lower()
        if not key.startswith("@"):
            raise FormulaEvalError(f"function name must start with '@': {name}")
        FUNCTIONS[key] = FunctionSpec(key, impl, min_args, max_args, lazy)
        return impl

    return decorate


# -- helpers shared with the evaluator ------------------------------------


def truth(value: list) -> bool:
    """Notes truth: a value is true when its first element is non-zero/empty."""
    if not value:
        return False
    head = value[0]
    if isinstance(head, str):
        return head != ""
    return bool(head)


def _strings(value: list, where: str) -> list[str]:
    if not all(isinstance(element, str) for element in value):
        raise FormulaEvalError(f"{where} expects text values, got {value!r}")
    return value


def _numbers(value: list, where: str) -> list:
    cleaned = []
    for element in value:
        if isinstance(element, bool) or not isinstance(element, (int, float)):
            raise FormulaEvalError(f"{where} expects numbers, got {element!r}")
        cleaned.append(element)
    return cleaned


def _scalar_int(value: list, where: str) -> int:
    numbers = _numbers(value, where)
    if not numbers:
        raise FormulaEvalError(f"{where} got an empty number list")
    return int(numbers[0])


def to_text(element) -> str:
    if isinstance(element, str):
        return element
    if isinstance(element, float) and element.is_integer():
        return str(int(element))
    return str(element)


# -- control flow -----------------------------------------------------------


@register_function("@if", min_args=2, lazy=True)
def _fn_if(ctx, args, evaluate):
    """@If(cond1; val1; cond2; val2; ...; else) — lazy branch evaluation."""
    index = 0
    while index + 1 < len(args):
        if truth(evaluate(args[index], ctx)):
            return evaluate(args[index + 1], ctx)
        index += 2
    if index < len(args):
        return evaluate(args[index], ctx)
    return [""]


@register_function("@select", min_args=2)
def _fn_select(ctx, selector, *choices):
    index = _scalar_int(selector, "@Select")
    if index < 1:
        raise FormulaEvalError(f"@Select index {index} must be >= 1")
    if index > len(choices):
        return list(choices[-1])
    return list(choices[index - 1])


@register_function("@do", min_args=1)
def _fn_do(ctx, *args):
    return list(args[-1])


@register_function("@success", max_args=0)
def _fn_success(ctx):
    return [1]


@register_function("@failure", min_args=1, max_args=1)
def _fn_failure(ctx, message):
    raise FormulaEvalError(f"@Failure: {message[0] if message else ''}")


@register_function("@return", min_args=1, max_args=1)
def _fn_return(ctx, value):
    return list(value)


# -- document / environment ----------------------------------------------


def _require_doc(ctx, who: str):
    if ctx.doc is None:
        raise FormulaEvalError(f"{who} needs a document context")
    return ctx.doc


@register_function("@all", max_args=0)
def _fn_all(ctx):
    return [1]


@register_function("@allchildren", max_args=0)
def _fn_allchildren(ctx):
    ctx.wants_children = True
    return [0]


@register_function("@alldescendants", max_args=0)
def _fn_alldescendants(ctx):
    ctx.wants_descendants = True
    return [0]


@register_function("@documentuniqueid", max_args=0)
def _fn_unid(ctx):
    return [_require_doc(ctx, "@DocumentUniqueID").unid]


@register_function("@noteid", max_args=0)
def _fn_noteid(ctx):
    return [_require_doc(ctx, "@NoteID").note_id]


@register_function("@created", max_args=0)
def _fn_created(ctx):
    return [_require_doc(ctx, "@Created").created]


@register_function("@modified", max_args=0)
def _fn_modified(ctx):
    return [_require_doc(ctx, "@Modified").modified]


@register_function("@updatedby", max_args=0)
def _fn_updatedby(ctx):
    return list(_require_doc(ctx, "@UpdatedBy").updated_by) or [""]


@register_function("@author", max_args=0)
def _fn_author(ctx):
    updated_by = _require_doc(ctx, "@Author").updated_by
    return [updated_by[0]] if updated_by else [""]


@register_function("@isresponsedoc", max_args=0)
def _fn_isresponse(ctx):
    return [1 if _require_doc(ctx, "@IsResponseDoc").is_response else 0]


@register_function("@isnewdoc", max_args=0)
def _fn_isnew(ctx):
    return [1 if ctx.doc is None or ctx.doc.seq <= 1 else 0]


@register_function("@now", max_args=0)
def _fn_now(ctx):
    if ctx.clock is not None:
        return [ctx.clock.now]
    return [_require_doc(ctx, "@Now (without clock)").modified]


@register_function("@today", max_args=0)
def _fn_today(ctx):
    now = _fn_now(ctx)[0]
    return [math.floor(now / 86400.0) * 86400.0]


@register_function("@username", max_args=0)
def _fn_username(ctx):
    return [ctx.user]


@register_function("@isavailable", min_args=1, max_args=1, lazy=True)
def _fn_isavailable(ctx, args, evaluate):
    node = args[0]
    if not isinstance(node, FieldRef):
        raise FormulaEvalError("@IsAvailable expects a field name")
    return [1 if ctx.has_field(node.name) else 0]


@register_function("@isunavailable", min_args=1, max_args=1, lazy=True)
def _fn_isunavailable(ctx, args, evaluate):
    available = _fn_isavailable(ctx, args, evaluate)
    return [1 - available[0]]


@register_function("@getfield", min_args=1, max_args=1)
def _fn_getfield(ctx, name):
    return ctx.read_field(_strings(name, "@GetField")[0])


@register_function("@setfield", min_args=2, max_args=2)
def _fn_setfield(ctx, name, value):
    ctx.write_field(_strings(name, "@SetField")[0], list(value))
    return list(value)


@register_function("@getprofilefield", min_args=2, max_args=3)
def _fn_getprofilefield(ctx, profile, item, user=None):
    if ctx.db is None:
        raise FormulaEvalError("@GetProfileField needs a database context")
    username = _strings(user, "@GetProfileField")[0] if user else ""
    doc = ctx.db.profile(_strings(profile, "@GetProfileField")[0], username)
    value = doc.get(_strings(item, "@GetProfileField")[0], "")
    return value if isinstance(value, list) else [value]


# -- text -------------------------------------------------------------------


@register_function("@text", min_args=1, max_args=1)
def _fn_text(ctx, value):
    return [to_text(element) for element in value] or [""]


@register_function("@texttonumber", min_args=1, max_args=1)
def _fn_texttonumber(ctx, value):
    result = []
    for element in _strings(value, "@TextToNumber"):
        try:
            result.append(float(element) if "." in element else int(element))
        except ValueError as exc:
            raise FormulaEvalError(f"@TextToNumber: {element!r}") from exc
    return result or [0]


@register_function("@length", min_args=1, max_args=1)
def _fn_length(ctx, value):
    return [len(element) if isinstance(element, str) else len(to_text(element)) for element in value] or [0]


@register_function("@left", min_args=2, max_args=2)
def _fn_left(ctx, text, arg):
    result = []
    for element in _strings(text, "@Left"):
        if arg and isinstance(arg[0], str):
            index = element.find(arg[0])
            result.append(element[:index] if index >= 0 else "")
        else:
            result.append(element[: _scalar_int(arg, "@Left")])
    return result or [""]


@register_function("@right", min_args=2, max_args=2)
def _fn_right(ctx, text, arg):
    result = []
    for element in _strings(text, "@Right"):
        if arg and isinstance(arg[0], str):
            index = element.find(arg[0])
            result.append(element[index + len(arg[0]):] if index >= 0 else "")
        else:
            count = _scalar_int(arg, "@Right")
            result.append(element[-count:] if count > 0 else "")
    return result or [""]


@register_function("@middle", min_args=3, max_args=3)
def _fn_middle(ctx, text, offset, count):
    start = _scalar_int(offset, "@Middle")
    length = _scalar_int(count, "@Middle")
    return [element[start : start + length] for element in _strings(text, "@Middle")] or [""]


@register_function("@contains", min_args=2, max_args=2)
def _fn_contains(ctx, haystack, needles):
    for hay in _strings(haystack, "@Contains"):
        for needle in _strings(needles, "@Contains"):
            if needle.lower() in hay.lower():
                return [1]
    return [0]


@register_function("@begins", min_args=2, max_args=2)
def _fn_begins(ctx, haystack, prefixes):
    for hay in _strings(haystack, "@Begins"):
        for prefix in _strings(prefixes, "@Begins"):
            if hay.startswith(prefix):
                return [1]
    return [0]


@register_function("@ends", min_args=2, max_args=2)
def _fn_ends(ctx, haystack, suffixes):
    for hay in _strings(haystack, "@Ends"):
        for suffix in _strings(suffixes, "@Ends"):
            if hay.endswith(suffix):
                return [1]
    return [0]


@register_function("@lowercase", min_args=1, max_args=1)
def _fn_lowercase(ctx, value):
    return [element.lower() for element in _strings(value, "@LowerCase")] or [""]


@register_function("@uppercase", min_args=1, max_args=1)
def _fn_uppercase(ctx, value):
    return [element.upper() for element in _strings(value, "@UpperCase")] or [""]


@register_function("@propercase", min_args=1, max_args=1)
def _fn_propercase(ctx, value):
    return [element.title() for element in _strings(value, "@ProperCase")] or [""]


@register_function("@trim", min_args=1, max_args=1)
def _fn_trim(ctx, value):
    trimmed = [" ".join(element.split()) for element in _strings(value, "@Trim")]
    return [element for element in trimmed if element] or [""]


@register_function("@word", min_args=3, max_args=3)
def _fn_word(ctx, text, separator, number):
    sep = _strings(separator, "@Word")[0]
    index = _scalar_int(number, "@Word")
    result = []
    for element in _strings(text, "@Word"):
        words = element.split(sep)
        result.append(words[index - 1] if 1 <= index <= len(words) else "")
    return result or [""]


@register_function("@replacesubstring", min_args=3, max_args=3)
def _fn_replacesubstring(ctx, text, sources, targets):
    froms = _strings(sources, "@ReplaceSubstring")
    tos = _strings(targets, "@ReplaceSubstring")
    result = []
    for element in _strings(text, "@ReplaceSubstring"):
        for position, source in enumerate(froms):
            target = tos[min(position, len(tos) - 1)] if tos else ""
            element = element.replace(source, target)
        result.append(element)
    return result or [""]


@register_function("@repeat", min_args=2, max_args=2)
def _fn_repeat(ctx, text, count):
    times = _scalar_int(count, "@Repeat")
    return [element * times for element in _strings(text, "@Repeat")] or [""]


@register_function("@matches", min_args=2, max_args=2)
def _fn_matches(ctx, text, patterns):
    import fnmatch

    for element in _strings(text, "@Matches"):
        for pattern in _strings(patterns, "@Matches"):
            if fnmatch.fnmatchcase(element, pattern):
                return [1]
    return [0]


# -- lists --------------------------------------------------------------


@register_function("@elements", min_args=1, max_args=1)
def _fn_elements(ctx, value):
    if value == [""]:
        return [0]
    return [len(value)]


@register_function("@subset", min_args=2, max_args=2)
def _fn_subset(ctx, value, count):
    n = _scalar_int(count, "@Subset")
    if n == 0:
        raise FormulaEvalError("@Subset count must be non-zero")
    return list(value[:n]) if n > 0 else list(value[n:])


@register_function("@explode", min_args=1, max_args=2)
def _fn_explode(ctx, text, separator=None):
    seps = _strings(separator, "@Explode") if separator else [" ", ",", ";"]
    result: list[str] = []
    for element in _strings(text, "@Explode"):
        parts = [element]
        for sep in seps:
            parts = [piece for chunk in parts for piece in chunk.split(sep)]
        result.extend(part for part in parts if part)
    return result or [""]


@register_function("@implode", min_args=1, max_args=2)
def _fn_implode(ctx, value, separator=None):
    sep = _strings(separator, "@Implode")[0] if separator else " "
    return [sep.join(to_text(element) for element in value)]


@register_function("@unique", min_args=0, max_args=1)
def _fn_unique(ctx, value=None):
    if value is None:
        # Argument-less @Unique returns a pseudo-unique text (used for keys).
        return [f"U{ctx.next_unique()}"]
    seen = set()
    result = []
    for element in value:
        if element not in seen:
            seen.add(element)
            result.append(element)
    return result or [""]


@register_function("@sort", min_args=1, max_args=2)
def _fn_sort(ctx, value, order=None):
    descending = bool(order) and _strings(order, "@Sort")[0].upper() == "[DESCENDING]"
    try:
        return sorted(value, reverse=descending) or [""]
    except TypeError as exc:
        raise FormulaEvalError(f"@Sort on mixed-type list {value!r}") from exc


@register_function("@member", min_args=2, max_args=2)
def _fn_member(ctx, needle, haystack):
    for candidate in needle:
        if candidate in haystack:
            return [haystack.index(candidate) + 1]
    return [0]


@register_function("@ismember", min_args=2, max_args=2)
def _fn_ismember(ctx, needle, haystack):
    return [1 if any(candidate in haystack for candidate in needle) else 0]


@register_function("@replace", min_args=3, max_args=3)
def _fn_replace(ctx, value, sources, targets):
    result = []
    for element in value:
        if element in sources:
            position = sources.index(element)
            if position < len(targets):
                replacement = targets[position]
                if replacement != "":
                    result.append(replacement)
            # empty replacement drops the element
        else:
            result.append(element)
    return result or [""]


@register_function("@keywords", min_args=2, max_args=2)
def _fn_keywords(ctx, text, keywords):
    found = []
    lowered = [t.lower() for t in _strings(text, "@Keywords")]
    for keyword in _strings(keywords, "@Keywords"):
        if any(keyword.lower() in t for t in lowered):
            found.append(keyword)
    return found or [""]


# -- numbers ------------------------------------------------------------


@register_function("@sum", min_args=1)
def _fn_sum(ctx, *args):
    total = 0
    for arg in args:
        total += sum(_numbers(arg, "@Sum"))
    return [total]


@register_function("@min", min_args=1)
def _fn_min(ctx, *args):
    values = [element for arg in args for element in _numbers(arg, "@Min")]
    if not values:
        raise FormulaEvalError("@Min of empty list")
    return [min(values)]


@register_function("@max", min_args=1)
def _fn_max(ctx, *args):
    values = [element for arg in args for element in _numbers(arg, "@Max")]
    if not values:
        raise FormulaEvalError("@Max of empty list")
    return [max(values)]


@register_function("@abs", min_args=1, max_args=1)
def _fn_abs(ctx, value):
    return [abs(element) for element in _numbers(value, "@Abs")] or [0]


@register_function("@round", min_args=1, max_args=2)
def _fn_round(ctx, value, places=None):
    digits = _scalar_int(places, "@Round") if places else 0
    result = [round(element, digits) for element in _numbers(value, "@Round")]
    if digits == 0:
        result = [int(element) for element in result]
    return result or [0]


@register_function("@integer", min_args=1, max_args=1)
def _fn_integer(ctx, value):
    return [int(element) for element in _numbers(value, "@Integer")] or [0]


@register_function("@modulo", min_args=2, max_args=2)
def _fn_modulo(ctx, left, right):
    divisor = _scalar_int(right, "@Modulo")
    if divisor == 0:
        raise FormulaEvalError("@Modulo by zero")
    return [int(math.fmod(element, divisor)) for element in _numbers(left, "@Modulo")] or [0]


@register_function("@sqrt", min_args=1, max_args=1)
def _fn_sqrt(ctx, value):
    result = []
    for element in _numbers(value, "@Sqrt"):
        if element < 0:
            raise FormulaEvalError(f"@Sqrt of negative {element}")
        result.append(math.sqrt(element))
    return result or [0]


@register_function("@power", min_args=2, max_args=2)
def _fn_power(ctx, base, exponent):
    exp = _numbers(exponent, "@Power")[0]
    return [element**exp for element in _numbers(base, "@Power")] or [0]


@register_function("@random", max_args=0)
def _fn_random(ctx):
    return [ctx.rng.random()]


# -- dates -------------------------------------------------------------
#
# Virtual time counts seconds from an epoch; the calendar functions map it
# through the proleptic Gregorian calendar with day 0 = 1970-01-01 (a
# Thursday), the same convention the simulation's workloads use.

_SECONDS_PER_DAY = 86_400.0


def _gmtime(value, where: str):
    import time as _time

    numbers = _numbers(value, where)
    return [_time.gmtime(v) for v in numbers]


@register_function("@year", min_args=1, max_args=1)
def _fn_year(ctx, value):
    return [t.tm_year for t in _gmtime(value, "@Year")] or [0]


@register_function("@month", min_args=1, max_args=1)
def _fn_month(ctx, value):
    return [t.tm_mon for t in _gmtime(value, "@Month")] or [0]


@register_function("@day", min_args=1, max_args=1)
def _fn_day(ctx, value):
    return [t.tm_mday for t in _gmtime(value, "@Day")] or [0]


@register_function("@hour", min_args=1, max_args=1)
def _fn_hour(ctx, value):
    return [t.tm_hour for t in _gmtime(value, "@Hour")] or [0]


@register_function("@minute", min_args=1, max_args=1)
def _fn_minute(ctx, value):
    return [t.tm_min for t in _gmtime(value, "@Minute")] or [0]


@register_function("@weekday", min_args=1, max_args=1)
def _fn_weekday(ctx, value):
    # Notes: 1 = Sunday .. 7 = Saturday.
    return [(t.tm_wday + 1) % 7 + 1 for t in _gmtime(value, "@Weekday")] or [0]


@register_function("@date", min_args=3, max_args=6)
def _fn_date(ctx, year, month, day, hour=None, minute=None, second=None):
    import calendar as _calendar

    def one(args, name):
        return _scalar_int(args, name) if args else 0

    stamp = _calendar.timegm((
        _scalar_int(year, "@Date"),
        _scalar_int(month, "@Date"),
        _scalar_int(day, "@Date"),
        one(hour, "@Date"),
        one(minute, "@Date"),
        one(second, "@Date"),
        0, 0, 0,
    ))
    return [float(stamp)]


@register_function("@adjust", min_args=7, max_args=7)
def _fn_adjust(ctx, value, years, months, days, hours, minutes, seconds):
    """@Adjust(time; y; m; d; h; min; s) — calendar-aware date arithmetic."""
    import calendar as _calendar
    import time as _time

    result = []
    dy = _scalar_int(years, "@Adjust")
    dm = _scalar_int(months, "@Adjust")
    dd = _scalar_int(days, "@Adjust")
    dh = _scalar_int(hours, "@Adjust")
    dmin = _scalar_int(minutes, "@Adjust")
    ds = _scalar_int(seconds, "@Adjust")
    for element in _numbers(value, "@Adjust"):
        t = _time.gmtime(element)
        month_total = (t.tm_mon - 1) + dm
        year = t.tm_year + dy + month_total // 12
        month = month_total % 12 + 1
        day = min(t.tm_mday, _calendar.monthrange(year, month)[1])
        base = _calendar.timegm(
            (year, month, day, t.tm_hour, t.tm_min, t.tm_sec, 0, 0, 0)
        )
        result.append(float(base + dd * 86_400 + dh * 3600 + dmin * 60 + ds))
    return result or [0.0]


# -- names -------------------------------------------------------------


@register_function("@name", min_args=2, max_args=2)
def _fn_name(ctx, action, value):
    """@Name([Abbreviate]|[Canonicalize]|[CN]|[O]; name)."""
    from repro.security.names import NotesName

    keyword = _strings(action, "@Name")[0].strip("[]").lower()
    result = []
    for raw in _strings(value, "@Name"):
        name = NotesName.parse(raw)
        if keyword == "abbreviate":
            result.append(name.abbreviated)
        elif keyword == "canonicalize":
            result.append(name.canonical)
        elif keyword == "cn":
            result.append(name.common)
        elif keyword == "o":
            result.append(name.components[-1] if len(name.components) > 1 else "")
        else:
            raise FormulaEvalError(f"@Name action [{keyword}] not supported")
    return result or [""]
