"""Recursive-descent parser for the formula language.

Grammar (binding tightest to loosest)::

    program    := statement (';' statement)* [';']
    statement  := 'SELECT' expr
                | 'FIELD' IDENT ':=' expr
                | 'DEFAULT' IDENT ':=' expr
                | 'REM' STRING
                | IDENT ':=' expr
                | expr
    expr       := or_expr
    or_expr    := and_expr ('|' and_expr)*
    and_expr   := cmp_expr ('&' cmp_expr)*
    cmp_expr   := add_expr (('='|'!='|'<>'|'<'|'>'|'<='|'>=') add_expr)*
    add_expr   := mul_expr (('+'|'-') mul_expr)*
    mul_expr   := list_expr (('*'|'/') list_expr)*
    list_expr  := unary (':' unary)*
    unary      := ('!'|'-'|'+') unary | primary
    primary    := NUMBER | STRING | IDENT | ATFUNC ['(' args ')']
                | '(' expr ')'
    args       := [expr (';' expr)*]

Argument lists reuse ``;`` — parenthesis nesting disambiguates it from the
statement separator, as in real Notes formulas.
"""

from __future__ import annotations

from repro.errors import FormulaSyntaxError
from repro.formula.lexer import Token, TokenType, tokenize
from repro.formula.nodes import (
    Assign,
    BinaryOp,
    Default,
    FieldAssign,
    FieldRef,
    FuncCall,
    ListExpr,
    Literal,
    Program,
    Select,
    UnaryOp,
)

_CMP_OPS = {"=", "!=", "<>", "<", ">", "<=", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, type_: TokenType, text: str | None = None) -> Token | None:
        token = self.current
        if token.type == type_ and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, type_: TokenType, text: str | None = None) -> Token:
        token = self.accept(type_, text)
        if token is None:
            want = text or type_.value
            raise FormulaSyntaxError(
                f"expected {want!r} but found {self.current.text!r} "
                f"at position {self.current.pos}"
            )
        return token

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> Program:
        statements = []
        while self.current.type != TokenType.EOF:
            statement = self.parse_statement()
            if statement is not None:
                statements.append(statement)
            if not self.accept(TokenType.SEMI):
                break
        self.expect(TokenType.EOF)
        if not statements:
            raise FormulaSyntaxError("empty formula")
        return Program(tuple(statements))

    def parse_statement(self):
        if self.accept(TokenType.KEYWORD, "rem"):
            self.expect(TokenType.STRING)
            return None
        if self.accept(TokenType.KEYWORD, "select"):
            return Select(self.parse_expr())
        if self.accept(TokenType.KEYWORD, "field"):
            name = self.expect(TokenType.IDENT).text
            self.expect(TokenType.OP, ":=")
            return FieldAssign(name, self.parse_expr())
        if self.accept(TokenType.KEYWORD, "default"):
            name = self.expect(TokenType.IDENT).text
            self.expect(TokenType.OP, ":=")
            return Default(name, self.parse_expr())
        if (
            self.current.type == TokenType.IDENT
            and self.tokens[self.pos + 1].type == TokenType.OP
            and self.tokens[self.pos + 1].text == ":="
        ):
            name = self.advance().text
            self.advance()  # ':='
            return Assign(name, self.parse_expr())
        return self.parse_expr()

    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        node = self.parse_and()
        while self.accept(TokenType.OP, "|"):
            node = BinaryOp("|", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_cmp()
        while self.accept(TokenType.OP, "&"):
            node = BinaryOp("&", node, self.parse_cmp())
        return node

    def parse_cmp(self):
        node = self.parse_add()
        while self.current.type == TokenType.OP and self.current.text in _CMP_OPS:
            op = self.advance().text
            if op == "<>":
                op = "!="
            node = BinaryOp(op, node, self.parse_add())
        return node

    def parse_add(self):
        node = self.parse_mul()
        while self.current.type == TokenType.OP and self.current.text in ("+", "-"):
            op = self.advance().text
            node = BinaryOp(op, node, self.parse_mul())
        return node

    def parse_mul(self):
        node = self.parse_list()
        while self.current.type == TokenType.OP and self.current.text in ("*", "/"):
            op = self.advance().text
            node = BinaryOp(op, node, self.parse_list())
        return node

    def parse_list(self):
        node = self.parse_unary()
        if self.current.type == TokenType.OP and self.current.text == ":":
            parts = [node]
            while self.accept(TokenType.OP, ":"):
                parts.append(self.parse_unary())
            return ListExpr(tuple(parts))
        return node

    def parse_unary(self):
        if self.current.type == TokenType.OP and self.current.text in ("!", "-", "+"):
            op = self.advance().text
            return UnaryOp(op, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        token = self.current
        if token.type == TokenType.NUMBER:
            self.advance()
            text = token.text
            value = float(text) if "." in text else int(text)
            return Literal([value])
        if token.type == TokenType.STRING:
            self.advance()
            return Literal([token.text])
        if token.type == TokenType.ATFUNC:
            self.advance()
            name = token.text.lower()
            args: tuple = ()
            if self.accept(TokenType.LPAREN):
                args = self.parse_args()
                self.expect(TokenType.RPAREN)
            return FuncCall(name, args)
        if token.type == TokenType.IDENT:
            self.advance()
            return FieldRef(token.text)
        if self.accept(TokenType.LPAREN):
            node = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return node
        raise FormulaSyntaxError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )

    def parse_args(self) -> tuple:
        if self.current.type == TokenType.RPAREN:
            return ()
        args = [self.parse_expr()]
        while self.accept(TokenType.SEMI):
            args.append(self.parse_expr())
        return tuple(args)


def parse(source: str) -> Program:
    """Parse formula source text into a :class:`Program` AST."""
    return _Parser(tokenize(source)).parse_program()
