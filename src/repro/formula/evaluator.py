"""Formula evaluation: Notes list semantics over an AST.

Every formula value is a list. Operators broadcast: arithmetic pairs
elements (the shorter side padded with its last element); comparisons use
the Notes any-pair rule (``Categories = "x"`` is true when *any* category
matches — the idiom view selection formulas rely on); ``&``/``|``/``!`` work
on truth values and yield ``[1]``/``[0]``.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Any

from repro.errors import FormulaEvalError
from repro.formula import nodes
from repro.formula.functions import FUNCTIONS, truth
from repro.formula.parser import parse


class EvalContext:
    """Everything a formula can see while it runs."""

    def __init__(
        self,
        doc=None,
        db=None,
        user: str = "anonymous",
        clock=None,
        rng: random.Random | None = None,
    ) -> None:
        self.doc = doc
        self.db = db
        self.user = user
        self.clock = clock if clock is not None else getattr(db, "clock", None)
        self.rng = rng or random.Random(0)
        self.temps: dict[str, list] = {}
        self.field_writes: dict[str, list] = {}
        self.selected: bool | None = None
        self.wants_children = False
        self.wants_descendants = False
        self._unique = 0

    def next_unique(self) -> int:
        self._unique += 1
        return self._unique

    # -- field access ----------------------------------------------------

    def has_field(self, name: str) -> bool:
        if name in self.field_writes or name in self.temps:
            return True
        return self.doc is not None and name in self.doc

    def read_field(self, name: str) -> list:
        if name in self.temps:
            return self.temps[name]
        if name in self.field_writes:
            return self.field_writes[name]
        if self.doc is not None and name in self.doc:
            value = self.doc.get(name)
            return list(value) if isinstance(value, list) else [value]
        return [""]

    def write_field(self, name: str, value: list) -> None:
        self.field_writes[name] = value


def _as_pairs(left: list, right: list) -> list[tuple]:
    """Pair elements for broadcasting; shorter side padded with last element."""
    if not left or not right:
        raise FormulaEvalError("cannot operate on an empty value")
    size = max(len(left), len(right))
    return [
        (left[min(i, len(left) - 1)], right[min(i, len(right) - 1)])
        for i in range(size)
    ]


def _arith(op: str, left: list, right: list) -> list:
    result = []
    for a, b in _as_pairs(left, right):
        both_text = isinstance(a, str) and isinstance(b, str)
        if op == "+" and both_text:
            result.append(a + b)
            continue
        if isinstance(a, str) or isinstance(b, str):
            raise FormulaEvalError(
                f"operator {op!r} needs matching types, got {a!r} and {b!r}"
            )
        if op == "+":
            result.append(a + b)
        elif op == "-":
            result.append(a - b)
        elif op == "*":
            result.append(a * b)
        elif op == "/":
            if b == 0:
                raise FormulaEvalError("division by zero")
            result.append(a / b)
    return result


def _compare(op: str, left: list, right: list) -> list:
    """Any-pair comparison returning [1] or [0]."""

    def pair_ok(a: Any, b: Any) -> bool:
        if isinstance(a, str) != isinstance(b, str):
            if op == "=":
                return False
            if op == "!=":
                return True
            raise FormulaEvalError(
                f"cannot order {a!r} against {b!r} with {op!r}"
            )
        if isinstance(a, str):
            a, b = a.lower(), b.lower()  # Notes text compares case-insensitively
        if op == "=":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == ">":
            return a > b
        if op == "<=":
            return a <= b
        return a >= b

    hit = any(pair_ok(a, b) for a in left for b in right)
    return [1 if hit else 0]


class Formula:
    """A compiled formula ready to run against documents."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.program = parse(source)

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        doc=None,
        db=None,
        user: str = "anonymous",
        clock=None,
        rng: random.Random | None = None,
    ) -> list:
        """Run the formula; returns the value of its last statement."""
        ctx = EvalContext(doc=doc, db=db, user=user, clock=clock, rng=rng)
        return self.run(ctx)

    def select(self, doc, db=None, user: str = "anonymous", clock=None) -> bool:
        """Run as a selection formula; returns whether ``doc`` is selected.

        A formula without a SELECT statement selects a document when its
        final value is true (matching how ad-hoc selections behave).
        """
        selected, _, _ = self.select_ex(doc, db=db, user=user, clock=clock)
        return selected

    def select_ex(
        self, doc, db=None, user: str = "anonymous", clock=None
    ) -> tuple[bool, bool, bool]:
        """Selection plus hierarchy flags.

        Returns ``(selected, wants_children, wants_descendants)`` — the view
        layer includes a response document whose own selection is false when
        a hierarchy flag is set and an ancestor is selected.
        """
        ctx = EvalContext(doc=doc, db=db, user=user, clock=clock)
        last = self.run(ctx)
        selected = ctx.selected if ctx.selected is not None else truth(last)
        return selected, ctx.wants_children, ctx.wants_descendants

    def run(self, ctx: EvalContext) -> list:
        last: list = [""]
        for statement in self.program.statements:
            last = self._exec(statement, ctx)
        return last

    # -- statement / expression dispatch -------------------------------------

    def _exec(self, node, ctx: EvalContext) -> list:
        if isinstance(node, nodes.Select):
            # @AllChildren/@AllDescendants set ctx flags during evaluation;
            # the view layer combines ctx.selected with ancestry resolution.
            value = self._eval(node.expr, ctx)
            ctx.selected = truth(value)
            return [1 if ctx.selected else 0]
        if isinstance(node, nodes.Assign):
            ctx.temps[node.name] = self._eval(node.expr, ctx)
            return ctx.temps[node.name]
        if isinstance(node, nodes.FieldAssign):
            value = self._eval(node.expr, ctx)
            ctx.temps.pop(node.name, None)
            ctx.write_field(node.name, value)
            return value
        if isinstance(node, nodes.Default):
            if not ctx.has_field(node.name):
                ctx.write_field(node.name, self._eval(node.expr, ctx))
            return ctx.read_field(node.name)
        return self._eval(node, ctx)

    def _eval(self, node, ctx: EvalContext) -> list:
        if isinstance(node, nodes.Literal):
            return list(node.value)
        if isinstance(node, nodes.FieldRef):
            return ctx.read_field(node.name)
        if isinstance(node, nodes.ListExpr):
            combined: list = []
            for part in node.parts:
                combined.extend(self._eval(part, ctx))
            return combined
        if isinstance(node, nodes.UnaryOp):
            return self._eval_unary(node, ctx)
        if isinstance(node, nodes.BinaryOp):
            return self._eval_binary(node, ctx)
        if isinstance(node, nodes.FuncCall):
            return self._eval_call(node, ctx)
        raise FormulaEvalError(f"cannot evaluate node {node!r}")

    def _eval_unary(self, node: nodes.UnaryOp, ctx: EvalContext) -> list:
        value = self._eval(node.operand, ctx)
        if node.op == "!":
            return [0 if truth(value) else 1]
        if node.op == "-":
            try:
                return [-element for element in value]
            except TypeError as exc:
                raise FormulaEvalError(f"cannot negate {value!r}") from exc
        return value  # unary '+'

    def _eval_binary(self, node: nodes.BinaryOp, ctx: EvalContext) -> list:
        if node.op == "&":
            left = self._eval(node.left, ctx)
            if not truth(left):
                return [0]
            return [1 if truth(self._eval(node.right, ctx)) else 0]
        if node.op == "|":
            left = self._eval(node.left, ctx)
            if truth(left):
                # Still evaluate the right side if it could set view flags
                # (@AllDescendants on the right of '|' is the common idiom).
                if _mentions_hierarchy(node.right):
                    self._eval(node.right, ctx)
                return [1]
            return [1 if truth(self._eval(node.right, ctx)) else 0]
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        if node.op in ("+", "-", "*", "/"):
            return _arith(node.op, left, right)
        return _compare(node.op, left, right)

    def _eval_call(self, node: nodes.FuncCall, ctx: EvalContext) -> list:
        spec = FUNCTIONS.get(node.name)
        if spec is None:
            raise FormulaEvalError(f"unknown function {node.name}")
        count = len(node.args)
        if count < spec.min_args or (spec.max_args is not None and count > spec.max_args):
            raise FormulaEvalError(
                f"{node.name} takes "
                f"{spec.min_args}..{spec.max_args if spec.max_args is not None else '∞'} "
                f"arguments, got {count}"
            )
        if spec.lazy:
            return spec.impl(ctx, node.args, self._eval)
        args = [self._eval(arg, ctx) for arg in node.args]
        return spec.impl(ctx, *args)


def _mentions_hierarchy(node) -> bool:
    """Whether a subtree contains @AllChildren/@AllDescendants."""
    if isinstance(node, nodes.FuncCall):
        if node.name in ("@allchildren", "@alldescendants"):
            return True
        return any(_mentions_hierarchy(arg) for arg in node.args)
    if isinstance(node, nodes.BinaryOp):
        return _mentions_hierarchy(node.left) or _mentions_hierarchy(node.right)
    if isinstance(node, nodes.UnaryOp):
        return _mentions_hierarchy(node.operand)
    if isinstance(node, nodes.ListExpr):
        return any(_mentions_hierarchy(part) for part in node.parts)
    return False


@lru_cache(maxsize=512)
def compile_formula(source: str) -> Formula:
    """Compile formula source text; raises FormulaSyntaxError on bad input.

    Compilation is memoized: views, agents, and selective replication
    frequently share a selection source, and a compiled ``Formula`` is
    immutable (all run state lives in the per-evaluation ``EvalContext``),
    so one instance can serve every caller. Syntax errors are not cached —
    ``lru_cache`` only stores successful results.
    """
    return Formula(source)
