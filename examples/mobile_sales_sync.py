"""Mobile sales-force sync: selective replicas over a slow link.

Each account manager carries a laptop replica that holds *only their own
accounts* (selective replication) with large proposals truncated — the
configuration that made dial-up replication usable. The demo measures
transfer volume against a full replica, works offline, and shows a
field-level merge when the rep and the office edit different fields of the
same order.

Run with::

    python examples/mobile_sales_sync.py
"""

from __future__ import annotations

import random

from repro import (
    ConflictPolicy,
    NotesDatabase,
    Replicator,
    SelectiveReplication,
    SimulatedNetwork,
    VirtualClock,
)
from repro.core import ItemType


def main() -> None:
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    network.add_server("office")
    network.add_server("laptop-dana")
    # A dial-up era link: 150 ms latency, ~5.6 KB/s.
    network.set_link("office", "laptop-dana", latency=0.15, bandwidth=5_600)

    crm = NotesDatabase("Sales CRM", clock=clock, rng=random.Random(7),
                        server="office")
    network.server("office").add_database(crm)

    reps = ["dana/Sales/Acme", "eli/Sales/Acme", "fay/Sales/Acme"]
    rng = random.Random(99)
    for index in range(60):
        clock.advance(10)
        owner = reps[index % 3]
        order = crm.create(
            {
                "Form": "Order",
                "Account": f"account-{index:03d}",
                "Owner": owner,
                "Stage": rng.choice(["lead", "proposal", "closed"]),
                "Amount": rng.randrange(5, 500) * 100,
            },
            author=owner,
        )
        crm.get(order.unid).set(
            "Proposal", "terms and conditions " * 300, ItemType.RICH_TEXT
        )
        if index % 10 == 0:  # a few orders carry a signed contract scan
            crm.attach_file(order.unid, "contract.tif",
                            bytes([index % 256]) * 4_000, author=owner)

    laptop = crm.new_replica("laptop-dana")
    network.server("laptop-dana").add_database(laptop)

    # Dana's replica: only Dana's documents, proposals truncated,
    # contract scans left at the office.
    briefcase = SelectiveReplication(
        'SELECT Owner = "dana/Sales/Acme"', truncate_over=2_000,
        strip_attachments=True,
    )
    replicator = Replicator(network=network,
                            conflict_policy=ConflictPolicy.MERGE)

    clock.advance(60)
    stats = replicator.pull(laptop, crm, selective=briefcase)
    print(f"selective sync: {stats.docs_transferred} docs, "
          f"{stats.bytes_transferred:,} B, {stats.seconds:.1f}s on dial-up")

    full = Replicator(network=network)
    ghost = crm.new_replica("laptop-dana-full")
    network.server("laptop-dana").databases.clear()
    network.server("laptop-dana").add_database(ghost)
    full_stats = full.pull(ghost, crm)
    print(f"full replica baseline: {full_stats.docs_transferred} docs, "
          f"{full_stats.bytes_transferred:,} B, {full_stats.seconds:.1f}s")
    saved = 1 - stats.bytes_transferred / full_stats.bytes_transferred
    print(f"briefcase saves {saved:.0%} of the transfer\n")

    # Work offline on the plane...
    my_orders = laptop.unids()
    target = my_orders[0]
    clock.advance(3600)
    laptop.update(target, {"Stage": "closed", "CloseNote": "signed at 30k ft"},
                  author="dana/Sales/Acme")
    # ...while the office fixes the same order's amount.
    crm.update(target, {"Amount": 123_400}, author="ops/Acme")

    # Evening hotel sync: disjoint edits merge, no conflict document.
    clock.advance(600)
    network.server("laptop-dana").databases.clear()
    network.server("laptop-dana").add_database(laptop)
    sync = replicator.replicate(crm, laptop, selective_b=briefcase)
    merged = crm.get(target)
    print("after evening sync:")
    print(f"  stage={merged.get('Stage')!r} amount={merged.get('Amount'):,} "
          f"note={merged.get('CloseNote')!r}")
    print(f"  divergences={sync.conflicts} merged={sync.merges} "
          f"conflict docs={len(sync.conflict_unids)}")
    assert laptop.get(target).get("Amount") == 123_400
    assert merged.get("Stage") == "closed"


if __name__ == "__main__":
    main()
