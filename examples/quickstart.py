"""Quickstart: documents, views, replication, search — in two minutes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    ConflictPolicy,
    FullTextIndex,
    NotesDatabase,
    Replicator,
    SortOrder,
    View,
    ViewColumn,
    VirtualClock,
)


def main() -> None:
    clock = VirtualClock()
    db = NotesDatabase("Team Projects", clock=clock, rng=random.Random(1),
                       server="office")

    # 1. Documents: self-describing bags of typed items.
    plan = db.create(
        {
            "Form": "Project",
            "Name": "Apollo",
            "Owner": "alice/Acme",
            "Budget": 120_000,
            "Notes": "Launch the new groupware backend.",
        },
        author="alice/Acme",
    )
    for name, owner, budget in [
        ("Borealis", "bob/Acme", 40_000),
        ("Citrus", "alice/Acme", 75_000),
    ]:
        clock.advance(60)
        db.create({"Form": "Project", "Name": name, "Owner": owner,
                   "Budget": budget, "Notes": f"{name} kickoff."},
                  author=owner)

    # 2. A view: selection formula + sorted/categorized columns, maintained
    #    incrementally as documents change.
    view = View(
        db,
        "Projects by Owner",
        selection='SELECT Form = "Project"',
        columns=[
            ViewColumn(title="Owner", item="Owner", categorized=True),
            ViewColumn(title="Name", item="Name", sort=SortOrder.ASCENDING),
            ViewColumn(title="Budget", item="Budget", totals=True),
        ],
    )
    print("== Projects by Owner ==")
    for row in view.rows():
        if hasattr(row, "count"):  # CategoryRow
            print(f"[{row.value}]  ({row.count} projects, "
                  f"subtotal {row.subtotals[2]:,})")
        else:
            print(f"    {row.values[1]:<10} {row.values[2]:>10,}")
    print(f"grand total: {view.totals()[2]:,}\n")

    # 3. Replication: make a laptop replica, edit both sides, converge.
    laptop = db.new_replica("laptop")
    # MERGE resolves edits to *different* fields without a conflict note.
    replicator = Replicator(conflict_policy=ConflictPolicy.MERGE)
    clock.advance(60)
    replicator.replicate(db, laptop)
    print(f"laptop replica has {len(laptop)} docs after first sync")

    clock.advance(60)
    db.update(plan.unid, {"Budget": 150_000}, author="alice/Acme")  # office
    clock.advance(60)
    laptop.update(plan.unid, {"Status": "amber"}, author="bob/Acme")  # road
    clock.advance(60)
    stats = replicator.replicate(db, laptop)
    merged = db.get(plan.unid)
    print(f"after sync: budget={merged.get('Budget'):,} "
          f"status={merged.get('Status')!r} merged={stats.merges > 0}")

    # 4. Full-text search over everything.
    index = FullTextIndex(db)
    hits = index.search("groupware OR kickoff")
    print("\n== search: groupware OR kickoff ==")
    for hit in hits:
        print(f"  {db.get(hit.unid).get('Name'):<10} score={hit.score:.2f}")


if __name__ == "__main__":
    main()
